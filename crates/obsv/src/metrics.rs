//! Process-wide metrics registry: named counters, gauges, and fixed-bucket
//! histograms behind atomics.
//!
//! A [`Registry`] is a name → metric map. Handles ([`Counter`],
//! [`FloatCounter`], [`Gauge`], [`Histogram`]) are `Arc`-backed: cloning is
//! cheap, updates are single atomic operations, and a handle keeps working
//! (detached) even if it was never registered — which is what the disabled
//! mode uses, so instrumented code never branches on "is observability on".
//!
//! Reads ([`Registry::snapshot`]) are wait-free with respect to writers:
//! the snapshot locks only the name map, then loads each atomic.

use crate::latency::{LatencyHistogram, LatencySample};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Lock a mutex, recovering from poisoning (we never leave data in an
/// invalid state mid-lock, so the value is always usable).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Monotone integer counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter not attached to any registry.
    pub fn detached() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Monotone floating-point accumulator (for work meters measured in f64
/// units). Stored as bit-cast `f64` behind a CAS loop.
#[derive(Debug, Clone)]
pub struct FloatCounter(Arc<AtomicU64>);

impl Default for FloatCounter {
    fn default() -> Self {
        FloatCounter(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl FloatCounter {
    pub fn detached() -> Self {
        Self::default()
    }

    pub fn add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Last-write-wins signed gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn detached() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, v: i64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Upper bounds of the finite buckets, ascending; one implicit +inf
    /// bucket follows. Fixed at registration.
    bounds: Vec<f64>,
    /// One count per finite bucket plus the overflow bucket.
    counts: Vec<AtomicU64>,
    sum: FloatCounter,
    total: AtomicU64,
}

/// Fixed-bucket histogram: `observe` is a binary search plus two atomic
/// adds; no allocation after registration.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    pub fn with_bounds(bounds: &[f64]) -> Self {
        let mut b: Vec<f64> = bounds.iter().copied().filter(|v| v.is_finite()).collect();
        b.sort_by(f64::total_cmp);
        b.dedup();
        let counts = (0..=b.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramCore {
            bounds: b,
            counts,
            sum: FloatCounter::default(),
            total: AtomicU64::new(0),
        }))
    }

    pub fn observe(&self, v: f64) {
        let core = &self.0;
        let idx = core.bounds.partition_point(|&b| b < v);
        if let Some(slot) = core.counts.get(idx) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
        core.sum.add(v);
        core.total.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0.total.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        self.0.sum.get()
    }

    fn value(&self) -> MetricValue {
        MetricValue::Histogram {
            bounds: self.0.bounds.clone(),
            counts: self
                .0
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum(),
            count: self.count(),
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Float(FloatCounter),
    Gauge(Gauge),
    Histogram(Histogram),
    Latency(LatencyHistogram),
}

/// A point-in-time reading of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Float(f64),
    Gauge(i64),
    Histogram {
        bounds: Vec<f64>,
        counts: Vec<u64>,
        sum: f64,
        count: u64,
    },
    Latency(LatencySample),
}

/// A name → metric map. Registration is get-or-create by name: asking twice
/// for the same name returns handles over the same storage, so independent
/// layers (optimizer cache, MNSA, executor) can meet in one namespace
/// without passing handles around.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
    /// Name/kind collisions seen by the accessors. A collision means some
    /// call site got a detached handle and its observations are invisible
    /// in snapshots — surfaced as the `obsv.collisions` counter so the loss
    /// is no longer silent.
    collisions: AtomicU64,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of name/kind collisions seen so far (each one handed out a
    /// detached handle whose observations are lost).
    pub fn collisions(&self) -> u64 {
        self.collisions.load(Ordering::Relaxed)
    }

    fn record_collision(&self) {
        self.collisions.fetch_add(1, Ordering::Relaxed);
    }

    /// Get-or-register a counter. If `name` is already registered as a
    /// different kind, a detached handle is returned (the registered metric
    /// keeps its kind; nothing panics) and `obsv.collisions` is bumped.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = lock(&self.metrics);
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => {
                self.record_collision();
                Counter::detached()
            }
        }
    }

    /// Get-or-register a floating-point accumulator.
    pub fn float_counter(&self, name: &str) -> FloatCounter {
        let mut m = lock(&self.metrics);
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Float(FloatCounter::default()))
        {
            Metric::Float(c) => c.clone(),
            _ => {
                self.record_collision();
                FloatCounter::detached()
            }
        }
    }

    /// Get-or-register a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = lock(&self.metrics);
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => {
                self.record_collision();
                Gauge::detached()
            }
        }
    }

    /// Get-or-register a fixed-bucket histogram. The bounds of the first
    /// registration win; later callers share its buckets.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut m = lock(&self.metrics);
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::with_bounds(bounds)))
        {
            Metric::Histogram(h) => h.clone(),
            _ => {
                self.record_collision();
                Histogram::with_bounds(bounds)
            }
        }
    }

    /// Get-or-register a log-linear latency histogram (see
    /// [`crate::latency`]).
    pub fn latency(&self, name: &str) -> LatencyHistogram {
        let mut m = lock(&self.metrics);
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Latency(LatencyHistogram::new()))
        {
            Metric::Latency(h) => h.clone(),
            _ => {
                self.record_collision();
                LatencyHistogram::detached()
            }
        }
    }

    /// Read every registered metric, sorted by name. If any accessor has
    /// seen a name/kind collision, an `obsv.collisions` counter appears in
    /// the snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let m = lock(&self.metrics);
        let mut entries: BTreeMap<String, MetricValue> = m
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Float(c) => MetricValue::Float(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => h.value(),
                    Metric::Latency(h) => MetricValue::Latency(h.snapshot()),
                };
                (name.clone(), value)
            })
            .collect();
        drop(m);
        let collisions = self.collisions();
        if collisions > 0 {
            entries.insert(
                "obsv.collisions".to_string(),
                MetricValue::Counter(collisions),
            );
        }
        Snapshot { entries }
    }
}

/// The process-wide default registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A sorted point-in-time reading of a whole registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    pub entries: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// One formatted table, `name value` per line, suitable for end-of-run
    /// summaries.
    pub fn render_text(&self) -> String {
        let width = self.entries.keys().map(|k| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in &self.entries {
            let rendered = match value {
                MetricValue::Counter(v) => format!("{v}"),
                MetricValue::Float(v) => format!("{v:.1}"),
                MetricValue::Gauge(v) => format!("{v}"),
                MetricValue::Histogram { sum, count, .. } => {
                    format!("count={count} sum={sum:.1}")
                }
                MetricValue::Latency(s) => format!(
                    "count={} p50={} p90={} p99={} p999={} max={}",
                    s.count,
                    s.quantile(0.50),
                    s.quantile(0.90),
                    s.quantile(0.99),
                    s.quantile(0.999),
                    s.max,
                ),
            };
            out.push_str(&format!("  {name:<width$}  {rendered}\n"));
        }
        out
    }

    /// The snapshot as one JSON object keyed by metric name.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n  \"{}\": ", crate::export::json_escape(name)));
            match value {
                MetricValue::Counter(v) => out.push_str(&format!("{v}")),
                MetricValue::Float(v) => out.push_str(&render_f64(*v)),
                MetricValue::Gauge(v) => out.push_str(&format!("{v}")),
                MetricValue::Histogram {
                    bounds,
                    counts,
                    sum,
                    count,
                } => {
                    out.push_str(&format!(
                        "{{\"bounds\": [{}], \"counts\": [{}], \"sum\": {}, \"count\": {}}}",
                        bounds
                            .iter()
                            .map(|b| render_f64(*b))
                            .collect::<Vec<_>>()
                            .join(", "),
                        counts
                            .iter()
                            .map(|c| c.to_string())
                            .collect::<Vec<_>>()
                            .join(", "),
                        render_f64(*sum),
                        count
                    ));
                }
                MetricValue::Latency(s) => {
                    out.push_str(&format!(
                        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}}}",
                        s.count,
                        s.sum,
                        s.min,
                        s.max,
                        s.quantile(0.50),
                        s.quantile(0.90),
                        s.quantile(0.99),
                        s.quantile(0.999),
                    ));
                }
            }
        }
        out.push_str("\n}\n");
        out
    }
}

/// JSON-safe f64 rendering (`null` for non-finite values).
pub(crate) fn render_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip_and_sharing() {
        let r = Registry::new();
        let a = r.counter("x.calls");
        let b = r.counter("x.calls");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(
            r.snapshot().entries.get("x.calls"),
            Some(&MetricValue::Counter(5))
        );
    }

    #[test]
    fn float_counter_accumulates() {
        let c = FloatCounter::detached();
        c.add(1.5);
        c.add(2.25);
        assert_eq!(c.get(), 3.75);
    }

    #[test]
    fn kind_mismatch_returns_detached() {
        let r = Registry::new();
        let c = r.counter("m");
        let f = r.float_counter("m"); // wrong kind: detached
        f.add(10.0);
        c.inc();
        assert_eq!(
            r.snapshot().entries.get("m"),
            Some(&MetricValue::Counter(1))
        );
    }

    #[test]
    fn kind_mismatch_is_counted_not_silent() {
        let r = Registry::new();
        assert_eq!(r.collisions(), 0);
        assert!(!r.snapshot().entries.contains_key("obsv.collisions"));
        let _ = r.counter("m");
        let _ = r.float_counter("m"); // collision 1
        let _ = r.gauge("m"); // collision 2
        let _ = r.histogram("m", &[1.0]); // collision 3
        let _ = r.latency("m"); // collision 4
        assert_eq!(r.collisions(), 4);
        assert_eq!(
            r.snapshot().entries.get("obsv.collisions"),
            Some(&MetricValue::Counter(4))
        );
        // Matching-kind re-registration is not a collision.
        let _ = r.counter("m");
        assert_eq!(r.collisions(), 4);
    }

    #[test]
    fn latency_metric_registers_and_renders() {
        let r = Registry::new();
        let h = r.latency("q.latency_ns");
        let shared = r.latency("q.latency_ns");
        h.observe(1000);
        shared.observe(2000);
        assert_eq!(h.count(), 2);
        let snap = r.snapshot();
        let Some(MetricValue::Latency(sample)) = snap.entries.get("q.latency_ns") else {
            panic!("latency metric missing from snapshot");
        };
        assert_eq!(sample.count, 2);
        let text = snap.render_text();
        assert!(text.contains("p99="), "no quantile row: {text}");
        let json = snap.render_json();
        let parsed = crate::json::parse(&json).expect("snapshot json parses");
        let entry = parsed.get("q.latency_ns").expect("latency entry");
        assert_eq!(
            entry.get("count").and_then(crate::json::Json::as_f64),
            Some(2.0)
        );
        assert!(entry
            .get("p99")
            .and_then(crate::json::Json::as_f64)
            .is_some());
    }

    #[test]
    fn histogram_buckets() {
        let h = Histogram::with_bounds(&[1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 50.0, 500.0, 5.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 560.5);
        let MetricValue::Histogram { counts, .. } = h.value() else {
            panic!("wrong kind");
        };
        assert_eq!(counts, vec![1, 2, 1, 1]);
    }

    #[test]
    fn snapshot_renders() {
        let r = Registry::new();
        r.counter("a.count").add(3);
        r.float_counter("b.work").add(1.5);
        r.gauge("c.depth").set(-2);
        r.histogram("d.lat", &[1.0]).observe(0.5);
        let snap = r.snapshot();
        let text = snap.render_text();
        assert!(text.contains("a.count"));
        assert!(text.contains("-2"));
        let json = snap.render_json();
        assert!(json.contains("\"b.work\": 1.5"));
        let parsed = crate::json::parse(&json).expect("snapshot json parses");
        assert_eq!(
            parsed.get("a.count").and_then(crate::json::Json::as_f64),
            Some(3.0)
        );
    }

    #[test]
    fn global_registry_is_shared() {
        global().counter("obsv.selftest").inc();
        assert!(global().snapshot().entries.contains_key("obsv.selftest"));
    }
}
