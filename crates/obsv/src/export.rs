//! Trace exporters: JSONL (one event per line) and Chrome `trace_event`
//! JSON (loadable in `chrome://tracing` / Perfetto).
//!
//! Both formats are hand-rolled — the workspace carries no serde — and both
//! are pure functions of a flushed event stream, so exporting never touches
//! live tracer state.

use crate::metrics::render_f64;
use crate::trace::{ArgValue, Event, EventKind};

/// Escape a string for embedding inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_arg(value: &ArgValue) -> String {
    match value {
        ArgValue::Int(v) => format!("{v}"),
        ArgValue::Float(v) => render_f64(*v),
        ArgValue::Str(v) => format!("\"{}\"", json_escape(v)),
        ArgValue::Bool(v) => format!("{v}"),
    }
}

pub(crate) fn render_args(args: &[(&'static str, ArgValue)]) -> String {
    let mut out = String::from("{");
    for (i, (key, value)) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {}", json_escape(key), render_arg(value)));
    }
    out.push('}');
    out
}

/// One JSON object per line, in merged causal order. Greppable, diffable,
/// and streamable; the schema is checked by `obsv_check`.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        let kind = match e.kind {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "I",
        };
        out.push_str(&format!(
            "{{\"seq\": {}, \"kind\": \"{}\", \"id\": {}, \"parent\": {}, \"name\": \"{}\", \"tid\": {}, \"ts_ns\": {}, \"args\": {}}}\n",
            e.seq,
            kind,
            e.id,
            e.parent,
            json_escape(e.name),
            e.tid,
            e.ts_ns,
            render_args(&e.args)
        ));
    }
    out
}

/// Chrome `trace_event` format: spans become `"X"` complete events (one
/// per matched Begin/End pair, duration = end − begin), instants become
/// `"i"` events. Open in Perfetto or `chrome://tracing`.
pub fn to_chrome(events: &[Event]) -> String {
    use std::collections::HashMap;
    // Span id -> (begin event index, end event index).
    let mut ends: HashMap<u64, usize> = HashMap::new();
    for (i, e) in events.iter().enumerate() {
        if e.kind == EventKind::End {
            ends.insert(e.id, i);
        }
    }
    let mut out = String::from("{\"traceEvents\": [\n");
    let mut first = true;
    for (i, e) in events.iter().enumerate() {
        let record = match e.kind {
            EventKind::Begin => {
                let Some(&end_idx) = ends.get(&e.id) else {
                    continue; // unclosed span: skip rather than emit garbage
                };
                let end = &events[end_idx];
                let dur_us = end.ts_ns.saturating_sub(e.ts_ns) / 1000;
                // Merge begin-args with end-args so everything a span
                // learned during its lifetime shows in one tooltip.
                let mut args = e.args.clone();
                args.extend(end.args.iter().cloned());
                format!(
                    "{{\"name\": \"{}\", \"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"dur\": {}, \"args\": {}}}",
                    json_escape(e.name),
                    e.tid,
                    e.ts_ns / 1000,
                    dur_us.max(1),
                    render_args(&args)
                )
            }
            EventKind::Instant => format!(
                "{{\"name\": \"{}\", \"ph\": \"i\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"s\": \"t\", \"args\": {}}}",
                json_escape(e.name),
                e.tid,
                e.ts_ns / 1000,
                render_args(&e.args)
            ),
            EventKind::End => continue,
        };
        let _ = i;
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&record);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    fn sample_events() -> Vec<Event> {
        let t = Tracer::enabled();
        {
            let root = t.span("root");
            root.instant("tick", vec![("note", ArgValue::Str("a\"b".into()))]);
            let mut c = root.child("child");
            c.arg("rows", 3i64);
        }
        t.flush()
    }

    #[test]
    fn jsonl_parses_line_by_line() {
        let events = sample_events();
        let jsonl = to_jsonl(&events);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), events.len());
        for line in lines {
            let parsed = crate::json::parse(line).expect("jsonl line parses");
            assert!(parsed.get("seq").is_some());
            assert!(parsed
                .get("kind")
                .and_then(crate::json::Json::as_str)
                .is_some());
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_complete_events() {
        let events = sample_events();
        let chrome = to_chrome(&events);
        let parsed = crate::json::parse(&chrome).expect("chrome trace parses");
        let list = parsed
            .get("traceEvents")
            .and_then(crate::json::Json::as_array)
            .expect("traceEvents array");
        // 2 spans -> 2 "X" events, 1 instant -> 1 "i" event.
        assert_eq!(list.len(), 3);
        let phases: Vec<&str> = list
            .iter()
            .filter_map(|e| e.get("ph").and_then(crate::json::Json::as_str))
            .collect();
        assert_eq!(phases.iter().filter(|p| **p == "X").count(), 2);
        assert_eq!(phases.iter().filter(|p| **p == "i").count(), 1);
    }

    #[test]
    fn escaping_survives_roundtrip() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn control_characters_are_escaped_as_unicode() {
        // Chrome's trace loader rejects raw control bytes: every char
        // below 0x20 must leave json_escape as an escape sequence.
        for code in 0u32..0x20 {
            let c = char::from_u32(code).expect("control char");
            let escaped = json_escape(&c.to_string());
            assert!(
                escaped.chars().all(|c| (c as u32) >= 0x20),
                "raw control byte {code:#04x} leaked through: {escaped:?}"
            );
            let quoted = format!("{{\"k\": \"{escaped}\"}}");
            let parsed = crate::json::parse(&quoted).expect("escaped control char parses");
            assert!(parsed.get("k").is_some());
        }
        assert_eq!(json_escape("\u{0}"), "\\u0000");
        assert_eq!(json_escape("\u{1b}[31m"), "\\u001b[31m");
        assert_eq!(json_escape("a\u{7}b"), "a\\u0007b");
        // An adversarial span name mixing every class of escape.
        let nasty = "q\"\\\n\r\t\u{0}\u{1f}\u{7f}é✓";
        let quoted = format!("{{\"name\": \"{}\"}}", json_escape(nasty));
        let parsed = crate::json::parse(&quoted).expect("adversarial name parses");
        assert!(parsed.get("name").is_some());
    }
}
