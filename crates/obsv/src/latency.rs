//! Mergeable log-linear latency histogram (HDR style) with bounded
//! relative error.
//!
//! [`LatencyHistogram`] records unsigned integer values (by convention
//! nanoseconds) into a fixed array of buckets laid out log-linearly:
//! `PRECISION_BITS` sub-buckets per power of two, so every bucket's width
//! is at most `value >> PRECISION_BITS` and any reported quantile
//! overestimates the true sample quantile by strictly less than
//! `2^-PRECISION_BITS` (≈ 3.2% at the default 5 bits) and never
//! underestimates it. Recording is two relaxed atomic adds plus two
//! atomic min/max updates — no allocation, no locks — so the histogram can
//! sit on the query hot path of the online service.
//!
//! Histograms are *mergeable*: [`LatencyHistogram::merge_from`] adds bucket
//! counts, saturates min/max, and wraps sums, so merging is exactly
//! associative and commutative (all fields are integer lattices — no
//! floating-point reassociation). That makes per-shard histograms safe to
//! combine in any order.
//!
//! A [`LatencySample`] is an immutable point-in-time reading (sparse bucket
//! list). Samples subtract ([`LatencySample::delta_from`]), which is what
//! [`crate::window::WindowedRegistry`] uses to compute per-window
//! quantiles from cumulative readings.
//!
//! Everything here is wall-clock flavoured observation and is explicitly
//! **outside** the workspace's bit-identity determinism contract: latency
//! readings may differ run to run, and nothing downstream of tuning is
//! allowed to read them back.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sub-bucket precision: `2^PRECISION_BITS` buckets per power of two.
pub const PRECISION_BITS: u32 = 5;
/// Sub-buckets per power of two (32 at 5 bits).
const M: u64 = 1 << PRECISION_BITS;
/// Relative-error bound of every reported quantile: strictly less than
/// `2^-PRECISION_BITS` (3.125% at the default precision).
pub const RELATIVE_ERROR_BOUND: f64 = 1.0 / (1u64 << PRECISION_BITS) as f64;
/// Bucket-array size: shift 0 covers indexes `[0, 2M)` exactly, and each of
/// the remaining `64 - PRECISION_BITS - 1` shifts adds `M` log-linear
/// buckets.
const BUCKETS: usize = ((64 - PRECISION_BITS as usize - 1) * M as usize) + 2 * M as usize;

/// Bucket index of a value: exact below `2M`, log-linear above.
#[inline]
fn index_of(v: u64) -> usize {
    if v < 2 * M {
        return v as usize;
    }
    let e = 63 - v.leading_zeros(); // v in [2^e, 2^{e+1}), e > PRECISION_BITS
    let shift = e - PRECISION_BITS;
    (shift as usize * M as usize) + (v >> shift) as usize
}

/// The largest value mapping to bucket `index` — the reported
/// representative. Using the bucket's upper bound means quantiles never
/// underestimate; the overshoot is bounded by the bucket width.
#[inline]
fn highest_equivalent(index: usize) -> u64 {
    if index < 2 * M as usize {
        return index as u64;
    }
    let shift = (index / M as usize - 1) as u32;
    let sub = (index - shift as usize * M as usize) as u64; // in [M, 2M)
                                                            // The topmost bucket's upper bound is u64::MAX: (64 << 58) wraps to 0
                                                            // and the wrapping -1 lands exactly on MAX.
    (sub + 1).wrapping_shl(shift).wrapping_sub(1)
}

#[derive(Debug)]
struct Core {
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    /// Wrapping sum of recorded values (wrapping keeps merges associative).
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A mergeable log-linear histogram of `u64` values. Cloning shares the
/// underlying storage (like the other registry metric handles).
#[derive(Debug, Clone)]
pub struct LatencyHistogram(Arc<Core>);

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram(Arc::new(Core {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh histogram not attached to any registry.
    pub fn detached() -> Self {
        Self::default()
    }

    /// Record one value. Two relaxed adds plus min/max updates.
    #[inline]
    pub fn observe(&self, v: u64) {
        let core = &self.0;
        if let Some(slot) = core.counts.get(index_of(v)) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
        core.total.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(v, Ordering::Relaxed); // wraps by design
        core.min.fetch_min(v, Ordering::Relaxed);
        core.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.0.total.load(Ordering::Relaxed)
    }

    /// Wrapping sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.0.min.load(Ordering::Relaxed);
        if m == u64::MAX && self.count() == 0 {
            0
        } else {
            m
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile of the recorded distribution (`q` clamped to
    /// `[0, 1]`). Returns the upper bound of the bucket holding the
    /// `ceil(q·count)`-th smallest sample, so the result is ≥ the exact
    /// sample quantile and overshoots it by < [`RELATIVE_ERROR_BOUND`]
    /// relatively (and by 0 absolutely below `2·2^PRECISION_BITS`).
    ///
    /// Conventions: an **empty** histogram reports 0 for every `q`; a
    /// **single-sample** histogram reports that sample's bucket for every
    /// `q` (including 0 and 1).
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// Merge every recording of `other` into `self`. Exactly associative
    /// and commutative: counts add, sums wrap, min/max saturate.
    pub fn merge_from(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.0.counts.iter().zip(other.0.counts.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.0
            .total
            .fetch_add(other.0.total.load(Ordering::Relaxed), Ordering::Relaxed);
        self.0
            .sum
            .fetch_add(other.0.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.0
            .min
            .fetch_min(other.0.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.0
            .max
            .fetch_max(other.0.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// An immutable point-in-time reading (sparse: non-empty buckets only).
    pub fn snapshot(&self) -> LatencySample {
        let mut buckets = Vec::new();
        for (i, slot) in self.0.counts.iter().enumerate() {
            let n = slot.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u32, n));
            }
        }
        LatencySample {
            buckets,
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
        }
    }
}

/// A point-in-time reading of a [`LatencyHistogram`]: sparse non-empty
/// buckets plus the scalar accumulators. Samples subtract
/// ([`LatencySample::delta_from`]) to yield per-window distributions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencySample {
    /// `(bucket index, count)` pairs, ascending by index, counts > 0.
    pub buckets: Vec<(u32, u64)>,
    pub count: u64,
    /// Wrapping sum of values.
    pub sum: u64,
    pub min: u64,
    pub max: u64,
}

impl LatencySample {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Same quantile semantics as [`LatencyHistogram::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * count), clamped to [1, count]: the rank of the sample
        // the quantile describes.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(index, n) in &self.buckets {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return highest_equivalent(index as usize);
            }
        }
        // Counts raced with bucket reads (snapshot of a live histogram):
        // fall back to the largest occupied bucket.
        self.buckets
            .last()
            .map(|&(i, _)| highest_equivalent(i as usize))
            .unwrap_or(0)
    }

    /// Mean of recorded values (0 when empty; meaningless if `sum` wrapped).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The per-window distribution between an `earlier` cumulative reading
    /// and `self`: bucket counts and totals subtract (saturating, so a
    /// racy read never underflows); `min`/`max` are not recoverable from
    /// cumulative readings, so the delta reports its own quantile bounds
    /// (`quantile(0)` / `quantile(1)`) instead.
    pub fn delta_from(&self, earlier: &LatencySample) -> LatencySample {
        let mut prior = std::collections::BTreeMap::new();
        for &(i, n) in &earlier.buckets {
            prior.insert(i, n);
        }
        let buckets: Vec<(u32, u64)> = self
            .buckets
            .iter()
            .filter_map(|&(i, n)| {
                let d = n.saturating_sub(prior.get(&i).copied().unwrap_or(0));
                (d > 0).then_some((i, d))
            })
            .collect();
        let mut delta = LatencySample {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.wrapping_sub(earlier.sum),
            min: 0,
            max: 0,
            buckets,
        };
        delta.min = delta.quantile(0.0);
        delta.max = delta.quantile(1.0);
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_conventions() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0);
        }
    }

    #[test]
    fn single_sample_reports_itself_within_bound() {
        for v in [0u64, 1, 31, 32, 63, 64, 1000, 123_456_789] {
            let h = LatencyHistogram::new();
            h.observe(v);
            for q in [0.0, 0.25, 0.5, 1.0] {
                let r = h.quantile(q);
                assert!(r >= v, "quantile({q}) = {r} underestimates {v}");
                assert!(
                    (r - v) as f64 <= (v as f64) * RELATIVE_ERROR_BOUND,
                    "quantile({q}) = {r} overshoots {v}"
                );
            }
            assert_eq!(h.min(), v);
            assert_eq!(h.max(), v);
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = LatencyHistogram::new();
        for v in 0..(2 * M) {
            h.observe(v);
        }
        // 2M samples 0..2M: the q-quantile of rank r is value r-1, exactly.
        assert_eq!(h.quantile(0.5), M - 1);
        assert_eq!(h.quantile(1.0), 2 * M - 1);
    }

    #[test]
    fn quantiles_track_exact_order_statistics() {
        let h = LatencyHistogram::new();
        let mut values: Vec<u64> = (0..1000u64).map(|i| i * i * 37 + 5).collect();
        for &v in &values {
            h.observe(v);
        }
        values.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let got = h.quantile(q);
            assert!(got >= exact);
            assert!(
                (got - exact) as f64 <= exact as f64 * RELATIVE_ERROR_BOUND,
                "q={q}: got {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn merge_is_commutative_and_matches_union() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let union = LatencyHistogram::new();
        for v in [3u64, 999, 70_000] {
            a.observe(v);
            union.observe(v);
        }
        for v in [12u64, 70_001, u64::MAX] {
            b.observe(v);
            union.observe(v);
        }
        let ab = LatencyHistogram::new();
        ab.merge_from(&a);
        ab.merge_from(&b);
        let ba = LatencyHistogram::new();
        ba.merge_from(&b);
        ba.merge_from(&a);
        assert_eq!(ab.snapshot(), ba.snapshot());
        assert_eq!(ab.snapshot(), union.snapshot());
    }

    #[test]
    fn delta_isolates_the_window() {
        let h = LatencyHistogram::new();
        h.observe(100);
        h.observe(200);
        let first = h.snapshot();
        h.observe(1_000_000);
        let second = h.snapshot();
        let delta = second.delta_from(&first);
        assert_eq!(delta.count, 1);
        let r = delta.quantile(0.5);
        assert!(r >= 1_000_000 && (r - 1_000_000) as f64 <= 1_000_000.0 * RELATIVE_ERROR_BOUND);
        // The earlier window's samples are invisible to the delta.
        assert!(delta.quantile(0.0) >= 1_000_000);
    }

    #[test]
    fn bucket_roundtrip_covers_extremes() {
        for v in [0u64, 1, M - 1, M, 2 * M - 1, 2 * M, u64::MAX / 2, u64::MAX] {
            let idx = index_of(v);
            assert!(idx < BUCKETS, "index {idx} out of range for {v}");
            let hi = highest_equivalent(idx);
            assert!(hi >= v);
            if v >= 2 * M {
                assert!((hi - v) as f64 <= v as f64 * RELATIVE_ERROR_BOUND);
            } else {
                assert_eq!(hi, v);
            }
        }
    }
}
