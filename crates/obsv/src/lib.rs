//! Zero-heavy-dependency observability for the autostats workspace.
//!
//! Two halves:
//!
//! - [`metrics`] — a process-wide registry of named counters, gauges, and
//!   fixed-bucket histograms behind atomics, with a [`Registry::snapshot`]
//!   API and text/JSON renderers.
//! - [`trace`] — a span tracer with explicit [`SpanGuard`]s, per-fork event
//!   buffers merged deterministically at flush, and exporters ([`export`])
//!   to JSONL and Chrome `trace_event` format (Perfetto-viewable).
//!
//! The cost contract: everything here is observation-only. A disabled
//! [`Obs`] costs one branch per call site — no allocation, no clock reads,
//! no locks — and enabling it may never change a tuning outcome; catalogs,
//! plans, and drop-lists must be bit-identical with tracing on vs off
//! (enforced by `tests/trace_determinism.rs` in the workspace root).

#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![cfg_attr(not(test), deny(clippy::expect_used))]

pub mod check;
pub mod export;
pub mod feedback;
pub mod health;
pub mod json;
pub mod latency;
pub mod metrics;
pub mod slowlog;
pub mod trace;
pub mod window;

use std::sync::Arc;

pub use feedback::{template_fingerprint, FeedbackLog, FeedbackRecord};
pub use health::HealthSnapshot;
pub use latency::{LatencyHistogram, LatencySample, RELATIVE_ERROR_BOUND};
pub use metrics::{Counter, FloatCounter, Gauge, Histogram, MetricValue, Registry, Snapshot};
pub use slowlog::{SlowQuery, SlowQueryLog, SpanSampler};
pub use trace::{ArgValue, Event, EventKind, SpanGuard, TraceDefect, Tracer};
pub use window::{WindowDelta, WindowValue, WindowedRegistry};

/// The observability context threaded through the pipeline: one tracer plus
/// one metrics registry. Cheap to clone; [`Obs::default`] is fully disabled
/// (no-op tracer, private throwaway registry) so library code can hold an
/// `Obs` unconditionally.
#[derive(Debug, Clone)]
pub struct Obs {
    pub tracer: Tracer,
    pub metrics: Arc<Registry>,
}

impl Default for Obs {
    fn default() -> Self {
        Obs {
            tracer: Tracer::disabled(),
            metrics: Arc::new(Registry::new()),
        }
    }
}

impl Obs {
    /// Fully disabled context: no-op tracer, detached registry.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Tracing and metrics both live, on a fresh registry.
    pub fn enabled() -> Self {
        Obs {
            tracer: Tracer::enabled(),
            metrics: Arc::new(Registry::new()),
        }
    }

    /// A context for another logical thread: same registry, forked tracer
    /// buffer tagged with `tid`.
    pub fn fork(&self, tid: u64) -> Obs {
        Obs {
            tracer: self.tracer.fork(tid),
            metrics: Arc::clone(&self.metrics),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_obs_is_inert_and_cloneable() {
        let obs = Obs::disabled();
        let clone = obs.clone();
        assert!(!clone.is_enabled());
        let _s = clone.tracer.span("anything");
        assert!(clone.tracer.flush().is_empty());
    }

    #[test]
    fn fork_shares_registry() {
        let obs = Obs::enabled();
        let worker = obs.fork(3);
        worker.metrics.counter("shared").inc();
        assert_eq!(obs.metrics.counter("shared").get(), 1);
        let _root = obs.tracer.span("root");
        let _w = worker.tracer.span("work");
        drop(_w);
        drop(_root);
        let events = obs.tracer.flush();
        assert!(events.iter().any(|e| e.tid == 3));
    }
}
