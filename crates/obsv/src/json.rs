//! A minimal hand-rolled JSON reader.
//!
//! The workspace has no serde; this parser exists so the `obsv_check`
//! binary can validate exported traces/metrics and so `exp_perfbase
//! --check` can reload a previous `BENCH_exec.json`. It accepts standard
//! JSON (objects, arrays, strings with the common escapes, numbers, bools,
//! null) and reports errors by byte offset. It is a reader, not a writer —
//! all JSON in this workspace is emitted by hand-rolled formatters.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }
}

/// A parse failure at a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex_start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(hex_start..hex_start + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates degrade to the replacement char;
                            // good enough for a validator.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let Some(c) = s.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, -2.5, true, null], "b": {"c": "x\ny"}, "d": 1e3}"#;
        let v = parse(doc).expect("parses");
        assert_eq!(v.get("d").and_then(Json::as_f64), Some(1000.0));
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(|a| a.len()),
            Some(4)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("x\ny")
        );
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes_and_multibyte() {
        // The backslash-u escape decodes to a char; raw multibyte input
        // passes through untouched.
        let v = parse("\"A\\u00e9 é\"").expect("parses");
        assert_eq!(v.as_str(), Some("Aé é"));
    }
}
