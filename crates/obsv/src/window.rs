//! Deterministic time-windowed metric rollups.
//!
//! A [`WindowedRegistry`] wraps a [`Registry`] and turns its cumulative
//! readings into **per-window deltas** on explicit [`WindowedRegistry::roll`]
//! calls. The caller supplies the window id — in the online service that is
//! the `autod` virtual-time tick, so the window schedule is exactly as
//! reproducible as the tick schedule and never reads a wall clock itself.
//! (The *values* inside a window may still be wall-clock flavoured, e.g.
//! latency quantiles; those are outside the bit-identity contract.)
//!
//! Per window and per metric the delta is:
//!
//! * counters / float counters → the increase over the window (a rate per
//!   window: QPS, refreshes/s, feedback ingest, …);
//! * gauges → the value at the window boundary (already instantaneous);
//! * fixed-bucket histograms → the count increase;
//! * latency histograms → count increase plus `p50/p90/p99/p999/max`
//!   computed from the window's own bucket deltas (not the cumulative
//!   distribution).
//!
//! [`WindowDelta::to_json_line`] renders one flat JSON object per window —
//! a JSONL time series validated by [`crate::check::check_windows`] and by
//! the `obsv_check --windows` flag.

use crate::latency::LatencySample;
use crate::metrics::{MetricValue, Registry, Snapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// One metric's reading within a window.
#[derive(Debug, Clone, PartialEq)]
pub enum WindowValue {
    /// Counter / histogram-count increase over the window.
    Delta(u64),
    /// Float-counter increase over the window.
    FloatDelta(f64),
    /// Gauge value at the window boundary.
    Level(i64),
    /// Latency distribution of the window alone.
    Latency(LatencySample),
}

/// All metric deltas for one window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowDelta {
    pub window: u64,
    pub entries: BTreeMap<String, WindowValue>,
}

impl WindowDelta {
    /// The counter delta for `name` (0 when absent or not a counter).
    pub fn count(&self, name: &str) -> u64 {
        match self.entries.get(name) {
            Some(WindowValue::Delta(n)) => *n,
            Some(WindowValue::Latency(s)) => s.count,
            _ => 0,
        }
    }

    /// The latency distribution of the window for `name`, if recorded.
    pub fn latency(&self, name: &str) -> Option<&LatencySample> {
        match self.entries.get(name) {
            Some(WindowValue::Latency(s)) => Some(s),
            _ => None,
        }
    }

    /// One flat JSON object: `{"window": N, "<metric>": <delta>, ...}`.
    /// Latency metrics expand to `.count/.p50/.p90/.p99/.p999/.max` keys.
    pub fn to_json_line(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"window\": {}", self.window));
        for (name, value) in &self.entries {
            let name = crate::export::json_escape(name);
            match value {
                WindowValue::Delta(n) => out.push_str(&format!(", \"{name}\": {n}")),
                WindowValue::FloatDelta(v) => {
                    out.push_str(&format!(", \"{name}\": {}", crate::metrics::render_f64(*v)));
                }
                WindowValue::Level(v) => out.push_str(&format!(", \"{name}\": {v}")),
                WindowValue::Latency(s) => {
                    out.push_str(&format!(
                        ", \"{name}.count\": {}, \"{name}.p50\": {}, \"{name}.p90\": {}, \"{name}.p99\": {}, \"{name}.p999\": {}, \"{name}.max\": {}",
                        s.count,
                        s.quantile(0.50),
                        s.quantile(0.90),
                        s.quantile(0.99),
                        s.quantile(0.999),
                        s.max,
                    ));
                }
            }
        }
        out.push('}');
        out
    }
}

/// Rolls a [`Registry`]'s cumulative readings into per-window deltas.
pub struct WindowedRegistry {
    registry: Arc<Registry>,
    prev: Mutex<Snapshot>,
}

impl WindowedRegistry {
    /// Start windowing `registry` from its *current* state: the first
    /// `roll` reports only activity after this call.
    pub fn new(registry: Arc<Registry>) -> Self {
        let prev = registry.snapshot();
        WindowedRegistry {
            registry,
            prev: Mutex::new(prev),
        }
    }

    /// Close the current window as `window` and open the next: returns the
    /// deltas between the previous roll (or construction) and now.
    pub fn roll(&self, window: u64) -> WindowDelta {
        let now = self.registry.snapshot();
        let mut prev = match self.prev.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut entries = BTreeMap::new();
        for (name, value) in &now.entries {
            let before = prev.entries.get(name);
            let delta = match (value, before) {
                (MetricValue::Counter(n), Some(MetricValue::Counter(p))) => {
                    WindowValue::Delta(n.saturating_sub(*p))
                }
                (MetricValue::Counter(n), _) => WindowValue::Delta(*n),
                (MetricValue::Float(v), Some(MetricValue::Float(p))) => {
                    WindowValue::FloatDelta(v - p)
                }
                (MetricValue::Float(v), _) => WindowValue::FloatDelta(*v),
                (MetricValue::Gauge(v), _) => WindowValue::Level(*v),
                (MetricValue::Histogram { count, .. }, before) => {
                    let prior = match before {
                        Some(MetricValue::Histogram { count: p, .. }) => *p,
                        _ => 0,
                    };
                    WindowValue::Delta(count.saturating_sub(prior))
                }
                (MetricValue::Latency(sample), before) => {
                    let prior = match before {
                        Some(MetricValue::Latency(p)) => p.clone(),
                        _ => LatencySample::default(),
                    };
                    WindowValue::Latency(sample.delta_from(&prior))
                }
            };
            entries.insert(name.clone(), delta);
        }
        *prev = now;
        WindowDelta { window, entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_isolate_windows() {
        let r = Arc::new(Registry::new());
        let queries = r.counter("autod.queries");
        let work = r.float_counter("autod.refresh_work");
        let depth = r.gauge("autod.pending");
        queries.add(5); // before windowing starts: invisible
        let w = WindowedRegistry::new(Arc::clone(&r));

        queries.add(3);
        work.add(1.5);
        depth.set(7);
        let first = w.roll(1);
        assert_eq!(first.window, 1);
        assert_eq!(first.count("autod.queries"), 3);
        assert_eq!(
            first.entries.get("autod.refresh_work"),
            Some(&WindowValue::FloatDelta(1.5))
        );
        assert_eq!(
            first.entries.get("autod.pending"),
            Some(&WindowValue::Level(7))
        );

        // A quiet window reports zeros, not the cumulative totals.
        let second = w.roll(2);
        assert_eq!(second.count("autod.queries"), 0);
        assert_eq!(
            second.entries.get("autod.pending"),
            Some(&WindowValue::Level(7))
        );
    }

    #[test]
    fn latency_quantiles_are_per_window() {
        let r = Arc::new(Registry::new());
        let lat = r.latency("q.latency_ns");
        let w = WindowedRegistry::new(Arc::clone(&r));
        lat.observe(100);
        lat.observe(100);
        w.roll(1);
        lat.observe(1_000_000);
        let d = w.roll(2);
        let sample = d.latency("q.latency_ns").expect("latency entry");
        assert_eq!(sample.count, 1);
        assert!(sample.quantile(0.5) >= 1_000_000, "old samples leaked in");
        let line = d.to_json_line();
        assert!(line.contains("\"q.latency_ns.p99\""));
        let parsed = crate::json::parse(&line).expect("window line parses");
        assert_eq!(
            parsed.get("window").and_then(crate::json::Json::as_f64),
            Some(2.0)
        );
    }

    #[test]
    fn fixed_windows_are_deterministic() {
        let run = || {
            let r = Arc::new(Registry::new());
            let c = r.counter("x");
            let w = WindowedRegistry::new(Arc::clone(&r));
            let mut lines = String::new();
            for window in 1..=4u64 {
                c.add(window);
                lines.push_str(&w.roll(window).to_json_line());
                lines.push('\n');
            }
            lines
        };
        assert_eq!(run(), run());
    }
}
