//! A one-struct health snapshot of the online statistics service.
//!
//! [`HealthSnapshot`] is the "is the self-tuning loop keeping up?" readout:
//! epoch freshness, refresh backlog, monitor occupancy, feedback queue
//! depth, budget position, optimizer-cache effectiveness, and query-latency
//! quantiles — assembled by the `autod` lifecycle daemon at the end of each
//! tick and exported as JSONL (one snapshot per line, validated by
//! [`crate::check::check_health`]). The `obsv_top` binary renders the
//! latest snapshot as a one-screen dashboard.
//!
//! Fields are plain scalars so a snapshot round-trips through JSON without
//! this crate knowing anything about the daemon's types. Latency fields are
//! wall-clock flavoured and outside the bit-identity determinism contract;
//! everything else is a deterministic function of the tick schedule.

use crate::json::{self, Json};

/// Point-in-time health of the online service. All counters are cumulative
/// since service start except where named otherwise.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthSnapshot {
    /// Virtual-time tick this snapshot was assembled at.
    pub tick: u64,
    /// Serving shard that assembled this snapshot (0 for an unsharded
    /// service; pre-shard streams parse back as shard 0).
    pub shard: u64,
    /// Last published catalog epoch.
    pub epoch_generation: u64,
    /// Ticks since the last epoch publication (0 = published this tick).
    pub epoch_age_ticks: u64,
    /// Stale statistics whose refresh was deferred for lack of budget.
    pub staleness_backlog: u64,
    /// Query templates queued for MNSA analysis.
    pub pending_templates: u64,
    /// Distinct templates currently retained by the workload monitor.
    pub monitor_templates: u64,
    /// Monitor capacity (occupancy = templates / capacity).
    pub monitor_capacity: u64,
    /// Total queries the monitor observed (including duplicates).
    pub monitor_observed: u64,
    /// Templates evicted from the monitor over its life.
    pub monitor_evictions: u64,
    /// Evicted templates whose history was restored on re-arrival.
    pub monitor_ghost_hits: u64,
    /// Undigested cardinality-feedback records.
    pub feedback_queue_depth: u64,
    /// Work-token balance (negative = debt to pay down).
    pub budget_balance: f64,
    /// Optimizer-cache counters.
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_invalidations: u64,
    /// Statements served.
    pub queries: u64,
    pub dml: u64,
    /// Query-latency distribution (wall clock; outside bit-identity).
    pub latency_count: u64,
    pub latency_p50_ns: u64,
    pub latency_p90_ns: u64,
    pub latency_p99_ns: u64,
    pub latency_p999_ns: u64,
    pub latency_max_ns: u64,
}

impl HealthSnapshot {
    /// Monitor occupancy in `[0, 1]`.
    pub fn monitor_occupancy(&self) -> f64 {
        if self.monitor_capacity == 0 {
            0.0
        } else {
            self.monitor_templates as f64 / self.monitor_capacity as f64
        }
    }

    /// Fraction of evictions whose history was later restored.
    pub fn ghost_hit_rate(&self) -> f64 {
        if self.monitor_evictions == 0 {
            0.0
        } else {
            self.monitor_ghost_hits as f64 / self.monitor_evictions as f64
        }
    }

    /// Optimizer-cache hit rate in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Outstanding work debt (0 when the balance is non-negative).
    pub fn budget_debt(&self) -> f64 {
        (-self.budget_balance).max(0.0)
    }

    /// One flat JSON object — one line of the health JSONL stream.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"tick\": {}, \"shard\": {}, \"epoch_generation\": {}, \"epoch_age_ticks\": {}, \
             \"staleness_backlog\": {}, \"pending_templates\": {}, \
             \"monitor_templates\": {}, \"monitor_capacity\": {}, \
             \"monitor_observed\": {}, \"monitor_evictions\": {}, \
             \"monitor_ghost_hits\": {}, \"feedback_queue_depth\": {}, \
             \"budget_balance\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"cache_invalidations\": {}, \"queries\": {}, \"dml\": {}, \
             \"latency_count\": {}, \"latency_p50_ns\": {}, \"latency_p90_ns\": {}, \
             \"latency_p99_ns\": {}, \"latency_p999_ns\": {}, \"latency_max_ns\": {}}}",
            self.tick,
            self.shard,
            self.epoch_generation,
            self.epoch_age_ticks,
            self.staleness_backlog,
            self.pending_templates,
            self.monitor_templates,
            self.monitor_capacity,
            self.monitor_observed,
            self.monitor_evictions,
            self.monitor_ghost_hits,
            self.feedback_queue_depth,
            crate::metrics::render_f64(self.budget_balance),
            self.cache_hits,
            self.cache_misses,
            self.cache_invalidations,
            self.queries,
            self.dml,
            self.latency_count,
            self.latency_p50_ns,
            self.latency_p90_ns,
            self.latency_p99_ns,
            self.latency_p999_ns,
            self.latency_max_ns,
        )
    }

    /// Parse one JSONL line back into a snapshot (missing fields read 0).
    pub fn from_json_line(line: &str) -> Result<HealthSnapshot, String> {
        let v = json::parse(line).map_err(|e| e.to_string())?;
        if v.as_object().is_none() {
            return Err("health line must be a JSON object".to_string());
        }
        let num = |key: &str| -> u64 { v.get(key).and_then(Json::as_f64).unwrap_or(0.0) as u64 };
        Ok(HealthSnapshot {
            tick: num("tick"),
            shard: num("shard"),
            epoch_generation: num("epoch_generation"),
            epoch_age_ticks: num("epoch_age_ticks"),
            staleness_backlog: num("staleness_backlog"),
            pending_templates: num("pending_templates"),
            monitor_templates: num("monitor_templates"),
            monitor_capacity: num("monitor_capacity"),
            monitor_observed: num("monitor_observed"),
            monitor_evictions: num("monitor_evictions"),
            monitor_ghost_hits: num("monitor_ghost_hits"),
            feedback_queue_depth: num("feedback_queue_depth"),
            budget_balance: v
                .get("budget_balance")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            cache_hits: num("cache_hits"),
            cache_misses: num("cache_misses"),
            cache_invalidations: num("cache_invalidations"),
            queries: num("queries"),
            dml: num("dml"),
            latency_count: num("latency_count"),
            latency_p50_ns: num("latency_p50_ns"),
            latency_p90_ns: num("latency_p90_ns"),
            latency_p99_ns: num("latency_p99_ns"),
            latency_p999_ns: num("latency_p999_ns"),
            latency_max_ns: num("latency_max_ns"),
        })
    }

    /// Merge per-shard snapshots into one cluster-level view. Counters,
    /// backlogs, and balances sum across shards; `tick`, the epoch fields,
    /// and `monitor_capacity`-relative occupancy take the worst (largest)
    /// shard. Latency quantiles take the per-shard maximum — an upper bound,
    /// since quantiles have no exact merge at snapshot granularity (the
    /// serving layer merges the underlying histograms exactly; see
    /// [`crate::latency::LatencyHistogram::merge_from`]). The merged
    /// snapshot's `shard` field is the number of shards merged.
    pub fn merge(shards: &[HealthSnapshot]) -> HealthSnapshot {
        let mut out = HealthSnapshot {
            shard: shards.len() as u64,
            ..HealthSnapshot::default()
        };
        for s in shards {
            out.tick = out.tick.max(s.tick);
            out.epoch_generation = out.epoch_generation.max(s.epoch_generation);
            out.epoch_age_ticks = out.epoch_age_ticks.max(s.epoch_age_ticks);
            out.staleness_backlog += s.staleness_backlog;
            out.pending_templates += s.pending_templates;
            out.monitor_templates += s.monitor_templates;
            out.monitor_capacity += s.monitor_capacity;
            out.monitor_observed += s.monitor_observed;
            out.monitor_evictions += s.monitor_evictions;
            out.monitor_ghost_hits += s.monitor_ghost_hits;
            out.feedback_queue_depth += s.feedback_queue_depth;
            out.budget_balance += s.budget_balance;
            out.cache_hits += s.cache_hits;
            out.cache_misses += s.cache_misses;
            out.cache_invalidations += s.cache_invalidations;
            out.queries += s.queries;
            out.dml += s.dml;
            out.latency_count += s.latency_count;
            out.latency_p50_ns = out.latency_p50_ns.max(s.latency_p50_ns);
            out.latency_p90_ns = out.latency_p90_ns.max(s.latency_p90_ns);
            out.latency_p99_ns = out.latency_p99_ns.max(s.latency_p99_ns);
            out.latency_p999_ns = out.latency_p999_ns.max(s.latency_p999_ns);
            out.latency_max_ns = out.latency_max_ns.max(s.latency_max_ns);
        }
        out
    }

    /// A one-screen text dashboard of this snapshot (what `obsv_top`
    /// prints).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "autostats health — tick {} · epoch {} (age {} tick{})\n",
            self.tick,
            self.epoch_generation,
            self.epoch_age_ticks,
            if self.epoch_age_ticks == 1 { "" } else { "s" },
        ));
        out.push_str(&format!(
            "  traffic    queries {:>10}   dml {:>8}\n",
            self.queries, self.dml
        ));
        out.push_str(&format!(
            "  latency    p50 {}   p90 {}   p99 {}   p999 {}   max {}   (n={})\n",
            fmt_ns(self.latency_p50_ns),
            fmt_ns(self.latency_p90_ns),
            fmt_ns(self.latency_p99_ns),
            fmt_ns(self.latency_p999_ns),
            fmt_ns(self.latency_max_ns),
            self.latency_count,
        ));
        out.push_str(&format!(
            "  monitor    {}/{} templates ({:.0}% full)   observed {}   evictions {}   ghost-hit {:.0}%\n",
            self.monitor_templates,
            self.monitor_capacity,
            self.monitor_occupancy() * 100.0,
            self.monitor_observed,
            self.monitor_evictions,
            self.ghost_hit_rate() * 100.0,
        ));
        out.push_str(&format!(
            "  tuning     pending {}   stale backlog {}   budget balance {:.1}{}\n",
            self.pending_templates,
            self.staleness_backlog,
            self.budget_balance,
            if self.budget_debt() > 0.0 {
                " (IN DEBT)"
            } else {
                ""
            },
        ));
        out.push_str(&format!(
            "  feedback   queue depth {}\n",
            self.feedback_queue_depth
        ));
        out.push_str(&format!(
            "  opt cache  {} hits / {} misses ({:.0}% hit)   {} invalidations\n",
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate() * 100.0,
            self.cache_invalidations,
        ));
        out
    }
}

/// Human-scale nanoseconds: `950ns`, `12.3µs`, `4.5ms`, `1.2s`.
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HealthSnapshot {
        HealthSnapshot {
            tick: 12,
            shard: 2,
            epoch_generation: 3,
            epoch_age_ticks: 2,
            staleness_backlog: 1,
            pending_templates: 4,
            monitor_templates: 96,
            monitor_capacity: 256,
            monitor_observed: 5000,
            monitor_evictions: 40,
            monitor_ghost_hits: 10,
            feedback_queue_depth: 17,
            budget_balance: -1500.5,
            cache_hits: 900,
            cache_misses: 100,
            cache_invalidations: 3,
            queries: 4800,
            dml: 200,
            latency_count: 4800,
            latency_p50_ns: 45_000,
            latency_p90_ns: 120_000,
            latency_p99_ns: 900_000,
            latency_p999_ns: 2_500_000,
            latency_max_ns: 9_000_000,
        }
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let s = sample();
        let line = s.to_json_line();
        let parsed = HealthSnapshot::from_json_line(&line).expect("health line parses");
        assert_eq!(parsed, s);
        assert!(HealthSnapshot::from_json_line("[1]").is_err());
        assert!(HealthSnapshot::from_json_line("{nope").is_err());
    }

    #[test]
    fn derived_rates() {
        let s = sample();
        assert!((s.monitor_occupancy() - 96.0 / 256.0).abs() < 1e-12);
        assert!((s.ghost_hit_rate() - 0.25).abs() < 1e-12);
        assert!((s.cache_hit_rate() - 0.9).abs() < 1e-12);
        assert!((s.budget_debt() - 1500.5).abs() < 1e-12);
        assert_eq!(HealthSnapshot::default().cache_hit_rate(), 0.0);
        assert_eq!(HealthSnapshot::default().budget_debt(), 0.0);
    }

    #[test]
    fn dashboard_renders_every_section() {
        let text = sample().render_text();
        for needle in [
            "tick 12",
            "epoch 3",
            "p99 900.0µs",
            "96/256 templates",
            "ghost-hit 25%",
            "IN DEBT",
            "queue depth 17",
            "90% hit",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        assert!(text.lines().count() <= 12, "dashboard must fit one screen");
    }

    #[test]
    fn merge_sums_counters_and_bounds_quantiles() {
        let a = sample();
        let mut b = sample();
        b.shard = 1;
        b.tick = 14;
        b.queries = 200;
        b.latency_p99_ns = 2_000_000;
        b.budget_balance = 500.0;
        let merged = HealthSnapshot::merge(&[a.clone(), b.clone()]);
        assert_eq!(merged.shard, 2, "shard field counts merged shards");
        assert_eq!(merged.tick, 14);
        assert_eq!(merged.queries, a.queries + b.queries);
        assert_eq!(merged.monitor_capacity, 512);
        assert_eq!(merged.latency_count, a.latency_count + b.latency_count);
        assert_eq!(merged.latency_p99_ns, 2_000_000, "quantile upper bound");
        assert!((merged.budget_balance - (a.budget_balance + b.budget_balance)).abs() < 1e-9);
        assert_eq!(HealthSnapshot::merge(&[]), HealthSnapshot::default());
    }

    #[test]
    fn pre_shard_lines_parse_as_shard_zero() {
        let line = "{\"tick\": 3, \"epoch_generation\": 1, \"queries\": 9}";
        let snap = HealthSnapshot::from_json_line(line).expect("parses");
        assert_eq!(snap.shard, 0);
        assert_eq!(snap.tick, 3);
        assert_eq!(snap.queries, 9);
    }

    #[test]
    fn ns_formatting_scales() {
        assert_eq!(fmt_ns(950), "950ns");
        assert_eq!(fmt_ns(12_345), "12.3µs");
        assert_eq!(fmt_ns(4_500_000), "4.5ms");
        assert_eq!(fmt_ns(1_200_000_000), "1.20s");
    }
}
