//! Execution-feedback channel: observed cardinalities per predicate
//! template.
//!
//! The executor knows, for every scan it runs, both the optimizer's estimate
//! (`est_rows`) and the truth (`rows_out`). A [`FeedbackLog`] is the typed
//! side channel that carries those pairs — together with the predicate's
//! numeric-key range — out of the executor and into the statistics layer,
//! where `stats::feedback` corrects self-tuning histograms from them.
//!
//! Same cost contract as the rest of this crate: a disabled log costs one
//! branch per call site (no allocation, no lock), and enabling it may never
//! change an execution result. Records use plain scalars only — this crate
//! knows nothing about tables or values; producers key records by the raw
//! table id and column ordinal, and ranges by the workspace-wide
//! `numeric_key` projection.

use std::sync::{Arc, Mutex};

/// One observed (predicate template, estimate, truth) triple from a scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeedbackRecord {
    /// Fingerprint of the predicate template (table, column, operator
    /// class) — stable across literal values, so repeated parameterized
    /// queries pool into one template.
    pub fingerprint: u64,
    /// Raw table id of the scanned table.
    pub table: u64,
    /// Column ordinal the predicate filters on.
    pub column: u32,
    /// Numeric-key range the predicate selects, inclusive on both ends
    /// (equality probes have `lo == hi`; open ranges use ±infinity).
    pub lo: f64,
    pub hi: f64,
    /// The optimizer's row estimate for the scan output.
    pub est_rows: f64,
    /// The observed scan output cardinality.
    pub rows_out: f64,
    /// Rows the scan read (the table's live row count), so consumers can
    /// turn `rows_out` into a selectivity fraction.
    pub input_rows: f64,
}

impl FeedbackRecord {
    /// Canonical 64-byte encoding: every field little-endian, floats by bit
    /// pattern. Two records are byte-equal iff they are indistinguishable
    /// to every consumer — the comparison key for the executor's contract
    /// that feedback streams are identical at every thread count.
    pub fn canonical_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        let fields: [u64; 8] = [
            self.fingerprint,
            self.table,
            u64::from(self.column),
            self.lo.to_bits(),
            self.hi.to_bits(),
            self.est_rows.to_bits(),
            self.rows_out.to_bits(),
            self.input_rows.to_bits(),
        ];
        for (chunk, field) in out.chunks_exact_mut(8).zip(fields) {
            chunk.copy_from_slice(&field.to_le_bytes());
        }
        out
    }
}

/// A shared, optionally-enabled buffer of [`FeedbackRecord`]s.
///
/// Clones share one buffer (the executor and its consumer hold clones of the
/// same log). The default/`disabled` log holds no buffer: `push` is a single
/// branch and `drain` returns nothing.
#[derive(Debug, Clone, Default)]
pub struct FeedbackLog {
    buffer: Option<Arc<Mutex<Vec<FeedbackRecord>>>>,
}

impl FeedbackLog {
    /// A log that drops everything at one branch per push.
    pub fn disabled() -> FeedbackLog {
        FeedbackLog::default()
    }

    /// A live log with a fresh shared buffer.
    pub fn enabled() -> FeedbackLog {
        FeedbackLog {
            buffer: Some(Arc::new(Mutex::new(Vec::new()))),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.buffer.is_some()
    }

    /// Append one record (no-op when disabled). Records are kept in push
    /// order; consumers rely on that order for deterministic correction.
    pub fn push(&self, record: FeedbackRecord) {
        if let Some(buffer) = &self.buffer {
            if let Ok(mut buf) = buffer.lock() {
                buf.push(record);
            }
        }
    }

    /// Take every buffered record, leaving the log empty (and still
    /// enabled). Disabled logs return an empty vec.
    pub fn drain(&self) -> Vec<FeedbackRecord> {
        match &self.buffer {
            Some(buffer) => match buffer.lock() {
                Ok(mut buf) => std::mem::take(&mut *buf),
                Err(_) => Vec::new(),
            },
            None => Vec::new(),
        }
    }

    /// Copy of every buffered record in push order, leaving the buffer
    /// intact — for comparing two logs without consuming either.
    pub fn snapshot(&self) -> Vec<FeedbackRecord> {
        match &self.buffer {
            Some(buffer) => buffer.lock().map(|b| b.clone()).unwrap_or_default(),
            None => Vec::new(),
        }
    }

    /// The concatenated [`FeedbackRecord::canonical_bytes`] of every
    /// buffered record, in push order.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for r in self.snapshot() {
            out.extend_from_slice(&r.canonical_bytes());
        }
        out
    }

    /// Number of buffered records (0 when disabled).
    pub fn len(&self) -> usize {
        match &self.buffer {
            Some(buffer) => buffer.lock().map(|b| b.len()).unwrap_or(0),
            None => 0,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// FNV-1a over the fields that define a predicate template. Kept here so
/// every producer fingerprints identically.
pub fn template_fingerprint(table: u64, column: u32, op_class: u8) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for byte in table
        .to_le_bytes()
        .into_iter()
        .chain(column.to_le_bytes())
        .chain([op_class])
    {
        h ^= u64::from(byte);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(rows_out: f64) -> FeedbackRecord {
        FeedbackRecord {
            fingerprint: template_fingerprint(1, 2, 0),
            table: 1,
            column: 2,
            lo: 10.0,
            hi: 20.0,
            est_rows: 5.0,
            rows_out,
            input_rows: 100.0,
        }
    }

    #[test]
    fn disabled_log_is_inert() {
        let log = FeedbackLog::disabled();
        assert!(!log.is_enabled());
        log.push(record(7.0));
        assert!(log.is_empty());
        assert!(log.drain().is_empty());
    }

    #[test]
    fn enabled_log_buffers_in_order_and_shares_across_clones() {
        let log = FeedbackLog::enabled();
        let writer = log.clone();
        writer.push(record(1.0));
        writer.push(record(2.0));
        assert_eq!(log.len(), 2);
        let drained = log.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].rows_out, 1.0);
        assert_eq!(drained[1].rows_out, 2.0);
        // Drain empties but keeps the log live.
        assert!(log.is_empty());
        assert!(log.is_enabled());
        writer.push(record(3.0));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn canonical_bytes_distinguish_fields_and_preserve_order() {
        let log = FeedbackLog::enabled();
        log.push(record(1.0));
        log.push(record(2.0));
        let bytes = log.canonical_bytes();
        assert_eq!(bytes.len(), 128);
        // snapshot leaves the buffer intact, unlike drain.
        assert_eq!(log.len(), 2);
        assert_eq!(log.snapshot().len(), 2);
        // Field changes show up in the encoding; equal records agree.
        assert_eq!(record(1.0).canonical_bytes(), record(1.0).canonical_bytes());
        assert_ne!(record(1.0).canonical_bytes(), record(2.0).canonical_bytes());
        let mut r = record(1.0);
        r.column += 1;
        assert_ne!(r.canonical_bytes(), record(1.0).canonical_bytes());
    }

    #[test]
    fn fingerprints_distinguish_templates() {
        let a = template_fingerprint(1, 2, 0);
        assert_eq!(a, template_fingerprint(1, 2, 0));
        assert_ne!(a, template_fingerprint(1, 2, 1));
        assert_ne!(a, template_fingerprint(1, 3, 0));
        assert_ne!(a, template_fingerprint(2, 2, 0));
    }
}
