//! One-screen health dashboard for the online statistics service.
//!
//! Usage:
//!   obsv_top HEALTH_JSONL            # latest snapshot as a dashboard
//!   obsv_top --watch HEALTH_JSONL    # re-render every second (Ctrl-C to stop)
//!
//! The input is the health JSONL stream the `autod` lifecycle daemon
//! exports (one [`obsv::HealthSnapshot`] per line; `exp_online
//! --health-out` writes one). The dashboard shows the latest snapshot plus
//! per-tick rates derived from the previous line.

use obsv::HealthSnapshot;
use std::process::ExitCode;

fn load(path: &str) -> Result<Vec<HealthSnapshot>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut snapshots = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        snapshots.push(
            HealthSnapshot::from_json_line(line)
                .map_err(|e| format!("line {}: {e}", lineno + 1))?,
        );
    }
    Ok(snapshots)
}

fn render(snapshots: &[HealthSnapshot]) -> String {
    let Some(latest) = snapshots.last() else {
        return "obsv_top: no health snapshots yet\n".to_string();
    };
    let mut out = latest.render_text();
    if snapshots.len() >= 2 {
        let prev = &snapshots[snapshots.len() - 2];
        let ticks = latest.tick.saturating_sub(prev.tick).max(1);
        let qps = latest.queries.saturating_sub(prev.queries) as f64 / ticks as f64;
        let dml = latest.dml.saturating_sub(prev.dml) as f64 / ticks as f64;
        out.push_str(&format!(
            "  rates      {qps:.1} queries/tick   {dml:.1} dml/tick   (over last {ticks} tick{})\n",
            if ticks == 1 { "" } else { "s" },
        ));
    }
    out.push_str(&format!("  history    {} snapshot(s)\n", snapshots.len()));
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (watch, path) = match args.as_slice() {
        [path] => (false, path.clone()),
        [flag, path] if flag == "--watch" => (true, path.clone()),
        _ => {
            eprintln!("usage: obsv_top [--watch] HEALTH_JSONL");
            return ExitCode::FAILURE;
        }
    };
    loop {
        match load(&path) {
            Ok(snapshots) => {
                if watch {
                    // ANSI clear-screen + home, so the dashboard stays put.
                    print!("\x1b[2J\x1b[H");
                }
                print!("{}", render(&snapshots));
            }
            Err(e) => {
                eprintln!("obsv_top: {e}");
                return ExitCode::FAILURE;
            }
        }
        if !watch {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(std::time::Duration::from_secs(1));
    }
}
