//! One-screen health dashboard for the online statistics service.
//!
//! Usage:
//!   obsv_top HEALTH_JSONL...            # latest snapshot(s) as a dashboard
//!   obsv_top --watch HEALTH_JSONL...    # re-render every second (Ctrl-C to stop)
//!
//! The input is the health JSONL stream the `autod` lifecycle daemon
//! exports (one [`obsv::HealthSnapshot`] per line; `exp_online
//! --health-out` writes one). Sharded clusters (`exp_serve`) interleave
//! per-shard snapshots in one stream — or write one file per shard; either
//! way, pass every file and the dashboard groups lines by their `shard`
//! field, showing one row per shard plus a merged cluster summary.

use obsv::HealthSnapshot;
use std::process::ExitCode;

fn load(paths: &[String]) -> Result<Vec<HealthSnapshot>, String> {
    let mut snapshots = Vec::new();
    for path in paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            snapshots.push(
                HealthSnapshot::from_json_line(line)
                    .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?,
            );
        }
    }
    Ok(snapshots)
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Latest snapshot per shard, in ascending shard order.
fn latest_per_shard(snapshots: &[HealthSnapshot]) -> Vec<HealthSnapshot> {
    let mut latest: std::collections::BTreeMap<u64, HealthSnapshot> =
        std::collections::BTreeMap::new();
    for s in snapshots {
        let slot = latest.entry(s.shard).or_insert_with(|| s.clone());
        if s.tick >= slot.tick {
            *slot = s.clone();
        }
    }
    latest.into_values().collect()
}

fn render(snapshots: &[HealthSnapshot]) -> String {
    if snapshots.is_empty() {
        return "obsv_top: no health snapshots yet\n".to_string();
    }
    let shards = latest_per_shard(snapshots);
    if shards.len() <= 1 {
        return render_single(snapshots);
    }
    render_cluster(&shards, snapshots)
}

/// The original unsharded dashboard: latest snapshot plus per-tick rates.
fn render_single(snapshots: &[HealthSnapshot]) -> String {
    let Some(latest) = snapshots.last() else {
        return "obsv_top: no health snapshots yet\n".to_string();
    };
    let mut out = latest.render_text();
    if snapshots.len() >= 2 {
        let prev = &snapshots[snapshots.len() - 2];
        let ticks = latest.tick.saturating_sub(prev.tick).max(1);
        let qps = latest.queries.saturating_sub(prev.queries) as f64 / ticks as f64;
        let dml = latest.dml.saturating_sub(prev.dml) as f64 / ticks as f64;
        out.push_str(&format!(
            "  rates      {qps:.1} queries/tick   {dml:.1} dml/tick   (over last {ticks} tick{})\n",
            if ticks == 1 { "" } else { "s" },
        ));
    }
    out.push_str(&format!("  history    {} snapshot(s)\n", snapshots.len()));
    out
}

/// Multi-shard dashboard: one row per shard (latest snapshot each) and a
/// merged cluster summary. Counters sum exactly; merged latency quantiles
/// are upper bounds (see [`HealthSnapshot::merge`]) — the exact merged
/// distribution lives in the histogram registry, not the health stream.
fn render_cluster(shards: &[HealthSnapshot], all: &[HealthSnapshot]) -> String {
    let merged = HealthSnapshot::merge(shards);
    let mut out = format!(
        "autostats cluster health — {} shards · {} snapshot(s)\n",
        shards.len(),
        all.len(),
    );
    out.push_str("  shard  tick  epoch  queries      dml   pending  backlog   balance     p99\n");
    for s in shards {
        out.push_str(&format!(
            "  {:>5}  {:>4}  {:>5}  {:>7}  {:>7}  {:>8}  {:>7}  {:>8.1}  {:>6}\n",
            s.shard,
            s.tick,
            s.epoch_generation,
            s.queries,
            s.dml,
            s.pending_templates,
            s.staleness_backlog,
            s.budget_balance,
            fmt_ns(s.latency_p99_ns),
        ));
    }
    out.push_str(&format!(
        "  merged     queries {}   dml {}   pending {}   backlog {}   balance {:.1}\n",
        merged.queries,
        merged.dml,
        merged.pending_templates,
        merged.staleness_backlog,
        merged.budget_balance,
    ));
    out.push_str(&format!(
        "  latency≤   p50 {}   p99 {}   p999 {}   max {}   (n={}, per-shard maxima)\n",
        fmt_ns(merged.latency_p50_ns),
        fmt_ns(merged.latency_p99_ns),
        fmt_ns(merged.latency_p999_ns),
        fmt_ns(merged.latency_max_ns),
        merged.latency_count,
    ));
    out
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let watch = args.first().is_some_and(|a| a == "--watch");
    if watch {
        args.remove(0);
    }
    if args.is_empty() || args.iter().any(|a| a.starts_with('-')) {
        eprintln!("usage: obsv_top [--watch] HEALTH_JSONL...");
        return ExitCode::FAILURE;
    }
    loop {
        match load(&args) {
            Ok(snapshots) => {
                if watch {
                    // ANSI clear-screen + home, so the dashboard stays put.
                    print!("\x1b[2J\x1b[H");
                }
                print!("{}", render(&snapshots));
            }
            Err(e) => {
                eprintln!("obsv_top: {e}");
                return ExitCode::FAILURE;
            }
        }
        if !watch {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(std::time::Duration::from_secs(1));
    }
}
