//! Validate exported observability artefacts.
//!
//! Usage:
//!   obsv_check --jsonl trace.jsonl
//!   obsv_check --chrome trace.json
//!   obsv_check --metrics metrics.json
//!   obsv_check --windows windows.jsonl
//!   obsv_check --health health.jsonl
//!
//! Any number of flags may be combined; exits non-zero on the first file
//! that fails its schema check. CI runs this against the artefacts of a
//! tiny tuning session.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!(
            "usage: obsv_check [--jsonl FILE] [--chrome FILE] [--metrics FILE] [--windows FILE] [--health FILE]"
        );
        return ExitCode::FAILURE;
    }
    let mut i = 0;
    let mut checked = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let Some(path) = args.get(i + 1) else {
            eprintln!("obsv_check: {flag} needs a file argument");
            return ExitCode::FAILURE;
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("obsv_check: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let result = match flag {
            "--jsonl" => obsv::check::check_jsonl(&text),
            "--chrome" => obsv::check::check_chrome(&text),
            "--metrics" => obsv::check::check_metrics(&text),
            "--windows" => obsv::check::check_windows(&text),
            "--health" => obsv::check::check_health(&text),
            other => {
                eprintln!("obsv_check: unknown flag {other}");
                return ExitCode::FAILURE;
            }
        };
        match result {
            Ok(summary) => {
                println!(
                    "obsv_check: {path} OK ({} events, {} spans)",
                    summary.events, summary.spans
                );
                checked += 1;
            }
            Err(msg) => {
                eprintln!("obsv_check: {path} FAILED: {msg}");
                return ExitCode::FAILURE;
            }
        }
        i += 2;
    }
    println!("obsv_check: {checked} file(s) valid");
    ExitCode::SUCCESS
}
