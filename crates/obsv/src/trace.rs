//! Span-based tracer with explicit guards.
//!
//! Design constraints, in order:
//!
//! 1. **Observation only.** Nothing in the tracer can influence tuning
//!    decisions — no fallible APIs on the hot path, no data flows back out
//!    of it. Determinism of outcomes with tracing on vs off is a hard
//!    requirement elsewhere in the workspace and is enforced by tests.
//! 2. **Cheap when disabled.** A disabled [`Tracer`] is a `None`; every
//!    recording call is a branch on that option and nothing else — no
//!    allocation, no clock read, no locking.
//! 3. **No thread-local magic.** Parenting is explicit: a [`SpanGuard`]
//!    hands out children via [`SpanGuard::child`]. Worker threads get their
//!    own buffer via [`Tracer::fork`], and flushed events from all forks are
//!    merged by a global sequence number, so the merged order is the true
//!    causal order regardless of which thread recorded what.
//!
//! Span names are `&'static str` by contract: the taxonomy is fixed at
//! compile time (e.g. `mnsa.round`, `stats.build`, `exec.op.HashJoin`),
//! which keeps recording allocation-light and makes traces greppable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// An attribute value attached to a span or instant event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::Int(v)
    }
}
impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::Int(v as i64)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::Int(v as i64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Float(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// What an [`Event`] records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`id` is the span, `parent` its enclosing span).
    Begin,
    /// A span closed.
    End,
    /// A point-in-time marker inside a span.
    Instant,
}

/// One recorded trace event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Global causal sequence number — the merge key across forks.
    pub seq: u64,
    pub kind: EventKind,
    /// Span id for Begin/End; owning span id for Instant.
    pub id: u64,
    /// Parent span id; 0 means root.
    pub parent: u64,
    pub name: &'static str,
    /// Logical thread id of the fork that recorded this event.
    pub tid: u64,
    /// Nanoseconds since the tracer was created (wall-clock flavour; not
    /// part of any determinism contract).
    pub ts_ns: u64,
    pub args: Vec<(&'static str, ArgValue)>,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    /// Global id allocator (span ids and the causal sequence).
    next_seq: AtomicU64,
    next_id: AtomicU64,
    /// One event buffer per fork; each fork locks only its own.
    buffers: Mutex<Vec<Arc<Mutex<Vec<Event>>>>>,
}

impl Inner {
    fn new() -> Self {
        Inner {
            epoch: Instant::now(),
            next_seq: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            buffers: Mutex::new(Vec::new()),
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// A handle for recording events. Cheap to clone; disabled by default.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
    buffer: Option<Arc<Mutex<Vec<Event>>>>,
    tid: u64,
}

impl Tracer {
    /// A tracer that records nothing and costs one branch per call.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A live tracer recording into a fresh buffer set (this handle is
    /// fork/tid 0).
    pub fn enabled() -> Self {
        let inner = Arc::new(Inner::new());
        let buffer = Arc::new(Mutex::new(Vec::new()));
        lock(&inner.buffers).push(Arc::clone(&buffer));
        Tracer {
            inner: Some(inner),
            buffer: Some(buffer),
            tid: 0,
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A handle for another logical thread: shares ids and the flush set,
    /// records into its own buffer so forks never contend on one lock.
    pub fn fork(&self, tid: u64) -> Tracer {
        match &self.inner {
            None => Tracer::disabled(),
            Some(inner) => {
                let buffer = Arc::new(Mutex::new(Vec::new()));
                lock(&inner.buffers).push(Arc::clone(&buffer));
                Tracer {
                    inner: Some(Arc::clone(inner)),
                    buffer: Some(buffer),
                    tid,
                }
            }
        }
    }

    fn record(
        &self,
        kind: EventKind,
        id: u64,
        parent: u64,
        name: &'static str,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        let (Some(inner), Some(buffer)) = (&self.inner, &self.buffer) else {
            return;
        };
        let event = Event {
            seq: inner.next_seq.fetch_add(1, Ordering::Relaxed),
            kind,
            id,
            parent,
            name,
            tid: self.tid,
            ts_ns: inner.now_ns(),
            args,
        };
        lock(buffer).push(event);
    }

    /// Open a root span. Prefer [`SpanGuard::child`] inside existing spans.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_with(name, Vec::new())
    }

    /// Open a root span with initial attributes.
    pub fn span_with(&self, name: &'static str, args: Vec<(&'static str, ArgValue)>) -> SpanGuard {
        self.start_span(name, 0, args)
    }

    fn start_span(
        &self,
        name: &'static str,
        parent: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard {
                tracer: Tracer::disabled(),
                id: 0,
                name,
                end_args: Vec::new(),
            };
        };
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.record(EventKind::Begin, id, parent, name, args);
        SpanGuard {
            tracer: self.clone(),
            id,
            name,
            end_args: Vec::new(),
        }
    }

    /// Drain every fork's buffer and merge by global sequence number.
    /// The result is the causal order of recording across all threads.
    pub fn flush(&self) -> Vec<Event> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let buffers = lock(&inner.buffers);
        let mut events: Vec<Event> = Vec::new();
        for buf in buffers.iter() {
            events.append(&mut lock(buf));
        }
        events.sort_by_key(|e| e.seq);
        events
    }
}

/// An open span. Closes (records `End`) on drop; children must be opened
/// through [`SpanGuard::child`] so parenting is explicit.
#[derive(Debug)]
pub struct SpanGuard {
    tracer: Tracer,
    id: u64,
    name: &'static str,
    end_args: Vec<(&'static str, ArgValue)>,
}

impl SpanGuard {
    /// This span's id (0 when the tracer is disabled).
    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn is_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }

    /// Open a child span.
    pub fn child(&self, name: &'static str) -> SpanGuard {
        self.tracer.start_span(name, self.id, Vec::new())
    }

    /// Open a child span with initial attributes.
    pub fn child_with(&self, name: &'static str, args: Vec<(&'static str, ArgValue)>) -> SpanGuard {
        self.tracer.start_span(name, self.id, args)
    }

    /// Attach an attribute, reported on the span's `End` event.
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if self.tracer.is_enabled() {
            self.end_args.push((key, value.into()));
        }
    }

    /// Record a point-in-time marker inside this span.
    pub fn instant(&self, name: &'static str, args: Vec<(&'static str, ArgValue)>) {
        self.tracer
            .record(EventKind::Instant, self.id, self.id, name, args);
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.tracer.is_enabled() {
            let args = std::mem::take(&mut self.end_args);
            self.tracer
                .record(EventKind::End, self.id, 0, self.name, args);
        }
    }
}

/// A structural problem found by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceDefect {
    /// A span's `End` event never appeared.
    UnclosedSpan { id: u64, name: String },
    /// An `End` with no matching `Begin`.
    OrphanEnd { id: u64, name: String },
    /// A child's Begin/End falls outside its parent's Begin/End in the
    /// merged causal order.
    ChildOutsideParent { id: u64, parent: u64 },
    /// An event references a parent span that was never begun.
    UnknownParent { id: u64, parent: u64 },
    /// Sequence numbers are not strictly increasing after the merge.
    NonMonotoneSeq { at_index: usize },
}

/// Check well-formedness of a flushed, merged event stream: every span
/// closed exactly once, children strictly enclosed by their parents in
/// causal order, sequence numbers strictly monotone.
pub fn validate(events: &[Event]) -> Vec<TraceDefect> {
    use std::collections::HashMap;
    let mut defects = Vec::new();
    for (i, w) in events.windows(2).enumerate() {
        if w[1].seq <= w[0].seq {
            defects.push(TraceDefect::NonMonotoneSeq { at_index: i + 1 });
        }
    }
    // Span id -> (begin index, end index).
    let mut spans: HashMap<u64, (usize, Option<usize>)> = HashMap::new();
    for (i, e) in events.iter().enumerate() {
        match e.kind {
            EventKind::Begin => {
                spans.insert(e.id, (i, None));
            }
            EventKind::End => match spans.get_mut(&e.id) {
                Some(slot) => slot.1 = Some(i),
                None => defects.push(TraceDefect::OrphanEnd {
                    id: e.id,
                    name: e.name.to_string(),
                }),
            },
            EventKind::Instant => {}
        }
    }
    for (i, e) in events.iter().enumerate() {
        match e.kind {
            EventKind::Begin => {
                let Some(&(begin, end)) = spans.get(&e.id) else {
                    continue;
                };
                let Some(end) = end else {
                    defects.push(TraceDefect::UnclosedSpan {
                        id: e.id,
                        name: e.name.to_string(),
                    });
                    continue;
                };
                if e.parent != 0 {
                    match spans.get(&e.parent) {
                        None => defects.push(TraceDefect::UnknownParent {
                            id: e.id,
                            parent: e.parent,
                        }),
                        Some(&(pb, pe)) => {
                            let enclosed = pb < begin && pe.map(|pe| end < pe).unwrap_or(true);
                            if !enclosed {
                                defects.push(TraceDefect::ChildOutsideParent {
                                    id: e.id,
                                    parent: e.parent,
                                });
                            }
                        }
                    }
                }
            }
            EventKind::Instant => {
                if e.parent != 0 && !spans.contains_key(&e.parent) {
                    defects.push(TraceDefect::UnknownParent {
                        id: e.id,
                        parent: e.parent,
                    });
                }
                // An instant inside a span must fall within it causally.
                if let Some(&(pb, pe)) = spans.get(&e.parent) {
                    let inside = pb < i && pe.map(|pe| i < pe).unwrap_or(true);
                    if e.parent != 0 && !inside {
                        defects.push(TraceDefect::ChildOutsideParent {
                            id: e.id,
                            parent: e.parent,
                        });
                    }
                }
            }
            EventKind::End => {}
        }
    }
    defects
}

/// Deterministic textual signature of a flushed event stream: one line per
/// event in merge order, with span ids renumbered by first appearance and
/// wall-clock timestamps excluded. Two traces with the same structure, names,
/// and args — regardless of when or how fast they ran — produce byte-equal
/// signatures, so this is the comparison key for "same span tree" checks
/// (e.g. the executor's thread-count determinism contract). `Float` args
/// render by bit pattern, so even NaN payloads must agree.
pub fn canonical_signature(events: &[Event]) -> String {
    use std::collections::HashMap;
    use std::fmt::Write as _;
    // Renumber ids in order of first appearance: raw span ids come from a
    // shared counter whose values could differ between runs that interleave
    // with other tracer users, while the structure may still be identical.
    let mut dense: HashMap<u64, usize> = HashMap::new();
    dense.insert(0, 0);
    let of = |raw: u64, dense: &mut HashMap<u64, usize>| -> usize {
        let next = dense.len();
        *dense.entry(raw).or_insert(next)
    };
    let mut out = String::new();
    for e in events {
        let id = of(e.id, &mut dense);
        let parent = of(e.parent, &mut dense);
        let kind = match e.kind {
            EventKind::Begin => 'B',
            EventKind::End => 'E',
            EventKind::Instant => 'I',
        };
        let _ = write!(out, "{kind} {id} {parent} {}", e.name);
        for (k, v) in &e.args {
            match v {
                ArgValue::Int(i) => {
                    let _ = write!(out, " {k}=i{i}");
                }
                ArgValue::Float(f) => {
                    let _ = write!(out, " {k}=f{:016x}", f.to_bits());
                }
                ArgValue::Str(s) => {
                    let _ = write!(out, " {k}=s{s:?}");
                }
                ArgValue::Bool(b) => {
                    let _ = write!(out, " {k}=b{b}");
                }
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        let mut s = t.span("root");
        s.arg("k", 1i64);
        s.instant("marker", vec![]);
        let c = s.child("child");
        drop(c);
        drop(s);
        assert!(t.flush().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn span_tree_roundtrip() {
        let t = Tracer::enabled();
        {
            let mut root = t.span_with("root", vec![("n", ArgValue::Int(2))]);
            root.instant("tick", vec![("x", ArgValue::Bool(true))]);
            {
                let mut c = root.child("child");
                c.arg("rows", 42u64);
            }
            root.arg("done", true);
        }
        let events = t.flush();
        assert_eq!(events.len(), 5); // Begin root, Instant, Begin c, End c, End root
        assert!(validate(&events).is_empty());
        let begin_child = events
            .iter()
            .find(|e| e.kind == EventKind::Begin && e.name == "child")
            .expect("child begin");
        let begin_root = events
            .iter()
            .find(|e| e.kind == EventKind::Begin && e.name == "root")
            .expect("root begin");
        assert_eq!(begin_child.parent, begin_root.id);
    }

    #[test]
    fn forks_merge_in_sequence_order() {
        let t = Tracer::enabled();
        let root = t.span("root");
        let f = t.fork(7);
        // Interleave recordings across forks; seq must order them.
        let c1 = root.child("a");
        let fr = f.span("worker");
        drop(c1);
        drop(fr);
        drop(root);
        let events = t.flush();
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
        assert!(events.iter().any(|e| e.tid == 7));
        assert!(validate(&events).is_empty());
    }

    #[test]
    fn validate_flags_unclosed_span() {
        let t = Tracer::enabled();
        let root = t.span("root");
        let child = root.child("child");
        std::mem::forget(child); // leak: End never recorded
        drop(root);
        let events = t.flush();
        let defects = validate(&events);
        assert!(defects
            .iter()
            .any(|d| matches!(d, TraceDefect::UnclosedSpan { .. })));
    }

    #[test]
    fn canonical_signature_ignores_time_and_raw_ids() {
        let run = || {
            let t = Tracer::enabled();
            {
                let mut root = t.span("root");
                root.arg("est", 2.5f64);
                {
                    let mut c = root.child("child");
                    c.arg("rows", 42u64);
                }
                root.instant("tick", vec![("ok", ArgValue::Bool(true))]);
            }
            t.flush()
        };
        let (a, b) = (run(), run());
        // Wall-clock timestamps differ between the runs; the signature
        // must not.
        assert_eq!(canonical_signature(&a), canonical_signature(&b));
        // Renumbering: shifting every raw id must not change the signature.
        let shifted: Vec<Event> = a
            .iter()
            .map(|e| {
                let mut e = e.clone();
                e.id += 100;
                if e.parent != 0 {
                    e.parent += 100;
                }
                e
            })
            .collect();
        assert_eq!(canonical_signature(&a), canonical_signature(&shifted));
        // Structure is load-bearing: a different arg changes it.
        let mut c = a.clone();
        c[0].args.push(("extra", ArgValue::Int(1)));
        assert_ne!(canonical_signature(&a), canonical_signature(&c));
    }

    #[test]
    fn validate_flags_child_outside_parent() {
        let t = Tracer::enabled();
        let root = t.span("root");
        let child = root.child("child");
        drop(root); // parent ends before child
        drop(child);
        let events = t.flush();
        let defects = validate(&events);
        assert!(defects
            .iter()
            .any(|d| matches!(d, TraceDefect::ChildOutsideParent { .. })));
    }
}
