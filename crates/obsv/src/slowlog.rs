//! Always-on cheap trace capture: deterministic fingerprint-keyed span
//! sampling plus a top-K slow-query reservoir.
//!
//! Production tracing can't be all-or-nothing: full span capture on every
//! query is too expensive at serving rates, and zero capture means the one
//! query you need to explain is gone. This module keeps both costs bounded:
//!
//! * [`SpanSampler`] decides *which* queries get a full span tree. The
//!   decision is a pure function of `(seed, fingerprint)` — SplitMix64 over
//!   the query-template fingerprint — so the same template is sampled on
//!   every run of every replica, which makes sampled traces comparable
//!   across machines and runs without any coordination.
//! * [`SlowQueryLog`] retains the K worst queries (by latency) per window,
//!   each with its full span tree, regardless of sampling — the slow-query
//!   log a DBA actually reads.
//!
//! Latency values and span timestamps are wall-clock flavoured and
//! explicitly **outside** the bit-identity determinism contract; *which*
//! fingerprints the sampler picks is deterministic, but which queries turn
//! out slowest is not. Nothing downstream of tuning may read any of this
//! back.
//!
//! [`to_jsonl`] renders drained entries as one JSONL stream: each query's
//! events are wrapped in a synthetic `slowlog.query` span (carrying
//! fingerprint, latency, and window as args) and globally re-sequenced so
//! the concatenation of many per-query traces still passes
//! [`crate::check::check_jsonl`].

use crate::trace::{ArgValue, Event, EventKind};
use std::sync::{Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed hash of a 64-bit key.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic fingerprint-keyed sampling: `sample(fp)` is true for a
/// fixed ~`1/one_in` fraction of fingerprints, chosen by `mix(seed ^ fp)`.
/// Stateless and branch-cheap, so it can gate span capture per query on
/// the hot path.
#[derive(Debug, Clone, Copy)]
pub struct SpanSampler {
    seed: u64,
    one_in: u64,
}

impl SpanSampler {
    /// Sample roughly one in `one_in` fingerprints. `one_in == 0` never
    /// samples; `one_in == 1` always samples.
    pub fn new(seed: u64, one_in: u64) -> Self {
        SpanSampler { seed, one_in }
    }

    /// A sampler that never fires.
    pub fn off() -> Self {
        SpanSampler { seed: 0, one_in: 0 }
    }

    /// Whether this fingerprint's queries get full span capture. Pure in
    /// `(seed, fp)`: the same template is sampled on every run.
    #[inline]
    pub fn sample(&self, fp: u64) -> bool {
        match self.one_in {
            0 => false,
            1 => true,
            n => mix(self.seed ^ fp).is_multiple_of(n),
        }
    }
}

/// One retained slow query: identity, latency, the window it was slowest
/// in, and its full span tree (a flushed per-query event stream).
#[derive(Debug, Clone)]
pub struct SlowQuery {
    pub fingerprint: u64,
    pub latency_ns: u64,
    pub window: u64,
    pub events: Vec<Event>,
}

#[derive(Debug, Default)]
struct LogInner {
    /// Candidates for the currently-open window, worst-first, ≤ k entries.
    current: Vec<SlowQuery>,
    /// Closed windows' top-K entries, oldest first.
    retained: Vec<SlowQuery>,
}

/// Top-K slow-query reservoir: [`SlowQueryLog::record`] offers a query,
/// only the K worst per window survive [`SlowQueryLog::roll`]. Bounded
/// memory: at most `k` candidates plus [`RETAIN_CAP`] closed entries.
#[derive(Debug)]
pub struct SlowQueryLog {
    k: usize,
    inner: Mutex<LogInner>,
}

/// Upper bound on retained closed-window entries; oldest are dropped first.
pub const RETAIN_CAP: usize = 4096;

impl SlowQueryLog {
    /// Retain the `k` worst queries per window (`k == 0` disables capture).
    pub fn new(k: usize) -> Self {
        SlowQueryLog {
            k,
            inner: Mutex::new(LogInner::default()),
        }
    }

    /// A log that records nothing.
    pub fn disabled() -> Self {
        Self::new(0)
    }

    pub fn is_enabled(&self) -> bool {
        self.k > 0
    }

    /// Offer one executed query. Kept only if it is among the K worst of
    /// the currently-open window; ties keep the earlier arrival.
    pub fn record(&self, fingerprint: u64, latency_ns: u64, events: Vec<Event>) {
        if self.k == 0 {
            return;
        }
        let mut inner = lock(&self.inner);
        if inner.current.len() == self.k
            && inner
                .current
                .last()
                .is_some_and(|worst_kept| latency_ns <= worst_kept.latency_ns)
        {
            return; // not slow enough for this window
        }
        inner.current.push(SlowQuery {
            fingerprint,
            latency_ns,
            window: 0, // stamped at roll()
            events,
        });
        // Worst-first; stable sort keeps earlier arrivals ahead on ties.
        inner
            .current
            .sort_by_key(|q| std::cmp::Reverse(q.latency_ns));
        inner.current.truncate(self.k);
    }

    /// Close the open window as `window`: its surviving top-K entries move
    /// to the retained list (bounded by [`RETAIN_CAP`], oldest dropped).
    pub fn roll(&self, window: u64) {
        if self.k == 0 {
            return;
        }
        let mut inner = lock(&self.inner);
        let mut closed = std::mem::take(&mut inner.current);
        for q in &mut closed {
            q.window = window;
        }
        inner.retained.append(&mut closed);
        if inner.retained.len() > RETAIN_CAP {
            let excess = inner.retained.len() - RETAIN_CAP;
            inner.retained.drain(..excess);
        }
    }

    /// Take every retained (closed-window) entry. Call [`SlowQueryLog::roll`]
    /// first to include the currently-open window.
    pub fn drain(&self) -> Vec<SlowQuery> {
        std::mem::take(&mut lock(&self.inner).retained)
    }
}

/// Render drained slow queries as one JSONL trace. Each query's events are
/// wrapped in a synthetic `slowlog.query` span carrying `fingerprint`
/// (hex), `latency_ns`, and `window`; sequence numbers and span ids are
/// globally reassigned so the concatenated stream has strictly monotone
/// seqs and collision-free ids — i.e. it passes
/// [`crate::check::check_jsonl`] as one valid trace.
pub fn to_jsonl(queries: &[SlowQuery]) -> String {
    let mut out = String::new();
    let mut seq = 0u64;
    let mut next_id = 1u64;
    for q in queries {
        let wrapper = next_id;
        // Per-query tracers allocate ids from 1; offsetting by the current
        // allocator keeps every remapped id unique across queries.
        let id_base = next_id;
        let max_inner = q.events.iter().map(|e| e.id).max().unwrap_or(0);
        next_id += 1 + max_inner;
        let first_ts = q.events.first().map(|e| e.ts_ns).unwrap_or(0);
        let last_ts = q.events.last().map(|e| e.ts_ns).unwrap_or(0);
        let wrap_args = crate::export::render_args(&[
            (
                "fingerprint",
                ArgValue::Str(format!("{:016x}", q.fingerprint)),
            ),
            ("latency_ns", ArgValue::Int(q.latency_ns as i64)),
            ("window", ArgValue::Int(q.window as i64)),
        ]);
        out.push_str(&format!(
            "{{\"seq\": {seq}, \"kind\": \"B\", \"id\": {wrapper}, \"parent\": 0, \"name\": \"slowlog.query\", \"tid\": 0, \"ts_ns\": {first_ts}, \"args\": {wrap_args}}}\n",
        ));
        seq += 1;
        for e in &q.events {
            let kind = match e.kind {
                EventKind::Begin => "B",
                EventKind::End => "E",
                EventKind::Instant => "I",
            };
            let id = id_base + e.id;
            // Root spans of the per-query trace re-parent under the wrapper;
            // End events carry parent 0 by convention and stay that way.
            let parent = if e.parent == 0 {
                match e.kind {
                    EventKind::Begin => wrapper,
                    _ => 0,
                }
            } else {
                id_base + e.parent
            };
            out.push_str(&format!(
                "{{\"seq\": {}, \"kind\": \"{}\", \"id\": {}, \"parent\": {}, \"name\": \"{}\", \"tid\": {}, \"ts_ns\": {}, \"args\": {}}}\n",
                seq,
                kind,
                id,
                parent,
                crate::export::json_escape(e.name),
                e.tid,
                e.ts_ns,
                crate::export::render_args(&e.args),
            ));
            seq += 1;
        }
        out.push_str(&format!(
            "{{\"seq\": {seq}, \"kind\": \"E\", \"id\": {wrapper}, \"parent\": 0, \"name\": \"slowlog.query\", \"tid\": 0, \"ts_ns\": {last_ts}, \"args\": {{}}}}\n",
        ));
        seq += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    fn query_events(name: &'static str) -> Vec<Event> {
        let t = Tracer::enabled();
        {
            let root = t.span(name);
            let _child = root.child("exec.op.Scan");
        }
        t.flush()
    }

    #[test]
    fn sampler_is_deterministic_and_roughly_fair() {
        let s = SpanSampler::new(42, 16);
        let hits: Vec<u64> = (0..10_000u64).filter(|&fp| s.sample(fp)).collect();
        // Same seed, same decisions.
        let again: Vec<u64> = (0..10_000u64).filter(|&fp| s.sample(fp)).collect();
        assert_eq!(hits, again);
        // Roughly 1/16 of fingerprints, with generous slack.
        assert!(
            hits.len() > 300 && hits.len() < 1000,
            "rate off: {}",
            hits.len()
        );
        // A different seed picks a different set.
        let other = SpanSampler::new(43, 16);
        let other_hits: Vec<u64> = (0..10_000u64).filter(|&fp| other.sample(fp)).collect();
        assert_ne!(hits, other_hits);
        assert!(!SpanSampler::off().sample(1));
        assert!(SpanSampler::new(9, 1).sample(1));
    }

    #[test]
    fn reservoir_keeps_k_worst_per_window() {
        let log = SlowQueryLog::new(2);
        for (fp, lat) in [(1u64, 100u64), (2, 900), (3, 500), (4, 50), (5, 700)] {
            log.record(fp, lat, Vec::new());
        }
        log.roll(7);
        let drained = log.drain();
        let got: Vec<(u64, u64, u64)> = drained
            .iter()
            .map(|q| (q.fingerprint, q.latency_ns, q.window))
            .collect();
        assert_eq!(got, vec![(2, 900, 7), (5, 700, 7)]);
        // Drain is destructive; the next window starts empty.
        log.record(9, 10, Vec::new());
        log.roll(8);
        let next = log.drain();
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].window, 8);
    }

    #[test]
    fn disabled_log_records_nothing() {
        let log = SlowQueryLog::disabled();
        assert!(!log.is_enabled());
        log.record(1, 1_000_000, query_events("q"));
        log.roll(1);
        assert!(log.drain().is_empty());
    }

    #[test]
    fn jsonl_export_is_one_valid_trace() {
        let log = SlowQueryLog::new(2);
        log.record(0xabc, 5_000, query_events("exec.query"));
        log.record(0xdef, 9_000, query_events("exec.query"));
        log.roll(1);
        log.record(0x123, 2_000, query_events("exec.query"));
        log.roll(2);
        let drained = log.drain();
        assert_eq!(drained.len(), 3);
        let jsonl = to_jsonl(&drained);
        let summary = crate::check::check_jsonl(&jsonl).expect("slowlog jsonl is a valid trace");
        // 3 wrappers + 3×2 inner spans.
        assert_eq!(summary.spans, 9);
        assert!(jsonl.contains("\"slowlog.query\""));
        assert!(jsonl.contains("\"latency_ns\": 9000"));
        assert!(jsonl.contains("\"window\": 2"));
    }
}
