//! Schema checks for exported artefacts, shared by the `obsv_check` binary
//! and by tests. These validate the *files* a tuning run wrote (JSONL
//! traces, Chrome traces, metrics dumps), complementing
//! [`crate::trace::validate`], which checks the in-memory event stream.

use crate::json::{self, Json};

/// Check a JSONL trace: every line parses, carries the required fields,
/// sequence numbers are strictly increasing, and every Begin has an End.
pub fn check_jsonl(text: &str) -> Result<CheckSummary, String> {
    let mut last_seq: Option<f64> = None;
    let mut open: std::collections::HashMap<i64, String> = std::collections::HashMap::new();
    let mut events = 0usize;
    let mut spans = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {}", lineno + 1, e))?;
        let seq = field_num(&v, "seq", lineno)?;
        let kind = field_str(&v, "kind", lineno)?;
        let id = field_num(&v, "id", lineno)? as i64;
        field_num(&v, "parent", lineno)?;
        field_num(&v, "tid", lineno)?;
        field_num(&v, "ts_ns", lineno)?;
        let name = field_str(&v, "name", lineno)?;
        if v.get("args").and_then(Json::as_object).is_none() {
            return Err(format!("line {}: missing args object", lineno + 1));
        }
        if let Some(prev) = last_seq {
            if seq <= prev {
                return Err(format!(
                    "line {}: non-monotone seq {} after {}",
                    lineno + 1,
                    seq,
                    prev
                ));
            }
        }
        last_seq = Some(seq);
        match kind.as_str() {
            "B" => {
                spans += 1;
                open.insert(id, name);
            }
            "E" => {
                if open.remove(&id).is_none() {
                    return Err(format!("line {}: end of unknown span {}", lineno + 1, id));
                }
            }
            "I" => {}
            other => return Err(format!("line {}: unknown kind '{}'", lineno + 1, other)),
        }
        events += 1;
    }
    if let Some((id, name)) = open.iter().next() {
        return Err(format!("unclosed span {id} ('{name}')"));
    }
    Ok(CheckSummary { events, spans })
}

/// Check a Chrome `trace_event` file: top-level object with a
/// `traceEvents` array of well-formed `"X"`/`"i"` records.
pub fn check_chrome(text: &str) -> Result<CheckSummary, String> {
    let v = json::parse(text).map_err(|e| e.to_string())?;
    let list = v
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    let mut spans = 0usize;
    for (i, e) in list.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        for key in ["name", "ts"] {
            if e.get(key).is_none() {
                return Err(format!("event {i}: missing {key}"));
            }
        }
        match ph {
            "X" => {
                spans += 1;
                let dur = e
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: X event missing dur"))?;
                if dur < 0.0 {
                    return Err(format!("event {i}: negative duration"));
                }
            }
            "i" => {}
            other => return Err(format!("event {i}: unexpected phase '{other}'")),
        }
    }
    Ok(CheckSummary {
        events: list.len(),
        spans,
    })
}

/// Check a metrics dump: one JSON object whose values are numbers,
/// fixed-bucket histogram objects (`bounds`/`counts`/`sum`/`count`), or
/// latency histogram objects (`count`/`p50`/`p90`/`p99`/`p999`/`max`).
pub fn check_metrics(text: &str) -> Result<CheckSummary, String> {
    let v = json::parse(text).map_err(|e| e.to_string())?;
    let obj = v
        .as_object()
        .ok_or_else(|| "metrics dump must be a JSON object".to_string())?;
    for (name, value) in obj {
        match value {
            Json::Num(_) | Json::Null => {}
            Json::Object(h) => {
                if h.contains_key("bounds") {
                    for key in ["bounds", "counts", "sum", "count"] {
                        if !h.contains_key(key) {
                            return Err(format!("metric '{name}': histogram missing {key}"));
                        }
                    }
                } else {
                    for key in ["count", "p50", "p90", "p99", "p999", "max"] {
                        if !h.contains_key(key) {
                            return Err(format!("metric '{name}': latency object missing {key}"));
                        }
                    }
                }
            }
            _ => return Err(format!("metric '{name}': unexpected value type")),
        }
    }
    Ok(CheckSummary {
        events: obj.len(),
        spans: 0,
    })
}

/// Check a windowed-rollup JSONL stream: every line is a flat JSON object
/// with a numeric `window` field, windows strictly increase, and every
/// value is a number or null.
pub fn check_windows(text: &str) -> Result<CheckSummary, String> {
    let mut last_window: Option<f64> = None;
    let mut lines = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {}", lineno + 1, e))?;
        let obj = v
            .as_object()
            .ok_or_else(|| format!("line {}: window entry must be an object", lineno + 1))?;
        let window = obj
            .get("window")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("line {}: missing numeric 'window'", lineno + 1))?;
        if let Some(prev) = last_window {
            if window <= prev {
                return Err(format!(
                    "line {}: non-monotone window {} after {}",
                    lineno + 1,
                    window,
                    prev
                ));
            }
        }
        last_window = Some(window);
        for (name, value) in obj {
            if !matches!(value, Json::Num(_) | Json::Null) {
                return Err(format!(
                    "line {}: metric '{}' is not a number",
                    lineno + 1,
                    name
                ));
            }
        }
        lines += 1;
    }
    Ok(CheckSummary {
        events: lines,
        spans: 0,
    })
}

/// Check a health JSONL stream: every line parses as a
/// [`crate::health::HealthSnapshot`] with the core fields present, and
/// ticks strictly increase *per shard* (a sharded service interleaves one
/// snapshot per shard per tick into a single stream).
pub fn check_health(text: &str) -> Result<CheckSummary, String> {
    let mut last_tick: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    let mut lines = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {}", lineno + 1, e))?;
        for key in [
            "tick",
            "epoch_generation",
            "epoch_age_ticks",
            "staleness_backlog",
            "budget_balance",
            "queries",
            "latency_p99_ns",
        ] {
            // Non-finite floats render as null (e.g. an unlimited budget's
            // balance), which reads back as 0 — present, just not a Num.
            match v.get(key) {
                Some(Json::Null) => {}
                Some(n) if n.as_f64().is_some() => {}
                _ => {
                    return Err(format!("line {}: missing numeric '{}'", lineno + 1, key));
                }
            }
        }
        let snap = crate::health::HealthSnapshot::from_json_line(line)
            .map_err(|e| format!("line {}: {}", lineno + 1, e))?;
        if let Some(&prev) = last_tick.get(&snap.shard) {
            if snap.tick <= prev {
                return Err(format!(
                    "line {}: non-monotone tick {} after {} (shard {})",
                    lineno + 1,
                    snap.tick,
                    prev,
                    snap.shard
                ));
            }
        }
        last_tick.insert(snap.shard, snap.tick);
        lines += 1;
    }
    Ok(CheckSummary {
        events: lines,
        spans: 0,
    })
}

/// What a successful check saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckSummary {
    /// Lines (JSONL), trace events (Chrome), or metrics (dump).
    pub events: usize,
    /// Spans among them (0 for metrics dumps).
    pub spans: usize,
}

fn field_num(v: &Json, key: &str, lineno: usize) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("line {}: missing numeric field '{}'", lineno + 1, key))
}

fn field_str(v: &Json, key: &str, lineno: usize) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("line {}: missing string field '{}'", lineno + 1, key))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::{to_chrome, to_jsonl};
    use crate::trace::Tracer;

    fn sample() -> Vec<crate::trace::Event> {
        let t = Tracer::enabled();
        {
            let root = t.span("root");
            root.instant("tick", vec![]);
            let _c = root.child("child");
        }
        t.flush()
    }

    #[test]
    fn exported_jsonl_passes() {
        let s = check_jsonl(&to_jsonl(&sample())).expect("valid jsonl");
        assert_eq!(s.spans, 2);
        assert_eq!(s.events, 5);
    }

    #[test]
    fn exported_chrome_passes() {
        let s = check_chrome(&to_chrome(&sample())).expect("valid chrome trace");
        assert_eq!(s.spans, 2);
    }

    #[test]
    fn metrics_dump_passes() {
        let r = crate::metrics::Registry::new();
        r.counter("a").inc();
        r.histogram("h", &[1.0]).observe(0.5);
        let s = check_metrics(&r.snapshot().render_json()).expect("valid metrics");
        assert_eq!(s.events, 2);
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        assert!(check_jsonl("{\"seq\": 1}\n").is_err());
        assert!(check_chrome("{\"traceEvents\": [{\"ph\": \"Z\"}]}").is_err());
        assert!(check_metrics("[1, 2]").is_err());
    }

    #[test]
    fn latency_metrics_dump_passes() {
        let r = crate::metrics::Registry::new();
        r.latency("q.latency_ns").observe(1234);
        let s = check_metrics(&r.snapshot().render_json()).expect("valid metrics");
        assert_eq!(s.events, 1);
        // A latency object missing its quantiles is rejected.
        assert!(check_metrics("{\"m\": {\"count\": 1}}").is_err());
    }

    #[test]
    fn window_stream_checks() {
        let r = std::sync::Arc::new(crate::metrics::Registry::new());
        let c = r.counter("qps");
        let lat = r.latency("q.latency_ns");
        let w = crate::window::WindowedRegistry::new(std::sync::Arc::clone(&r));
        let mut text = String::new();
        for window in 1..=3u64 {
            c.add(window);
            lat.observe(1000 * window);
            text.push_str(&w.roll(window).to_json_line());
            text.push('\n');
        }
        let s = check_windows(&text).expect("valid window stream");
        assert_eq!(s.events, 3);
        assert!(check_windows("{\"no_window\": 1}\n").is_err());
        assert!(
            check_windows("{\"window\": 2}\n{\"window\": 1}\n").is_err(),
            "non-monotone windows must fail"
        );
        assert!(check_windows("{\"window\": 1, \"m\": \"str\"}\n").is_err());
    }

    #[test]
    fn health_stream_checks() {
        let mut a = crate::health::HealthSnapshot {
            tick: 1,
            queries: 10,
            latency_p99_ns: 500,
            ..Default::default()
        };
        let mut text = a.to_json_line();
        text.push('\n');
        a.tick = 2;
        text.push_str(&a.to_json_line());
        text.push('\n');
        let s = check_health(&text).expect("valid health stream");
        assert_eq!(s.events, 2);
        // Repeated tick fails; missing core field fails.
        text.push_str(&a.to_json_line());
        assert!(check_health(&text).is_err());
        assert!(check_health("{\"tick\": 1}\n").is_err());
    }
}
