//! The sharded cluster: one [`autod::OnlineService`] per shard behind a
//! deterministic router, with a shared budget arbiter funding every tick.
//!
//! Each shard is a complete, independent serving stack — its own database
//! RwLock, workload monitor, lifecycle daemon, epoch handle, and private
//! telemetry registry — so shards never contend on locks or counters.
//! Cross-shard state exists in exactly three places: the immutable
//! [`ShardPlan`], the arbiter's demand vector (updated once per tick from
//! collected [`TickReport`]s), and the fallback path's ordered read locks.
//!
//! ## Tick protocol
//!
//! [`ServeCluster::tick_wait`] splits the global budget over the demand
//! each shard reported at the end of its previous tick (`1 + pending`),
//! fires `tick_begin_budgeted` on *every* daemon so shards tune in
//! parallel, then collects acknowledgements in shard order — the observable
//! order is deterministic even though the tuning work overlaps in time.
//!
//! ## Fallback execution
//!
//! Cross-shard SELECTs reassemble their referenced tables into a scratch
//! database built from the schema skeleton: read locks are taken in
//! ascending shard order (the cluster-wide lock order; writers only ever
//! hold one shard lock, so no cycle is possible), owned tables are cloned
//! from their owner, and partition slices are gathered in shard order. The
//! statement then binds, optimizes against an *empty* statistics catalog
//! (magic-number selectivities), and executes locally. Fallback queries are
//! deliberately invisible to every shard's workload monitor: they are not
//! single-shard statements, so no shard's tuner should chase them.

use crate::arbiter::BudgetArbiter;
use crate::plan::{Placement, ShardPlan, ShardPlanConfig};
use crate::router::{Route, Router};
use autod::{AutodConfig, OnlineService, QueryHandle, ServiceReport, TickReport};
use autostats::{AutoStatsManager, ManagerConfig, ManagerError, OnlineEvent, TuneError};
use executor::{execute_plan, ExecOutput, StatementOutcome};
use obsv::{HealthSnapshot, LatencyHistogram, LatencySample};
use optimizer::{OptimizeOptions, Optimizer};
use parking_lot::{Mutex, RwLock};
use query::{bind_statement, parse_statement, BoundStatement, Statement};
use stats::StatsCatalog;
use std::sync::Arc;
use storage::{Database, Result as StorageResult};

/// Cluster configuration: the placement knobs plus the per-shard service
/// configuration and the *global* tuning budget the arbiter splits.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    pub shards: usize,
    /// Tables with at least this many rows are hash-partitioned across all
    /// shards (no effect on a 1-shard cluster).
    pub partition_threshold: usize,
    /// Seed of the partition row hash.
    pub partition_seed: u64,
    /// Global tuning budget per tick, split across shards by demand. The
    /// per-shard `autod.budget_per_tick` is ignored in favour of this.
    pub global_budget_per_tick: f64,
    /// Template for each shard's daemon configuration (`shard` is stamped
    /// per shard by the cluster).
    pub autod: AutodConfig,
    /// Manager configuration each shard's `AutoStatsManager` starts from.
    pub manager: ManagerConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let autod = AutodConfig::default();
        ServeConfig {
            shards: 1,
            partition_threshold: usize::MAX,
            partition_seed: ShardPlanConfig::default().partition_seed,
            global_budget_per_tick: autod.budget_per_tick,
            autod,
            manager: ManagerConfig {
                creation: autostats::CreationPolicy::Manual,
                auto_maintain: false,
                ..ManagerConfig::default()
            },
        }
    }
}

/// A running sharded cluster. See the module docs.
pub struct ServeCluster {
    plan: Arc<ShardPlan>,
    router: Router,
    services: Vec<OnlineService>,
    /// Cached database handles, indexed by shard (fallback readers).
    dbs: Vec<Arc<RwLock<Database>>>,
    /// Empty structural clone of the original database: the scratch-space
    /// template of the fallback path.
    skeleton: Arc<Database>,
    /// Stateless optimizer for fallback queries.
    optimizer: Arc<Optimizer>,
    arbiter: BudgetArbiter,
    /// Demand vector for the next tick split, updated from collected
    /// reports; starts at the arbiter's floor (1.0 per shard).
    demands: Mutex<Vec<f64>>,
}

impl ServeCluster {
    /// Plan placement, split the database, and start one online service per
    /// shard. Shard assignments are journaled as tick-0
    /// [`OnlineEvent::ShardAssigned`] events in each shard's session before
    /// the daemon starts, so every journal begins with an auditable
    /// manifest of what the shard owns.
    pub fn start(db: Database, config: ServeConfig) -> StorageResult<ServeCluster> {
        let plan = Arc::new(ShardPlan::build(
            &db,
            &ShardPlanConfig {
                shards: config.shards,
                partition_threshold: config.partition_threshold,
                partition_seed: config.partition_seed,
            },
        ));
        let skeleton = Arc::new(db.schema_skeleton());
        let shard_dbs = plan.shard_databases(&db)?;

        let mut services = Vec::with_capacity(plan.shards());
        for (s, shard_db) in shard_dbs.into_iter().enumerate() {
            let manifest = plan.shard_manifest(s, &shard_db);
            // A fresh (private) registry per shard: telemetry merges happen
            // at the cluster level, never through a shared registry.
            let obs = obsv::Obs::disabled();
            let manager = AutoStatsManager::new_with_obs(shard_db, config.manager.clone(), obs);
            let mut parts = manager.serve();
            for (table, rows, partitioned) in manifest {
                parts.session.record_online(OnlineEvent::ShardAssigned {
                    tick: 0,
                    shard: s as u32,
                    table,
                    rows,
                    partitioned,
                });
            }
            let shard_config = AutodConfig {
                shard: s as u32,
                ..config.autod.clone()
            };
            services.push(OnlineService::start(parts, shard_config));
        }

        let dbs = services.iter().map(OnlineService::database).collect();
        let demands = Mutex::new(vec![BudgetArbiter::demand(0); plan.shards()]);
        Ok(ServeCluster {
            router: Router::new(Arc::clone(&plan)),
            plan,
            services,
            dbs,
            skeleton,
            optimizer: Arc::new(Optimizer::default()),
            arbiter: BudgetArbiter::new(config.global_budget_per_tick),
            demands,
        })
    }

    pub fn shards(&self) -> usize {
        self.plan.shards()
    }

    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    pub fn router(&self) -> &Router {
        &self.router
    }

    /// The shard services, indexed by shard id (telemetry, epochs, windows).
    pub fn services(&self) -> &[OnlineService] {
        &self.services
    }

    pub fn service(&self, shard: usize) -> &OnlineService {
        &self.services[shard]
    }

    /// A cloneable client for one query thread. `tid` tags the thread's
    /// trace events on every shard handle it touches.
    pub fn client(&self, tid: u64) -> ClusterClient {
        ClusterClient {
            router: self.router.clone(),
            handles: self.services.iter().map(|s| s.handle(tid)).collect(),
            dbs: self.dbs.clone(),
            skeleton: Arc::clone(&self.skeleton),
            optimizer: Arc::clone(&self.optimizer),
        }
    }

    /// Run one synchronized cluster tick: split the global budget over the
    /// current demand vector, fire every shard's tick concurrently, then
    /// collect reports in shard order. Returns the per-shard reports.
    ///
    /// # Errors
    /// Returns the first shard error in shard order; later shards still
    /// complete their tick (their reports are dropped for this round but
    /// their demand floor resets).
    pub fn tick_wait(&self) -> Result<Vec<TickReport>, TuneError> {
        let shares = {
            let demands = self.demands.lock();
            self.arbiter.split(&demands)
        };
        let pending: Vec<_> = self
            .services
            .iter()
            .zip(&shares)
            .map(|(svc, &share)| svc.tick_begin_budgeted(share))
            .collect();
        let mut reports = Vec::with_capacity(pending.len());
        let mut first_err = None;
        for (s, p) in pending.into_iter().enumerate() {
            match self.services[s].tick_collect(p) {
                Ok(report) => reports.push(report),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                    reports.push(TickReport::default());
                }
            }
        }
        {
            let mut demands = self.demands.lock();
            for (d, r) in demands.iter_mut().zip(&reports) {
                *d = BudgetArbiter::demand(r.pending);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(reports),
        }
    }

    /// The demand vector the next tick will split over (snapshot).
    pub fn demands(&self) -> Vec<f64> {
        self.demands.lock().clone()
    }

    pub fn arbiter(&self) -> &BudgetArbiter {
        &self.arbiter
    }

    /// Per-shard health snapshots, in shard order.
    pub fn health(&self) -> Vec<HealthSnapshot> {
        self.services.iter().map(OnlineService::health).collect()
    }

    /// Cluster-level health: counters summed, quantiles bounded (see
    /// [`HealthSnapshot::merge`]). For exact merged latency quantiles use
    /// [`ServeCluster::merged_query_latency`].
    pub fn merged_health(&self) -> HealthSnapshot {
        HealthSnapshot::merge(&self.health())
    }

    /// Exact cluster-wide query-latency distribution: a fresh histogram
    /// merged from every shard's `autod.query.latency_ns`. Histogram merge
    /// is exactly associative (bucket-count addition), so this equals the
    /// histogram a single shared registry would have recorded.
    pub fn merged_query_latency(&self) -> LatencySample {
        let merged = LatencyHistogram::detached();
        for svc in &self.services {
            merged.merge_from(&svc.metrics().latency("autod.query.latency_ns"));
        }
        merged.snapshot()
    }

    /// Same merge for DML latency.
    pub fn merged_dml_latency(&self) -> LatencySample {
        let merged = LatencyHistogram::detached();
        for svc in &self.services {
            merged.merge_from(&svc.metrics().latency("autod.dml.latency_ns"));
        }
        merged.snapshot()
    }

    /// Per-shard epoch generations, in shard order.
    pub fn generations(&self) -> Vec<u64> {
        self.services
            .iter()
            .map(OnlineService::generation)
            .collect()
    }

    /// Shut every shard down in shard order. Returns the per-shard final
    /// `(database, report)` pairs, or `None` if any daemon already died.
    pub fn shutdown(self) -> Option<Vec<(Database, ServiceReport)>> {
        self.services
            .into_iter()
            .map(OnlineService::shutdown)
            .collect()
    }
}

/// A per-thread cluster client: routes each statement and executes it on
/// the owning shard(s). Cheap to clone.
#[derive(Clone)]
pub struct ClusterClient {
    router: Router,
    handles: Vec<QueryHandle>,
    dbs: Vec<Arc<RwLock<Database>>>,
    skeleton: Arc<Database>,
    optimizer: Arc<Optimizer>,
}

impl ClusterClient {
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Parse and run one SQL statement.
    ///
    /// # Errors
    /// Parse, bind, optimize, and execution errors, exactly as the
    /// unsharded [`QueryHandle::run_sql`].
    pub fn run_sql(&self, sql: &str) -> Result<StatementOutcome, ManagerError> {
        let stmt = parse_statement(sql)?;
        self.run(&stmt)
    }

    /// Run one parsed statement on whatever shard(s) the router picks.
    ///
    /// # Errors
    /// Same surface as [`QueryHandle::run`]; multi-shard routes fail on the
    /// first shard error in shard order.
    pub fn run(&self, stmt: &Statement) -> Result<StatementOutcome, ManagerError> {
        match self.router.route(stmt) {
            Route::Single(s) | Route::PartitionedInsert(s) => self.handles[s].run(stmt),
            Route::Broadcast => self.run_broadcast(stmt),
            Route::Scatter => self.run_scatter(stmt),
            Route::Fallback => self.run_fallback(stmt),
        }
    }

    /// UPDATE/DELETE on a partitioned table: the slices are disjoint, so
    /// applying the statement on every shard touches each row exactly once
    /// and per-shard counts sum to the single-database answer.
    fn run_broadcast(&self, stmt: &Statement) -> Result<StatementOutcome, ManagerError> {
        let mut rows_affected = 0usize;
        let mut work = 0.0f64;
        for handle in &self.handles {
            match handle.run(stmt)? {
                StatementOutcome::Dml {
                    rows_affected: r,
                    work: w,
                } => {
                    rows_affected += r;
                    work += w;
                }
                // Broadcast only routes DML; a Query outcome cannot happen.
                other => return Ok(other),
            }
        }
        Ok(StatementOutcome::Dml {
            rows_affected,
            work,
        })
    }

    /// Projection-only single-table SELECT over a partitioned table: run on
    /// every shard through its own handle (so each shard's monitor observes
    /// its slice of the workload) and concatenate rows in shard order.
    fn run_scatter(&self, stmt: &Statement) -> Result<StatementOutcome, ManagerError> {
        let mut rows = Vec::new();
        let mut work = 0.0f64;
        let mut estimated_cost = 0.0f64;
        for handle in &self.handles {
            match handle.run(stmt)? {
                StatementOutcome::Query {
                    output,
                    estimated_cost: cost,
                } => {
                    rows.extend(output.rows);
                    work += output.work;
                    estimated_cost += cost;
                }
                other => return Ok(other),
            }
        }
        Ok(StatementOutcome::Query {
            output: ExecOutput { rows, work },
            estimated_cost,
        })
    }

    /// Cross-shard SELECT: reassemble the referenced tables into a scratch
    /// database and execute there (see the module docs for the locking and
    /// statistics story).
    fn run_fallback(&self, stmt: &Statement) -> Result<StatementOutcome, ManagerError> {
        let Statement::Select(select) = stmt else {
            // The router only falls back on SELECTs; route anything else to
            // shard 0 defensively.
            return self.handles[0].run(stmt);
        };

        // Ascending shard order — the cluster-wide lock order. Writers hold
        // at most one shard lock at a time, so ordered readers cannot
        // deadlock against them.
        let shards = self.router.involved_shards(stmt);
        let guards: Vec<_> = shards.iter().map(|&s| self.dbs[s].read()).collect();

        let mut scratch = (*self.skeleton).clone();
        let mut materialized: Vec<storage::TableId> = Vec::new();
        for table_ref in &select.from {
            let Some(p) = self.router.plan().placement_by_name(&table_ref.table) else {
                continue; // unknown table: let the binder report it below
            };
            if materialized.contains(&p.table) {
                continue;
            }
            materialized.push(p.table);
            match p.placement {
                Placement::Owned(owner) => {
                    if let Some(gi) = shards.iter().position(|&s| s == owner) {
                        *scratch.table_mut(p.table) = guards[gi].table(p.table).clone();
                    }
                }
                Placement::Partitioned => {
                    // Gather slices in shard order for a deterministic row
                    // order in the scratch table.
                    for (gi, _) in shards.iter().enumerate() {
                        let source = guards[gi].table(p.table);
                        for row in 0..source.row_count() {
                            scratch
                                .table_mut(p.table)
                                .insert(source.row_values(row))
                                .map_err(|e| ManagerError::Exec(e.into()))?;
                        }
                    }
                }
            }
        }
        drop(guards);

        let BoundStatement::Select(query) = bind_statement(&scratch, stmt)? else {
            return self.handles[0].run(stmt);
        };
        // No shard's statistics describe the reassembled tables, so the
        // fallback optimizes against an empty catalog (magic numbers) — the
        // honest cost model for a path the tuner never sees.
        let catalog = StatsCatalog::new();
        let optimized = self.optimizer.optimize(
            &scratch,
            &query,
            catalog.full_view(),
            &OptimizeOptions::default(),
        )?;
        let output = execute_plan(&scratch, &query, &optimized.plan, &self.optimizer.params)
            .map_err(ManagerError::Exec)?;
        Ok(StatementOutcome::Query {
            output,
            estimated_cost: optimized.cost,
        })
    }
}
