//! Admission routing: a pure statement → shard mapping over the
//! [`ShardPlan`].
//!
//! Routing looks only at the statement's table names and shape — never at
//! wall clocks, thread ids, or load — so the same statement routes the same
//! way on every run and from every client thread. DML is single-table in
//! the supported subset, so it is always single-shard unless its table is
//! hash-partitioned; only SELECTs can be cross-shard.

use crate::plan::{Placement, ShardPlan};
use query::{SelectItem, SelectStmt, Statement};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Where a statement executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// Every referenced table is owned by this one shard: run it there
    /// directly on the shard's `QueryHandle`.
    Single(usize),
    /// INSERT into a hash-partitioned table: the row hash picks this shard.
    PartitionedInsert(usize),
    /// UPDATE/DELETE on a hash-partitioned table: apply on every shard
    /// (slices are disjoint, so per-shard results sum).
    Broadcast,
    /// Projection-only single-table SELECT over a partitioned table: run on
    /// every shard and concatenate rows in shard order.
    Scatter,
    /// Cross-shard SELECT (or a partitioned SELECT whose shape cannot
    /// scatter): reassemble the referenced tables into a scratch database
    /// and execute there.
    Fallback,
}

/// The deterministic statement router. Cheap to clone; stateless beyond the
/// shared plan.
#[derive(Debug, Clone)]
pub struct Router {
    plan: Arc<ShardPlan>,
}

impl Router {
    pub fn new(plan: Arc<ShardPlan>) -> Router {
        Router { plan }
    }

    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Route one parsed statement. Unknown table names route to shard 0,
    /// whose binder reports the same "no such table" error the unsharded
    /// service would.
    pub fn route(&self, stmt: &Statement) -> Route {
        match stmt {
            Statement::Insert(ins) => match self.table_placement(&ins.table) {
                Some(Placement::Owned(s)) => Route::Single(s),
                Some(Placement::Partitioned) => {
                    Route::PartitionedInsert(self.plan.row_shard(&ins.values))
                }
                None => Route::Single(0),
            },
            Statement::Update(u) => self.route_write(&u.table),
            Statement::Delete(d) => self.route_write(&d.table),
            Statement::Select(s) => self.route_select(s),
        }
    }

    fn route_write(&self, table: &str) -> Route {
        match self.table_placement(table) {
            Some(Placement::Owned(s)) => Route::Single(s),
            Some(Placement::Partitioned) => Route::Broadcast,
            None => Route::Single(0),
        }
    }

    fn route_select(&self, s: &SelectStmt) -> Route {
        let mut owners: BTreeSet<usize> = BTreeSet::new();
        let mut partitioned = false;
        for t in &s.from {
            match self.table_placement(&t.table) {
                Some(Placement::Owned(shard)) => {
                    owners.insert(shard);
                }
                Some(Placement::Partitioned) => partitioned = true,
                None => {
                    owners.insert(0);
                }
            }
        }
        if partitioned {
            // Concatenating per-shard rows is only sound for a bare
            // projection of one table: no aggregates (a per-shard COUNT is
            // not the global COUNT), no GROUP BY, no ORDER BY, no joins.
            let projection_only = s
                .items
                .iter()
                .all(|i| matches!(i, SelectItem::Star | SelectItem::Column(_)));
            if s.from.len() == 1
                && projection_only
                && s.group_by.is_empty()
                && s.order_by.is_empty()
            {
                return Route::Scatter;
            }
            return Route::Fallback;
        }
        match owners.len() {
            0 | 1 => Route::Single(owners.into_iter().next().unwrap_or(0)),
            _ => Route::Fallback,
        }
    }

    fn table_placement(&self, name: &str) -> Option<Placement> {
        self.plan.placement_by_name(name).map(|p| p.placement)
    }

    /// The shards a statement touches, in ascending order — the lock-
    /// acquisition order of the fallback path.
    pub fn involved_shards(&self, stmt: &Statement) -> Vec<usize> {
        match self.route(stmt) {
            Route::Single(s) | Route::PartitionedInsert(s) => vec![s],
            Route::Broadcast | Route::Scatter => (0..self.plan.shards()).collect(),
            Route::Fallback => {
                let mut shards: BTreeSet<usize> = BTreeSet::new();
                if let Statement::Select(sel) = stmt {
                    for t in &sel.from {
                        match self.table_placement(&t.table) {
                            Some(Placement::Owned(s)) => {
                                shards.insert(s);
                            }
                            Some(Placement::Partitioned) => {
                                shards.extend(0..self.plan.shards());
                            }
                            None => {
                                shards.insert(0);
                            }
                        }
                    }
                }
                shards.into_iter().collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ShardPlanConfig;
    use query::parse_statement;
    use storage::{ColumnDef, DataType, Database, Schema, Value};

    fn test_plan() -> Arc<ShardPlan> {
        let mut db = Database::new();
        for (name, rows) in [("orders", 400usize), ("customer", 50), ("nation", 5)] {
            let id = db
                .create_table(
                    name,
                    Schema::new(vec![
                        ColumnDef::new("k", DataType::Int),
                        ColumnDef::new("v", DataType::Int),
                    ]),
                )
                .unwrap();
            for i in 0..rows {
                db.table_mut(id)
                    .insert(vec![Value::Int(i as i64), Value::Int(0)])
                    .unwrap();
            }
        }
        Arc::new(ShardPlan::build(
            &db,
            &ShardPlanConfig {
                shards: 2,
                partition_threshold: 100,
                ..ShardPlanConfig::default()
            },
        ))
    }

    fn route(router: &Router, sql: &str) -> Route {
        router.route(&parse_statement(sql).unwrap())
    }

    #[test]
    fn dml_routes_to_owner_and_partitions_broadcast() {
        let router = Router::new(test_plan());
        // customer/nation are small: owned by some single shard.
        assert!(matches!(
            route(&router, "DELETE FROM customer WHERE k < 5"),
            Route::Single(_)
        ));
        assert!(matches!(
            route(&router, "UPDATE nation SET v = 1 WHERE k = 2"),
            Route::Single(_)
        ));
        // orders is partitioned: writes broadcast, inserts row-hash.
        assert_eq!(route(&router, "UPDATE orders SET v = 9"), Route::Broadcast);
        assert!(matches!(
            route(&router, "INSERT INTO orders VALUES (7, 7)"),
            Route::PartitionedInsert(_)
        ));
    }

    #[test]
    fn selects_split_by_shape() {
        let router = Router::new(test_plan());
        assert!(matches!(
            route(&router, "SELECT * FROM customer WHERE k > 1"),
            Route::Single(_)
        ));
        assert_eq!(route(&router, "SELECT k FROM orders"), Route::Scatter);
        assert_eq!(
            route(&router, "SELECT COUNT(*) FROM orders"),
            Route::Fallback
        );
        assert_eq!(
            route(&router, "SELECT k FROM orders ORDER BY k"),
            Route::Fallback
        );
        assert_eq!(
            route(
                &router,
                "SELECT c.k FROM customer c, orders o WHERE c.k = o.k"
            ),
            Route::Fallback
        );
    }

    #[test]
    fn cross_shard_join_of_owned_tables_falls_back_or_colocates() {
        let router = Router::new(test_plan());
        let r = route(
            &router,
            "SELECT c.k FROM customer c, nation n WHERE c.k = n.k",
        );
        // Either both small tables landed on one shard (Single) or they
        // split (Fallback); both are legal, but the answer is a pure
        // function of the plan.
        assert!(matches!(r, Route::Single(_) | Route::Fallback));
        assert_eq!(
            r,
            route(
                &router,
                "SELECT c.k FROM customer c, nation n WHERE c.k = n.k"
            )
        );
    }

    #[test]
    fn insert_row_hash_is_stable() {
        let router = Router::new(test_plan());
        let stmt = parse_statement("INSERT INTO orders VALUES (42, 1)").unwrap();
        let first = router.route(&stmt);
        for _ in 0..10 {
            assert_eq!(router.route(&stmt), first);
        }
    }
}
