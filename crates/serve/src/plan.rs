//! Deterministic table → shard placement and shard-database construction.
//!
//! The plan is a pure function of the database's table names, row counts,
//! and the configuration: tables are visited largest-first (ties broken by
//! name) and assigned to the least-loaded shard, except tables at or above
//! `partition_threshold` rows, which are hash-partitioned across all shards
//! by a seeded FNV-1a hash of the whole row. Each shard's database is a
//! [`Database::schema_skeleton`] of the original — same [`TableId`]s, same
//! column ordinals, same index metadata — holding rows only for the tables
//! (or partition slices) it owns.

use storage::{Database, Result as StorageResult, TableId, Value};

/// Where one table's rows live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// The whole table lives on this shard.
    Owned(usize),
    /// Rows are hash-partitioned across all shards.
    Partitioned,
}

/// One table's placement, with the inputs that decided it.
#[derive(Debug, Clone)]
pub struct TablePlacement {
    pub table: TableId,
    /// Lower-cased table name (the router's lookup key).
    pub name: String,
    /// Rows at planning time.
    pub rows: u64,
    pub placement: Placement,
}

/// Placement knobs. `partition_threshold` is in rows; partitioning only
/// applies when the cluster has more than one shard (a 1-shard cluster owns
/// every table wholly, which keeps it bit-identical to the unsharded
/// service).
#[derive(Debug, Clone)]
pub struct ShardPlanConfig {
    pub shards: usize,
    /// Tables with at least this many rows are hash-partitioned.
    pub partition_threshold: usize,
    /// Seed of the row hash that assigns partitioned rows (and routed
    /// INSERTs) to shards.
    pub partition_seed: u64,
}

impl Default for ShardPlanConfig {
    fn default() -> Self {
        ShardPlanConfig {
            shards: 1,
            partition_threshold: usize::MAX,
            partition_seed: 0x5EED_5A2D,
        }
    }
}

/// The deterministic table → shard mapping (see the module docs).
#[derive(Debug, Clone)]
pub struct ShardPlan {
    shards: usize,
    partition_seed: u64,
    /// Indexed by `TableId` ordinal.
    placements: Vec<TablePlacement>,
}

impl ShardPlan {
    /// Plan placement for `db`. Greedy largest-first bin packing by row
    /// count: sort tables by (rows desc, name asc), then place each on the
    /// shard with the fewest assigned rows (ties favour the lowest shard
    /// index). Tables at or above the partition threshold are partitioned
    /// across all shards when `shards > 1`.
    pub fn build(db: &Database, config: &ShardPlanConfig) -> ShardPlan {
        let shards = config.shards.max(1);
        let mut placements: Vec<TablePlacement> = db
            .table_ids()
            .map(|id| {
                let t = db.table(id);
                TablePlacement {
                    table: id,
                    name: t.name().to_ascii_lowercase(),
                    rows: t.row_count() as u64,
                    placement: Placement::Owned(0),
                }
            })
            .collect();

        let mut order: Vec<usize> = (0..placements.len()).collect();
        order.sort_by(|&a, &b| {
            placements[b]
                .rows
                .cmp(&placements[a].rows)
                .then_with(|| placements[a].name.cmp(&placements[b].name))
        });

        let mut load = vec![0u64; shards];
        for idx in order {
            let rows = placements[idx].rows;
            if shards > 1 && rows as usize >= config.partition_threshold {
                placements[idx].placement = Placement::Partitioned;
                // A partition slice loads every shard roughly evenly.
                for l in &mut load {
                    *l += rows / shards as u64;
                }
                continue;
            }
            let target = (0..shards)
                .min_by_key(|&s| (load[s], s))
                .unwrap_or_default();
            placements[idx].placement = Placement::Owned(target);
            load[target] += rows;
        }

        ShardPlan {
            shards,
            partition_seed: config.partition_seed,
            placements,
        }
    }

    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Every table's placement, in `TableId` order.
    pub fn placements(&self) -> &[TablePlacement] {
        &self.placements
    }

    /// Placement of `table`, or `None` for an unknown id.
    pub fn placement(&self, table: TableId) -> Option<&TablePlacement> {
        self.placements.get(table.0 as usize)
    }

    /// Placement looked up by (case-insensitive) table name.
    pub fn placement_by_name(&self, name: &str) -> Option<&TablePlacement> {
        let key = name.to_ascii_lowercase();
        self.placements.iter().find(|p| p.name == key)
    }

    /// The shard a partitioned row belongs to: seeded FNV-1a over a stable
    /// encoding of every value in the row. Pure — the same row always lands
    /// on the same shard, so INSERT routing agrees with the initial split.
    pub fn row_shard(&self, values: &[Value]) -> usize {
        let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ self.partition_seed;
        let mut eat = |b: u8| {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1_0000_01b3);
        };
        for v in values {
            match v {
                Value::Null => eat(0),
                Value::Int(i) => {
                    eat(1);
                    i.to_le_bytes().into_iter().for_each(&mut eat);
                }
                Value::Float(f) => {
                    eat(2);
                    f.to_bits().to_le_bytes().into_iter().for_each(&mut eat);
                }
                Value::Str(s) => {
                    eat(3);
                    s.bytes().for_each(&mut eat);
                }
                Value::Date(d) => {
                    eat(4);
                    d.to_le_bytes().into_iter().for_each(&mut eat);
                }
            }
        }
        (hash % self.shards as u64) as usize
    }

    /// Build the per-shard databases: one schema skeleton each, owned
    /// tables cloned verbatim (rows *and* modification counters, so a
    /// 1-shard cluster starts from a bit-identical database), partitioned
    /// tables split row by row via [`ShardPlan::row_shard`].
    pub fn shard_databases(&self, db: &Database) -> StorageResult<Vec<Database>> {
        let mut out: Vec<Database> = (0..self.shards).map(|_| db.schema_skeleton()).collect();
        for p in &self.placements {
            match p.placement {
                Placement::Owned(s) => {
                    *out[s].table_mut(p.table) = db.table(p.table).clone();
                }
                Placement::Partitioned => {
                    let source = db.table(p.table);
                    for row in 0..source.row_count() {
                        let values = source.row_values(row);
                        let shard = self.row_shard(&values);
                        out[shard].table_mut(p.table).insert(values)?;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Rows shard `shard` holds for each table it participates in, in
    /// `TableId` order — the input for `ShardAssigned` journal events.
    pub fn shard_manifest(&self, shard: usize, shard_db: &Database) -> Vec<(TableId, u64, bool)> {
        self.placements
            .iter()
            .filter_map(|p| match p.placement {
                Placement::Owned(s) if s == shard => Some((p.table, p.rows, false)),
                Placement::Partitioned => {
                    Some((p.table, shard_db.table(p.table).row_count() as u64, true))
                }
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::{ColumnDef, DataType, Schema};

    fn db_with(tables: &[(&str, usize)]) -> Database {
        let mut db = Database::new();
        for (name, rows) in tables {
            let id = db
                .create_table(
                    *name,
                    Schema::new(vec![
                        ColumnDef::new("k", DataType::Int),
                        ColumnDef::new("v", DataType::Str),
                    ]),
                )
                .unwrap();
            for i in 0..*rows {
                db.table_mut(id)
                    .insert(vec![Value::Int(i as i64), Value::Str(format!("r{i}"))])
                    .unwrap();
            }
        }
        db
    }

    #[test]
    fn placement_is_deterministic_and_balanced() {
        let db = db_with(&[("a", 100), ("b", 90), ("c", 10), ("d", 5)]);
        let config = ShardPlanConfig {
            shards: 2,
            ..ShardPlanConfig::default()
        };
        let p1 = ShardPlan::build(&db, &config);
        let p2 = ShardPlan::build(&db, &config);
        for (x, y) in p1.placements().iter().zip(p2.placements()) {
            assert_eq!(x.placement, y.placement, "plan must be deterministic");
        }
        // Largest-first greedy: a -> shard 0, b -> shard 1, c -> shard 1
        // (load 90+10 < 100), d -> shard 0? load after c: s0=100, s1=100;
        // tie favours shard 0.
        assert_eq!(
            p1.placement_by_name("a").unwrap().placement,
            Placement::Owned(0)
        );
        assert_eq!(
            p1.placement_by_name("b").unwrap().placement,
            Placement::Owned(1)
        );
        assert_eq!(
            p1.placement_by_name("c").unwrap().placement,
            Placement::Owned(1)
        );
        assert_eq!(
            p1.placement_by_name("d").unwrap().placement,
            Placement::Owned(0)
        );
    }

    #[test]
    fn partitioning_splits_all_rows_exactly_once() {
        let db = db_with(&[("big", 500), ("small", 20)]);
        let plan = ShardPlan::build(
            &db,
            &ShardPlanConfig {
                shards: 3,
                partition_threshold: 100,
                ..ShardPlanConfig::default()
            },
        );
        let big = db.table_id("big").unwrap();
        assert_eq!(
            plan.placement(big).unwrap().placement,
            Placement::Partitioned
        );
        let shards = plan.shard_databases(&db).unwrap();
        assert_eq!(shards.len(), 3);
        let total: usize = shards.iter().map(|s| s.table(big).row_count()).sum();
        assert_eq!(total, 500, "partitioning preserves every row");
        // Same TableIds everywhere.
        for s in &shards {
            assert_eq!(s.table_id("big"), Some(big));
            assert_eq!(s.table_count(), db.table_count());
        }
        // Each row is on the shard its hash says.
        for (si, s) in shards.iter().enumerate() {
            let t = s.table(big);
            for r in 0..t.row_count() {
                assert_eq!(plan.row_shard(&t.row_values(r)), si);
            }
        }
    }

    #[test]
    fn one_shard_database_is_a_verbatim_clone() {
        let db = db_with(&[("a", 50), ("b", 8)]);
        let plan = ShardPlan::build(&db, &ShardPlanConfig::default());
        let shards = plan.shard_databases(&db).unwrap();
        assert_eq!(shards.len(), 1);
        let clone = &shards[0];
        for id in db.table_ids() {
            let (orig, copy) = (db.table(id), clone.table(id));
            assert_eq!(orig.name(), copy.name());
            assert_eq!(orig.row_count(), copy.row_count());
            assert_eq!(
                orig.modification_counter(),
                copy.modification_counter(),
                "owned tables keep their modification counters"
            );
            for r in 0..orig.row_count() {
                assert_eq!(orig.row_values(r), copy.row_values(r));
            }
        }
    }

    #[test]
    fn manifest_lists_owned_and_partitioned_tables() {
        let db = db_with(&[("big", 300), ("small", 10)]);
        let plan = ShardPlan::build(
            &db,
            &ShardPlanConfig {
                shards: 2,
                partition_threshold: 100,
                ..ShardPlanConfig::default()
            },
        );
        let shards = plan.shard_databases(&db).unwrap();
        let small = db.table_id("small").unwrap();
        let owner = match plan.placement(small).unwrap().placement {
            Placement::Owned(s) => s,
            Placement::Partitioned => panic!("small table should not partition"),
        };
        for (si, sdb) in shards.iter().enumerate() {
            let manifest = plan.shard_manifest(si, sdb);
            // Every shard holds a slice of `big`.
            assert!(manifest
                .iter()
                .any(|(t, _, part)| *part && sdb.table(*t).name() == "big"));
            let has_small = manifest.iter().any(|(t, _, _)| *t == small);
            assert_eq!(has_small, si == owner);
        }
    }
}
