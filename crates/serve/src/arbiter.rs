//! The shared token-bucket budget arbiter.
//!
//! One *global* tuning budget is funded per tick and split across shards in
//! proportion to demand — the pending work (queued templates plus deferred
//! refreshes) each shard reported at the end of its previous tick, plus a
//! constant floor so an idle shard still receives tokens to pay down debt.
//! The split is pure f64 arithmetic in shard order, so it is bit-stable
//! run to run. Carry-over happens downstream: each shard's own
//! [`autostats::OnlineTuner`] bucket keeps unspent tokens and debt, exactly
//! as in the unsharded daemon.

/// Splits a global per-tick budget across shards by demand.
#[derive(Debug, Clone)]
pub struct BudgetArbiter {
    global_per_tick: f64,
}

impl BudgetArbiter {
    pub fn new(global_per_tick: f64) -> BudgetArbiter {
        BudgetArbiter { global_per_tick }
    }

    pub fn global_per_tick(&self) -> f64 {
        self.global_per_tick
    }

    /// The demand signal derived from a shard's last tick: `1 + pending`,
    /// so every shard keeps a positive claim and backlogged shards claim
    /// proportionally more.
    pub fn demand(pending: usize) -> f64 {
        1.0 + pending as f64
    }

    /// Split the global budget across `demands.len()` shards. Negative and
    /// non-finite demands count as zero; if no shard has positive demand the
    /// budget splits evenly. An infinite global budget funds every shard
    /// infinitely (the unconstrained-tuning configuration).
    pub fn split(&self, demands: &[f64]) -> Vec<f64> {
        let n = demands.len();
        if n == 0 {
            return Vec::new();
        }
        if !self.global_per_tick.is_finite() {
            return vec![self.global_per_tick; n];
        }
        let clamped: Vec<f64> = demands
            .iter()
            .map(|&d| if d.is_finite() && d > 0.0 { d } else { 0.0 })
            .collect();
        let total: f64 = clamped.iter().sum();
        if total <= 0.0 {
            return vec![self.global_per_tick / n as f64; n];
        }
        clamped
            .iter()
            .map(|&d| self.global_per_tick * d / total)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_proportional_and_conserves_budget() {
        let arbiter = BudgetArbiter::new(1000.0);
        let shares = arbiter.split(&[1.0, 3.0]);
        assert_eq!(shares, vec![250.0, 750.0]);
        let sum: f64 = arbiter.split(&[2.0, 5.0, 13.0]).iter().sum();
        assert!((sum - 1000.0).abs() < 1e-9, "split conserves the budget");
    }

    #[test]
    fn zero_demand_splits_evenly() {
        let arbiter = BudgetArbiter::new(600.0);
        assert_eq!(arbiter.split(&[0.0, 0.0, 0.0]), vec![200.0, 200.0, 200.0]);
        assert_eq!(arbiter.split(&[-5.0, f64::NAN]), vec![300.0, 300.0]);
    }

    #[test]
    fn single_shard_receives_the_exact_global_budget() {
        // Bit-exactness matters: the 1-shard cluster must fund ticks with
        // the same f64 the unsharded service would.
        let arbiter = BudgetArbiter::new(500_000.0);
        assert_eq!(arbiter.split(&[1.0]), vec![500_000.0]);
        assert_eq!(arbiter.split(&[17.0])[0].to_bits(), 500_000.0f64.to_bits());
    }

    #[test]
    fn infinite_budget_funds_every_shard() {
        let arbiter = BudgetArbiter::new(f64::INFINITY);
        let shares = arbiter.split(&[0.0, 4.0]);
        assert!(shares.iter().all(|s| s.is_infinite() && *s > 0.0));
    }

    #[test]
    fn split_is_deterministic() {
        let arbiter = BudgetArbiter::new(12345.678);
        let demands = [1.0, 2.5, 0.0, 19.25];
        let a: Vec<u64> = arbiter
            .split(&demands)
            .iter()
            .map(|f| f.to_bits())
            .collect();
        let b: Vec<u64> = arbiter
            .split(&demands)
            .iter()
            .map(|f| f.to_bits())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn demand_floors_at_one() {
        assert_eq!(BudgetArbiter::demand(0), 1.0);
        assert_eq!(BudgetArbiter::demand(9), 10.0);
    }
}
