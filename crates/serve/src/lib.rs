//! # serve — the sharded multi-tenant serving layer
//!
//! `autod`'s epoch-snapshot catalogs let readers run lock-free, but one
//! `Database` RwLock and one [`LifecycleDaemon`] remain a whole-system
//! bottleneck under heavy traffic. This crate removes it by sharding:
//!
//! * [`ShardPlan`] — a deterministic table → shard placement. Tables are
//!   assigned greedily by size to the least-loaded shard; tables at or above
//!   a row threshold are hash-partitioned across *all* shards by a seeded
//!   row hash. Every shard database is a [`Database::schema_skeleton`] of
//!   the original filled with only its owned tables, so [`TableId`]s,
//!   column ordinals, and index metadata are identical on every shard and
//!   bound statements need no translation.
//! * [`Router`] — a pure statement → [`Route`] function over the plan.
//!   Single-shard SELECTs and all DML on owned tables go straight to their
//!   shard's [`QueryHandle`]; INSERTs into partitioned tables row-hash to
//!   one shard; UPDATE/DELETE on partitioned tables broadcast (slices are
//!   disjoint); everything else takes the explicit reassembly fallback.
//! * [`BudgetArbiter`] — one global tuning budget per tick, split across
//!   shards proportionally to demand (pending work reported by each shard's
//!   last [`TickReport`]). Unspent tokens and debt carry over inside each
//!   shard's own token bucket, exactly as in the unsharded daemon.
//! * [`ServeCluster`] — one [`autod::OnlineService`] (database, monitor,
//!   lifecycle daemon, epoch handle, telemetry registry) per shard, plus
//!   cloneable [`ClusterClient`]s for query threads and merge-based
//!   cluster telemetry (exact latency-histogram merges, summed health).
//!
//! ## Determinism contract
//!
//! A 1-shard cluster is bit-identical — catalog trajectory, epoch
//! generations, tick reports, and journal (after its `ShardAssigned`
//! prelude) — to a plain [`autod::OnlineService`] over the same database,
//! because shard 0's database is a structural clone and the arbiter's
//! single-shard split returns the global budget exactly. At any shard
//! count, a fixed seed and fixed tick schedule replay bit-identically:
//! placement, routing, and per-shard tick funding are all pure functions of
//! the inputs. Shard assignments are journaled as typed
//! [`autostats::OnlineEvent::ShardAssigned`] events at tick 0 so replays
//! stay auditable.
//!
//! [`LifecycleDaemon`]: autod::LifecycleDaemon
//! [`QueryHandle`]: autod::QueryHandle
//! [`TickReport`]: autod::TickReport
//! [`Database::schema_skeleton`]: storage::Database::schema_skeleton
//! [`TableId`]: storage::TableId

// Library code must stay panic-free on arbitrary input; tests may unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod arbiter;
pub mod cluster;
pub mod plan;
pub mod router;

pub use arbiter::BudgetArbiter;
pub use cluster::{ClusterClient, ServeCluster, ServeConfig};
pub use plan::{Placement, ShardPlan, ShardPlanConfig, TablePlacement};
pub use router::{Route, Router};
