//! Epoch-swap publication of tuned catalogs.
//!
//! The daemon tunes a private *master* [`StatsCatalog`] and, when it has
//! something new, publishes an immutable copy behind an [`EpochHandle`]:
//! an `ArcSwap`-style generation pointer — a `parking_lot::RwLock` holding
//! an `Arc<CatalogEpoch>`. Query threads `load()` the current epoch (a
//! cheap `Arc` clone under a read lock held for nanoseconds), then optimize
//! against that frozen catalog for as long as they like; the daemon's next
//! `publish` never blocks them and never mutates anything they can see.
//! Generations are monotone, so readers can detect catalog changes by
//! comparing `generation` values.

use parking_lot::RwLock;
use stats::StatsCatalog;
use std::sync::Arc;

/// One published, immutable catalog generation.
#[derive(Debug)]
pub struct CatalogEpoch {
    /// Monotone publication counter (0 = the initial catalog).
    pub generation: u64,
    /// Frozen catalog snapshot for this generation.
    pub catalog: StatsCatalog,
}

/// Shared handle through which the daemon publishes and queries read.
#[derive(Debug)]
pub struct EpochHandle {
    slot: RwLock<Arc<CatalogEpoch>>,
}

impl EpochHandle {
    /// Wrap an initial catalog as generation 0.
    pub fn new(catalog: StatsCatalog) -> Self {
        EpochHandle {
            slot: RwLock::new(Arc::new(CatalogEpoch {
                generation: 0,
                catalog,
            })),
        }
    }

    /// The current epoch. The returned `Arc` stays valid (and immutable)
    /// across any number of subsequent publishes.
    pub fn load(&self) -> Arc<CatalogEpoch> {
        Arc::clone(&self.slot.read())
    }

    /// Current generation number.
    pub fn generation(&self) -> u64 {
        self.slot.read().generation
    }

    /// Publish a new catalog, bumping the generation. Returns the new
    /// generation number.
    pub fn publish(&self, catalog: StatsCatalog) -> u64 {
        let mut slot = self.slot.write();
        let generation = slot.generation + 1;
        *slot = Arc::new(CatalogEpoch {
            generation,
            catalog,
        });
        generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_bumps_generation_and_old_epochs_stay_valid() {
        let handle = EpochHandle::new(StatsCatalog::new());
        let first = handle.load();
        assert_eq!(first.generation, 0);
        assert_eq!(handle.generation(), 0);

        let g1 = handle.publish(StatsCatalog::new());
        assert_eq!(g1, 1);
        let second = handle.load();
        assert_eq!(second.generation, 1);
        // The epoch loaded before the publish is untouched.
        assert_eq!(first.generation, 0);
        assert_eq!(first.catalog.total_count(), 0);

        let g2 = handle.publish(StatsCatalog::new());
        assert_eq!(g2, 2);
        assert_eq!(handle.generation(), 2);
    }
}
