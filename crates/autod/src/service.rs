//! The online service: queries in front, the lifecycle daemon behind.
//!
//! [`OnlineService::start`] takes over from an
//! [`AutoStatsManager::serve`](autostats::AutoStatsManager::serve) hand-off:
//! the database moves behind a `parking_lot::RwLock`, the catalog becomes
//! the daemon's private master (queries read frozen [`CatalogEpoch`]s), and
//! a [`LifecycleDaemon`] thread starts, waiting for ticks.
//!
//! Query threads hold cloneable [`QueryHandle`]s. A SELECT takes the
//! database read lock (concurrent with other readers *and* with the
//! daemon's tick), records itself in the workload monitor, optimizes
//! against the current epoch's catalog, and executes; it never waits for
//! tuning. DML takes the write lock, so modification counters advance
//! atomically with the data. The lock order everywhere — daemon included —
//! is database first, then monitor.
//!
//! [`CatalogEpoch`]: crate::epoch::CatalogEpoch

use crate::daemon::{AutodConfig, LifecycleCore, LifecycleDaemon, TickReport};
use crate::epoch::{CatalogEpoch, EpochHandle};
use crate::monitor::{TemplateStats, WorkloadMonitor};
use autostats::{ManagerError, SessionReport, TuneError};
use executor::{execute_plan_traced, run_statement_traced, StatementOutcome};
use optimizer::{OptimizeOptions, Optimizer};
use parking_lot::{Mutex, RwLock};
use query::{bind_statement, parse_statement, BoundStatement, Statement};
use stats::StatsCatalog;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use storage::Database;

/// Everything the daemon learned, returned at shutdown.
#[derive(Debug)]
pub struct ServiceReport {
    /// The master catalog at shutdown (authoritative, includes drop-list).
    pub catalog: StatsCatalog,
    /// Journal: offline history from before `serve()` plus online events.
    pub session: SessionReport,
    /// Last published epoch generation.
    pub generation: u64,
    /// Ticks the daemon executed.
    pub ticks: u64,
    /// Monitor contents at shutdown, in first-arrival order.
    pub templates: Vec<TemplateStats>,
    /// Total queries the monitor observed (including duplicates).
    pub observed: u64,
    /// Templates the monitor evicted over its life.
    pub evictions: u64,
    /// First error from a fire-and-forget tick, if any occurred.
    pub error: Option<TuneError>,
}

/// A running online statistics service. See the module docs.
pub struct OnlineService {
    db: Arc<RwLock<Database>>,
    monitor: Arc<Mutex<WorkloadMonitor>>,
    epochs: Arc<EpochHandle>,
    optimizer: Arc<Optimizer>,
    obs: obsv::Obs,
    daemon: LifecycleDaemon,
    current_tick: Arc<AtomicU64>,
}

impl OnlineService {
    /// Start serving: wrap the manager hand-off and spawn the daemon.
    pub fn start(parts: autostats::ServeParts, config: AutodConfig) -> OnlineService {
        let obs = parts.obs.clone();
        let monitor_config = config.monitor;
        let (core, db) = LifecycleCore::from_serve(parts, config);
        let optimizer = Arc::new(core.optimizer().clone());
        let epochs = core.epochs();
        let db = Arc::new(RwLock::new(db));
        let monitor = Arc::new(Mutex::new(WorkloadMonitor::new(monitor_config)));
        let daemon = LifecycleDaemon::spawn(core, Arc::clone(&db), Arc::clone(&monitor));
        let current_tick = daemon.tick_cell();
        OnlineService {
            db,
            monitor,
            epochs,
            optimizer,
            obs,
            daemon,
            current_tick,
        }
    }

    /// A cloneable per-thread query entry point. `tid` tags the handle's
    /// trace events (use a distinct id per thread).
    pub fn handle(&self, tid: u64) -> QueryHandle {
        QueryHandle {
            db: Arc::clone(&self.db),
            monitor: Arc::clone(&self.monitor),
            epochs: Arc::clone(&self.epochs),
            optimizer: Arc::clone(&self.optimizer),
            obs: self.obs.fork(tid),
            current_tick: Arc::clone(&self.current_tick),
        }
    }

    /// Fire-and-forget virtual-time tick.
    pub fn tick(&self) {
        self.daemon.tick();
    }

    /// Tick and wait for the report — the deterministic driver's clock.
    pub fn tick_wait(&self) -> Result<TickReport, TuneError> {
        self.daemon.tick_wait()
    }

    /// The current published epoch.
    pub fn epoch(&self) -> Arc<CatalogEpoch> {
        self.epochs.load()
    }

    /// Current epoch generation.
    pub fn generation(&self) -> u64 {
        self.epochs.generation()
    }

    /// Stop the daemon and dismantle the service, recovering the database
    /// and a report. `None` only if the daemon thread panicked.
    pub fn shutdown(self) -> Option<(Database, ServiceReport)> {
        let OnlineService {
            db,
            monitor,
            epochs,
            daemon,
            ..
        } = self;
        let core = daemon.shutdown()?;
        let generation = epochs.generation();
        let ticks = core.ticks();
        let error = core.last_error().cloned();
        let (catalog, session) = core.into_parts();
        let (templates, observed, evictions) = {
            let m = monitor.lock();
            (m.templates(), m.observed_total(), m.evictions_total())
        };
        // Recover the database: sole owner in the common case, else clone.
        let db = match Arc::try_unwrap(db) {
            Ok(lock) => lock.into_inner(),
            Err(shared) => shared.read().clone(),
        };
        Some((
            db,
            ServiceReport {
                catalog,
                session,
                generation,
                ticks,
                templates,
                observed,
                evictions,
                error,
            },
        ))
    }
}

/// A cloneable query entry point over the running service.
#[derive(Clone)]
pub struct QueryHandle {
    db: Arc<RwLock<Database>>,
    monitor: Arc<Mutex<WorkloadMonitor>>,
    epochs: Arc<EpochHandle>,
    optimizer: Arc<Optimizer>,
    obs: obsv::Obs,
    current_tick: Arc<AtomicU64>,
}

impl QueryHandle {
    /// Parse and run one SQL statement. SELECTs go through the concurrent
    /// read path (monitor + epoch catalog), DML through the write path.
    pub fn run_sql(&self, sql: &str) -> Result<StatementOutcome, ManagerError> {
        let stmt = parse_statement(sql)?;
        self.run(&stmt)
    }

    /// Run one parsed statement.
    pub fn run(&self, stmt: &Statement) -> Result<StatementOutcome, ManagerError> {
        match stmt {
            Statement::Select(_) => {
                let db = self.db.read();
                let BoundStatement::Select(query) = bind_statement(&db, stmt)? else {
                    // A SELECT binds to a select; defensive fallback only.
                    drop(db);
                    return self.run_write(stmt);
                };
                let tick = self.current_tick.load(Ordering::SeqCst);
                self.monitor.lock().observe(&query, tick);
                let epoch = self.epochs.load();
                let optimized = self.optimizer.optimize(
                    &db,
                    &query,
                    epoch.catalog.full_view(),
                    &OptimizeOptions::default(),
                )?;
                let output = execute_plan_traced(
                    &db,
                    &query,
                    &optimized.plan,
                    &self.optimizer.params,
                    &self.obs.tracer,
                )?;
                self.obs.metrics.counter("autod.queries").inc();
                Ok(StatementOutcome::Query {
                    output,
                    estimated_cost: optimized.cost,
                })
            }
            _ => self.run_write(stmt),
        }
    }

    fn run_write(&self, stmt: &Statement) -> Result<StatementOutcome, ManagerError> {
        let mut db = self.db.write();
        let bound = bind_statement(&db, stmt)?;
        let epoch = self.epochs.load();
        let out = run_statement_traced(
            &mut db,
            epoch.catalog.full_view(),
            &self.optimizer,
            &bound,
            &self.obs.tracer,
        )?;
        self.obs.metrics.counter("autod.dml").inc();
        Ok(out)
    }

    /// The epoch generation this handle currently sees.
    pub fn generation(&self) -> u64 {
        self.epochs.generation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autostats::{AutoStatsManager, CreationPolicy, ManagerConfig};
    use storage::{ColumnDef, DataType, Schema, Value};

    /// Example-2 shape (skewed `salary`, join with departments) so MNSA
    /// actually builds statistics.
    fn test_db() -> Database {
        let mut db = Database::new();
        let emp = db
            .create_table(
                "employees",
                Schema::new(vec![
                    ColumnDef::new("empid", DataType::Int),
                    ColumnDef::new("deptid", DataType::Int),
                    ColumnDef::new("age", DataType::Int),
                    ColumnDef::new("salary", DataType::Int),
                ]),
            )
            .unwrap();
        let dept = db
            .create_table(
                "departments",
                Schema::new(vec![
                    ColumnDef::new("deptid", DataType::Int),
                    ColumnDef::new("dname", DataType::Str),
                ]),
            )
            .unwrap();
        for i in 0..3000i64 {
            let salary = if i % 100 == 0 { 250 } else { i % 200 };
            db.table_mut(emp)
                .insert(vec![
                    Value::Int(i),
                    Value::Int(i % 20),
                    Value::Int(20 + (i % 50)),
                    Value::Int(salary),
                ])
                .unwrap();
        }
        for d in 0..20i64 {
            db.table_mut(dept)
                .insert(vec![Value::Int(d), Value::Str(format!("d{d}"))])
                .unwrap();
        }
        #[allow(deprecated)]
        db.table_mut(emp).reset_modification_counter();
        #[allow(deprecated)]
        db.table_mut(dept).reset_modification_counter();
        db
    }

    fn service(budget: f64) -> OnlineService {
        let mgr = AutoStatsManager::new(
            test_db(),
            ManagerConfig {
                creation: CreationPolicy::Manual,
                auto_maintain: false,
                ..ManagerConfig::default()
            },
        );
        OnlineService::start(
            mgr.serve(),
            AutodConfig {
                budget_per_tick: budget,
                shrink_every: 2,
                ..AutodConfig::default()
            },
        )
    }

    #[test]
    fn queries_flow_and_ticks_tune_them() {
        let svc = service(f64::INFINITY);
        let h = svc.handle(1);
        let sql = "SELECT e.empid, d.dname FROM employees e, departments d \
                   WHERE e.deptid = d.deptid AND e.age < 30 AND e.salary > 200";
        let out = h.run_sql(sql).unwrap();
        assert!(matches!(out, StatementOutcome::Query { .. }));
        assert_eq!(svc.generation(), 0);

        let report = svc.tick_wait().unwrap();
        assert_eq!(report.tick, 1);
        assert!(report.queries_tuned >= 1);
        assert!(svc.generation() >= 1, "tuning published a new epoch");

        // The same query re-observed does not re-tune (fingerprint dedup).
        h.run_sql(sql).unwrap();
        let again = svc.tick_wait().unwrap();
        assert_eq!(again.queries_tuned, 0);

        let (db, report) = svc.shutdown().unwrap();
        assert!(db.table_id("employees").is_some());
        assert!(report.catalog.total_count() > 0);
        assert_eq!(report.observed, 2);
        assert_eq!(report.templates.len(), 1);
        assert_eq!(report.templates[0].frequency, 2);
        assert!(report.error.is_none());
        assert!(report
            .session
            .online
            .iter()
            .any(|e| matches!(e, autostats::OnlineEvent::EpochSwap { .. })));
    }

    #[test]
    fn dml_advances_counters_through_the_service() {
        let svc = service(f64::INFINITY);
        let h = svc.handle(1);
        let out = h
            .run_sql("DELETE FROM employees WHERE empid < 100")
            .unwrap();
        assert!(matches!(out, StatementOutcome::Dml { .. }));
        let (db, _) = svc.shutdown().unwrap();
        let employees = db.table_id("employees").unwrap();
        assert!(db.table(employees).modification_counter() > 0);
    }
}
