//! The online service: queries in front, the lifecycle daemon behind.
//!
//! [`OnlineService::start`] takes over from an
//! [`AutoStatsManager::serve`](autostats::AutoStatsManager::serve) hand-off:
//! the database moves behind a `parking_lot::RwLock`, the catalog becomes
//! the daemon's private master (queries read frozen [`CatalogEpoch`]s), and
//! a [`LifecycleDaemon`] thread starts, waiting for ticks.
//!
//! Query threads hold cloneable [`QueryHandle`]s. A SELECT takes the
//! database read lock (concurrent with other readers *and* with the
//! daemon's tick), records itself in the workload monitor, optimizes
//! against the current epoch's catalog, and executes; it never waits for
//! tuning. DML takes the write lock, so modification counters advance
//! atomically with the data. The lock order everywhere — daemon included —
//! is database first, then monitor.
//!
//! [`CatalogEpoch`]: crate::epoch::CatalogEpoch

use crate::daemon::{AutodConfig, LifecycleCore, LifecycleDaemon, TickReport};
use crate::epoch::{CatalogEpoch, EpochHandle};
use crate::monitor::{TemplateStats, WorkloadMonitor};
use autostats::{ManagerError, SessionReport, TuneError};
use executor::{execute_plan_traced, run_statement_traced, StatementOutcome};
use obsv::{HealthSnapshot, LatencyHistogram, SlowQuery, SlowQueryLog, SpanSampler, WindowDelta};
use optimizer::{OptimizeOptions, Optimizer};
use parking_lot::{Mutex, RwLock};
use query::{bind_statement, parse_statement, BoundStatement, Statement};
use stats::StatsCatalog;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use storage::Database;

/// Shared always-on telemetry for the query path: latency histograms in
/// the service registry, the deterministic span sampler, the slow-query
/// reservoir, and per-tick windowed rollups. Everything here is
/// observation-only — wall-clock flavoured values are outside the
/// bit-identity determinism contract, and nothing reads them back into
/// tuning or execution.
pub(crate) struct ServiceTelemetry {
    pub(crate) sampler: SpanSampler,
    pub(crate) slowlog: SlowQueryLog,
    pub(crate) query_latency: LatencyHistogram,
    pub(crate) dml_latency: LatencyHistogram,
    windows: obsv::WindowedRegistry,
}

/// Everything the daemon learned, returned at shutdown.
#[derive(Debug)]
pub struct ServiceReport {
    /// The master catalog at shutdown (authoritative, includes drop-list).
    pub catalog: StatsCatalog,
    /// Journal: offline history from before `serve()` plus online events.
    pub session: SessionReport,
    /// Last published epoch generation.
    pub generation: u64,
    /// Ticks the daemon executed.
    pub ticks: u64,
    /// Monitor contents at shutdown, in first-arrival order.
    pub templates: Vec<TemplateStats>,
    /// Total queries the monitor observed (including duplicates).
    pub observed: u64,
    /// Templates the monitor evicted over its life.
    pub evictions: u64,
    /// First error from a fire-and-forget tick, if any occurred.
    pub error: Option<TuneError>,
}

/// A running online statistics service. See the module docs.
pub struct OnlineService {
    db: Arc<RwLock<Database>>,
    monitor: Arc<Mutex<WorkloadMonitor>>,
    epochs: Arc<EpochHandle>,
    optimizer: Arc<Optimizer>,
    obs: obsv::Obs,
    daemon: LifecycleDaemon,
    current_tick: Arc<AtomicU64>,
    telemetry: Arc<ServiceTelemetry>,
    health: Arc<Mutex<HealthSnapshot>>,
}

impl OnlineService {
    /// Start serving: wrap the manager hand-off and spawn the daemon.
    pub fn start(parts: autostats::ServeParts, config: AutodConfig) -> OnlineService {
        let obs = parts.obs.clone();
        let monitor_config = config.monitor;
        let telemetry_config = config.telemetry;
        let (core, db) = LifecycleCore::from_serve(parts, config);
        let optimizer = Arc::new(core.optimizer().clone());
        let epochs = core.epochs();
        let db = Arc::new(RwLock::new(db));
        let monitor = Arc::new(Mutex::new(WorkloadMonitor::new(monitor_config)));
        let telemetry = Arc::new(ServiceTelemetry {
            sampler: SpanSampler::new(telemetry_config.sample_seed, telemetry_config.sample_one_in),
            slowlog: SlowQueryLog::new(telemetry_config.slowlog_k),
            query_latency: obs.metrics.latency("autod.query.latency_ns"),
            dml_latency: obs.metrics.latency("autod.dml.latency_ns"),
            windows: obsv::WindowedRegistry::new(Arc::clone(&obs.metrics)),
        });
        let daemon = LifecycleDaemon::spawn(core, Arc::clone(&db), Arc::clone(&monitor));
        let current_tick = daemon.tick_cell();
        let health = daemon.health_cell();
        OnlineService {
            db,
            monitor,
            epochs,
            optimizer,
            obs,
            daemon,
            current_tick,
            telemetry,
            health,
        }
    }

    /// A cloneable per-thread query entry point. `tid` tags the handle's
    /// trace events (use a distinct id per thread).
    pub fn handle(&self, tid: u64) -> QueryHandle {
        QueryHandle {
            db: Arc::clone(&self.db),
            monitor: Arc::clone(&self.monitor),
            epochs: Arc::clone(&self.epochs),
            optimizer: Arc::clone(&self.optimizer),
            obs: self.obs.fork(tid),
            current_tick: Arc::clone(&self.current_tick),
            telemetry: Arc::clone(&self.telemetry),
        }
    }

    /// Fire-and-forget virtual-time tick. Telemetry windows do not advance
    /// on this path (use [`OnlineService::tick_wait`] for windowed rollups).
    pub fn tick(&self) {
        self.daemon.tick();
    }

    /// Tick and wait for the report — the deterministic driver's clock.
    /// Also rolls the slow-query reservoir's window over at this tick;
    /// pair with [`OnlineService::roll_window`] to emit the tick's metric
    /// deltas.
    pub fn tick_wait(&self) -> Result<TickReport, TuneError> {
        let report = self.daemon.tick_wait()?;
        if report.tick > 0 {
            self.telemetry.slowlog.roll(report.tick);
        }
        Ok(report)
    }

    /// [`OnlineService::tick_wait`] with a caller-chosen work-token budget
    /// for this tick — the hook a cluster-level budget arbiter uses to split
    /// one global allowance across shards.
    pub fn tick_wait_budgeted(&self, budget: f64) -> Result<TickReport, TuneError> {
        self.tick_collect(self.tick_begin_budgeted(budget))
    }

    /// Fire a budgeted tick without waiting. A cluster driver begins all
    /// shards' ticks, then collects each with [`OnlineService::tick_collect`]
    /// in shard order — the shards tune in parallel while the observable
    /// collection order stays deterministic.
    pub fn tick_begin_budgeted(&self, budget: f64) -> PendingTick {
        PendingTick(self.daemon.tick_begin_budgeted(budget))
    }

    /// Wait for a tick begun with [`OnlineService::tick_begin_budgeted`].
    pub fn tick_collect(&self, pending: PendingTick) -> Result<TickReport, TuneError> {
        let report = pending
            .0
            .recv()
            .unwrap_or_else(|_| Ok(TickReport::default()))?;
        if report.tick > 0 {
            self.telemetry.slowlog.roll(report.tick);
        }
        Ok(report)
    }

    /// The shared database behind this service. For cross-shard readers in
    /// the serving layer; callers must respect the service-wide lock order
    /// (database first, then any monitor) and never hold the write lock
    /// across a tick.
    pub fn database(&self) -> Arc<RwLock<Database>> {
        Arc::clone(&self.db)
    }

    /// Close the current metrics window as `window`, returning its deltas
    /// (QPS, refreshes, feedback ingest, budget spend, cache hits, latency
    /// quantiles — everything registered in the service metrics registry).
    /// Drivers call this once per tick, with the tick as the window id, so
    /// the window schedule is as deterministic as the tick schedule.
    pub fn roll_window(&self, window: u64) -> WindowDelta {
        self.telemetry.windows.roll(window)
    }

    /// The daemon's latest end-of-tick health snapshot (default before the
    /// first tick completes).
    pub fn health(&self) -> HealthSnapshot {
        self.health.lock().clone()
    }

    /// Drain the slow-query reservoir: closes the current window at the
    /// latest completed tick and takes every retained entry (the K worst
    /// sampled queries per window, each with its full span tree).
    pub fn drain_slow_queries(&self) -> Vec<SlowQuery> {
        self.telemetry
            .slowlog
            .roll(self.current_tick.load(Ordering::SeqCst));
        self.telemetry.slowlog.drain()
    }

    /// The service metrics registry (shared with the daemon and handles).
    pub fn metrics(&self) -> Arc<obsv::Registry> {
        Arc::clone(&self.obs.metrics)
    }

    /// The current published epoch.
    pub fn epoch(&self) -> Arc<CatalogEpoch> {
        self.epochs.load()
    }

    /// Current epoch generation.
    pub fn generation(&self) -> u64 {
        self.epochs.generation()
    }

    /// Stop the daemon and dismantle the service, recovering the database
    /// and a report. `None` only if the daemon thread panicked.
    pub fn shutdown(self) -> Option<(Database, ServiceReport)> {
        let OnlineService {
            db,
            monitor,
            epochs,
            daemon,
            ..
        } = self;
        let core = daemon.shutdown()?;
        let generation = epochs.generation();
        let ticks = core.ticks();
        let error = core.last_error().cloned();
        let (catalog, session) = core.into_parts();
        let (templates, observed, evictions) = {
            let m = monitor.lock();
            (m.templates(), m.observed_total(), m.evictions_total())
        };
        // Recover the database: sole owner in the common case, else clone.
        let db = match Arc::try_unwrap(db) {
            Ok(lock) => lock.into_inner(),
            Err(shared) => shared.read().clone(),
        };
        Some((
            db,
            ServiceReport {
                catalog,
                session,
                generation,
                ticks,
                templates,
                observed,
                evictions,
                error,
            },
        ))
    }
}

/// A tick in flight, begun with [`OnlineService::tick_begin_budgeted`] and
/// finished with [`OnlineService::tick_collect`].
pub struct PendingTick(std::sync::mpsc::Receiver<Result<TickReport, TuneError>>);

/// A cloneable query entry point over the running service.
#[derive(Clone)]
pub struct QueryHandle {
    db: Arc<RwLock<Database>>,
    monitor: Arc<Mutex<WorkloadMonitor>>,
    epochs: Arc<EpochHandle>,
    optimizer: Arc<Optimizer>,
    obs: obsv::Obs,
    current_tick: Arc<AtomicU64>,
    telemetry: Arc<ServiceTelemetry>,
}

impl QueryHandle {
    /// Parse and run one SQL statement. SELECTs go through the concurrent
    /// read path (monitor + epoch catalog), DML through the write path.
    pub fn run_sql(&self, sql: &str) -> Result<StatementOutcome, ManagerError> {
        let stmt = parse_statement(sql)?;
        self.run(&stmt)
    }

    /// Run one parsed statement.
    pub fn run(&self, stmt: &Statement) -> Result<StatementOutcome, ManagerError> {
        match stmt {
            Statement::Select(_) => {
                let db = self.db.read();
                let BoundStatement::Select(query) = bind_statement(&db, stmt)? else {
                    // A SELECT binds to a select; defensive fallback only.
                    drop(db);
                    return self.run_write(stmt);
                };
                let tick = self.current_tick.load(Ordering::SeqCst);
                let fp = self.monitor.lock().observe(&query, tick);
                let epoch = self.epochs.load();
                let start = std::time::Instant::now();
                let optimized = self.optimizer.optimize(
                    &db,
                    &query,
                    epoch.catalog.full_view(),
                    &OptimizeOptions::default(),
                )?;
                // Sampled fingerprints execute under a private tracer so the
                // slow-query reservoir can keep their full span tree. Tracing
                // is observation-only, so the output is identical either way
                // (pinned by tests/telemetry_determinism.rs).
                let sampled =
                    self.telemetry.slowlog.is_enabled() && self.telemetry.sampler.sample(fp);
                let output = if sampled {
                    let tracer = obsv::Tracer::enabled();
                    let output = execute_plan_traced(
                        &db,
                        &query,
                        &optimized.plan,
                        &self.optimizer.params,
                        &tracer,
                    )?;
                    let latency_ns = start.elapsed().as_nanos() as u64;
                    self.telemetry.query_latency.observe(latency_ns);
                    self.telemetry
                        .slowlog
                        .record(fp, latency_ns, tracer.flush());
                    output
                } else {
                    let output = execute_plan_traced(
                        &db,
                        &query,
                        &optimized.plan,
                        &self.optimizer.params,
                        &self.obs.tracer,
                    )?;
                    self.telemetry
                        .query_latency
                        .observe(start.elapsed().as_nanos() as u64);
                    output
                };
                self.obs.metrics.counter("autod.queries").inc();
                Ok(StatementOutcome::Query {
                    output,
                    estimated_cost: optimized.cost,
                })
            }
            _ => self.run_write(stmt),
        }
    }

    fn run_write(&self, stmt: &Statement) -> Result<StatementOutcome, ManagerError> {
        let mut db = self.db.write();
        let bound = bind_statement(&db, stmt)?;
        let epoch = self.epochs.load();
        let start = std::time::Instant::now();
        let out = run_statement_traced(
            &mut db,
            epoch.catalog.full_view(),
            &self.optimizer,
            &bound,
            &self.obs.tracer,
        )?;
        self.telemetry
            .dml_latency
            .observe(start.elapsed().as_nanos() as u64);
        self.obs.metrics.counter("autod.dml").inc();
        Ok(out)
    }

    /// The epoch generation this handle currently sees.
    pub fn generation(&self) -> u64 {
        self.epochs.generation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autostats::{AutoStatsManager, CreationPolicy, ManagerConfig};
    use storage::{ColumnDef, DataType, Schema, Value};

    /// Example-2 shape (skewed `salary`, join with departments) so MNSA
    /// actually builds statistics.
    fn test_db() -> Database {
        let mut db = Database::new();
        let emp = db
            .create_table(
                "employees",
                Schema::new(vec![
                    ColumnDef::new("empid", DataType::Int),
                    ColumnDef::new("deptid", DataType::Int),
                    ColumnDef::new("age", DataType::Int),
                    ColumnDef::new("salary", DataType::Int),
                ]),
            )
            .unwrap();
        let dept = db
            .create_table(
                "departments",
                Schema::new(vec![
                    ColumnDef::new("deptid", DataType::Int),
                    ColumnDef::new("dname", DataType::Str),
                ]),
            )
            .unwrap();
        for i in 0..3000i64 {
            let salary = if i % 100 == 0 { 250 } else { i % 200 };
            db.table_mut(emp)
                .insert(vec![
                    Value::Int(i),
                    Value::Int(i % 20),
                    Value::Int(20 + (i % 50)),
                    Value::Int(salary),
                ])
                .unwrap();
        }
        for d in 0..20i64 {
            db.table_mut(dept)
                .insert(vec![Value::Int(d), Value::Str(format!("d{d}"))])
                .unwrap();
        }
        #[allow(deprecated)]
        db.table_mut(emp).reset_modification_counter();
        #[allow(deprecated)]
        db.table_mut(dept).reset_modification_counter();
        db
    }

    fn service(budget: f64) -> OnlineService {
        let mgr = AutoStatsManager::new(
            test_db(),
            ManagerConfig {
                creation: CreationPolicy::Manual,
                auto_maintain: false,
                ..ManagerConfig::default()
            },
        );
        OnlineService::start(
            mgr.serve(),
            AutodConfig {
                budget_per_tick: budget,
                shrink_every: 2,
                ..AutodConfig::default()
            },
        )
    }

    #[test]
    fn queries_flow_and_ticks_tune_them() {
        let svc = service(f64::INFINITY);
        let h = svc.handle(1);
        let sql = "SELECT e.empid, d.dname FROM employees e, departments d \
                   WHERE e.deptid = d.deptid AND e.age < 30 AND e.salary > 200";
        let out = h.run_sql(sql).unwrap();
        assert!(matches!(out, StatementOutcome::Query { .. }));
        assert_eq!(svc.generation(), 0);

        let report = svc.tick_wait().unwrap();
        assert_eq!(report.tick, 1);
        assert!(report.queries_tuned >= 1);
        assert!(svc.generation() >= 1, "tuning published a new epoch");

        // The same query re-observed does not re-tune (fingerprint dedup).
        h.run_sql(sql).unwrap();
        let again = svc.tick_wait().unwrap();
        assert_eq!(again.queries_tuned, 0);

        let (db, report) = svc.shutdown().unwrap();
        assert!(db.table_id("employees").is_some());
        assert!(report.catalog.total_count() > 0);
        assert_eq!(report.observed, 2);
        assert_eq!(report.templates.len(), 1);
        assert_eq!(report.templates[0].frequency, 2);
        assert!(report.error.is_none());
        assert!(report
            .session
            .online
            .iter()
            .any(|e| matches!(e, autostats::OnlineEvent::EpochSwap { .. })));
    }

    /// Service with every query sampled into the slow-query reservoir.
    fn traced_service() -> OnlineService {
        let mgr = AutoStatsManager::new(
            test_db(),
            ManagerConfig {
                creation: CreationPolicy::Manual,
                auto_maintain: false,
                ..ManagerConfig::default()
            },
        );
        OnlineService::start(
            mgr.serve(),
            AutodConfig {
                budget_per_tick: f64::INFINITY,
                telemetry: crate::daemon::TelemetryConfig {
                    sample_one_in: 1,
                    ..crate::daemon::TelemetryConfig::default()
                },
                ..AutodConfig::default()
            },
        )
    }

    #[test]
    fn health_snapshot_tracks_the_tick() {
        // Finite budget: the JSON round-trip below is exact only for finite
        // floats (non-finite renders as null and reads back as 0).
        let svc = service(1_000_000.0);
        let h = svc.handle(1);
        assert_eq!(svc.health(), obsv::HealthSnapshot::default());
        h.run_sql("SELECT * FROM employees WHERE salary > 200")
            .unwrap();
        h.run_sql("DELETE FROM employees WHERE empid = 0").unwrap();
        svc.tick_wait().unwrap();
        let health = svc.health();
        assert_eq!(health.tick, 1);
        assert_eq!(health.queries, 1);
        assert_eq!(health.dml, 1);
        assert_eq!(health.monitor_templates, 1);
        assert_eq!(health.latency_count, 1);
        assert!(health.latency_p99_ns > 0, "wall-clock latency observed");
        assert_eq!(health.epoch_generation, svc.generation());
        let line = health.to_json_line();
        assert_eq!(obsv::HealthSnapshot::from_json_line(&line), Ok(health));
        svc.shutdown().unwrap();
    }

    #[test]
    fn window_rollups_isolate_per_tick_activity() {
        let svc = service(f64::INFINITY);
        let h = svc.handle(1);
        for _ in 0..3 {
            h.run_sql("SELECT * FROM employees WHERE age < 30").unwrap();
        }
        svc.tick_wait().unwrap();
        let w1 = svc.roll_window(1);
        assert_eq!(w1.count("autod.queries"), 3);
        let lat = w1.latency("autod.query.latency_ns").unwrap();
        assert_eq!(lat.count, 3);
        assert!(lat.quantile(0.99) >= lat.quantile(0.5));

        // Nothing ran since: the next window reports zero activity.
        svc.tick_wait().unwrap();
        let w2 = svc.roll_window(2);
        assert_eq!(w2.count("autod.queries"), 0);
        assert_eq!(w2.latency("autod.query.latency_ns").unwrap().count, 0);
        svc.shutdown().unwrap();
    }

    #[test]
    fn slow_query_reservoir_retains_full_span_trees() {
        let svc = traced_service();
        let h = svc.handle(1);
        h.run_sql("SELECT * FROM employees WHERE salary > 200")
            .unwrap();
        h.run_sql(
            "SELECT e.empid FROM employees e, departments d \
             WHERE e.deptid = d.deptid",
        )
        .unwrap();
        svc.tick_wait().unwrap();
        let slow = svc.drain_slow_queries();
        assert_eq!(slow.len(), 2, "every query sampled at one_in=1");
        assert!(slow.iter().all(|q| !q.events.is_empty()));
        assert!(slow.iter().all(|q| q.window == 1));
        let jsonl = obsv::slowlog::to_jsonl(&slow);
        obsv::check::check_jsonl(&jsonl).expect("slowlog export is a valid trace");
        // Drained means drained.
        assert!(svc.drain_slow_queries().is_empty());
        svc.shutdown().unwrap();
    }

    #[test]
    fn dml_advances_counters_through_the_service() {
        let svc = service(f64::INFINITY);
        let h = svc.handle(1);
        let out = h
            .run_sql("DELETE FROM employees WHERE empid < 100")
            .unwrap();
        assert!(matches!(out, StatementOutcome::Dml { .. }));
        let (db, _) = svc.shutdown().unwrap();
        let employees = db.table_id("employees").unwrap();
        assert!(db.table(employees).modification_counter() > 0);
    }
}
