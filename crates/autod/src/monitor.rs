//! The workload monitor: a bounded reservoir of executed query templates.
//!
//! Every SELECT that runs through the online service is observed here,
//! deduplicated by [`BoundSelect::fingerprint`]. The monitor keeps at most
//! `capacity` distinct templates with per-template frequency and recency;
//! when full, the template with the least `(frequency, last_seen_tick,
//! seeded-hash)` is evicted — frequency-biased retention with a
//! deterministic, seed-keyed tiebreak so two runs with the same stream
//! evict identically.
//!
//! Evicting a hot-but-new template must not erase its history, or a
//! template arriving steadily into a full reservoir would never accumulate
//! enough frequency to displace anything. A bounded *ghost list* (ARC
//! style) remembers the frequency of recently evicted fingerprints; a
//! re-arriving ghost resumes its old count instead of restarting at one.

use query::BoundSelect;
use std::collections::BTreeMap;

/// Monitor sizing and eviction seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorConfig {
    /// Maximum distinct templates retained (and ghost entries remembered).
    pub capacity: usize,
    /// Seed for the deterministic eviction tiebreak.
    pub seed: u64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            capacity: 256,
            seed: 0xA07D,
        }
    }
}

/// Public per-template view (for diagnostics and benchmarks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemplateStats {
    pub fingerprint: u64,
    /// Times this template was observed (including ghost-restored history).
    pub frequency: u64,
    pub first_seen_tick: u64,
    pub last_seen_tick: u64,
}

#[derive(Debug, Clone)]
struct Template {
    query: BoundSelect,
    frequency: u64,
    /// Arrival index (monotone): stable "first seen" ordering for samples.
    arrival: u64,
    first_seen_tick: u64,
    last_seen_tick: u64,
}

#[derive(Debug, Clone, Copy)]
struct Ghost {
    frequency: u64,
    evicted_seq: u64,
}

/// Bounded, deduplicated reservoir of executed query templates.
#[derive(Debug)]
pub struct WorkloadMonitor {
    config: MonitorConfig,
    templates: BTreeMap<u64, Template>,
    ghosts: BTreeMap<u64, Ghost>,
    arrivals: u64,
    evict_seq: u64,
    observed_total: u64,
    evictions_total: u64,
    ghost_hits_total: u64,
    /// Fingerprints evicted since the last [`WorkloadMonitor::drain_evictions`].
    pending_evictions: Vec<u64>,
}

/// SplitMix64 finalizer: the deterministic eviction tiebreak.
fn mix(seed: u64, x: u64) -> u64 {
    let mut z = x ^ seed ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl WorkloadMonitor {
    pub fn new(config: MonitorConfig) -> Self {
        WorkloadMonitor {
            config: MonitorConfig {
                capacity: config.capacity.max(1),
                ..config
            },
            templates: BTreeMap::new(),
            ghosts: BTreeMap::new(),
            arrivals: 0,
            evict_seq: 0,
            observed_total: 0,
            evictions_total: 0,
            ghost_hits_total: 0,
            pending_evictions: Vec::new(),
        }
    }

    /// Observe one executed query at virtual time `tick`. Returns the
    /// template fingerprint.
    pub fn observe(&mut self, query: &BoundSelect, tick: u64) -> u64 {
        let fp = query.fingerprint();
        self.observed_total += 1;
        if let Some(t) = self.templates.get_mut(&fp) {
            t.frequency += 1;
            t.last_seen_tick = tick;
            return fp;
        }
        // Ghost restoration: a recently evicted template resumes its count.
        let history = self.ghosts.remove(&fp).map_or(0, |g| g.frequency);
        if history > 0 {
            self.ghost_hits_total += 1;
        }
        self.arrivals += 1;
        self.templates.insert(
            fp,
            Template {
                query: query.clone(),
                frequency: history + 1,
                arrival: self.arrivals,
                first_seen_tick: tick,
                last_seen_tick: tick,
            },
        );
        if self.templates.len() > self.config.capacity {
            self.evict_one();
        }
        fp
    }

    /// Evict the template with the least `(frequency, last_seen_tick,
    /// mix(seed, fp))` — deterministic for a fixed seed and stream.
    fn evict_one(&mut self) {
        let seed = self.config.seed;
        let victim = self
            .templates
            .iter()
            .map(|(fp, t)| ((t.frequency, t.last_seen_tick, mix(seed, *fp)), *fp))
            .min_by_key(|(key, _)| *key)
            .map(|(_, fp)| fp);
        if let Some(fp) = victim {
            if let Some(t) = self.templates.remove(&fp) {
                self.evict_seq += 1;
                self.ghosts.insert(
                    fp,
                    Ghost {
                        frequency: t.frequency,
                        evicted_seq: self.evict_seq,
                    },
                );
                // Ghost list is bounded too: forget the oldest eviction.
                while self.ghosts.len() > self.config.capacity {
                    let oldest = self
                        .ghosts
                        .iter()
                        .min_by_key(|(_, g)| g.evicted_seq)
                        .map(|(fp, _)| *fp);
                    match oldest {
                        Some(fp) => self.ghosts.remove(&fp),
                        None => break,
                    };
                }
                self.evictions_total += 1;
                self.pending_evictions.push(fp);
            }
        }
    }

    /// The retained sample, in first-arrival order — the workload handed to
    /// the tuner. Arrival order makes "paused daemon ≡ offline tune on the
    /// sample" well defined.
    pub fn sample(&self) -> Vec<BoundSelect> {
        let mut entries: Vec<&Template> = self.templates.values().collect();
        entries.sort_by_key(|t| t.arrival);
        entries.iter().map(|t| t.query.clone()).collect()
    }

    /// Per-template statistics, in first-arrival order.
    pub fn templates(&self) -> Vec<TemplateStats> {
        let mut entries: Vec<(&u64, &Template)> = self.templates.iter().collect();
        entries.sort_by_key(|(_, t)| t.arrival);
        entries
            .into_iter()
            .map(|(fp, t)| TemplateStats {
                fingerprint: *fp,
                frequency: t.frequency,
                first_seen_tick: t.first_seen_tick,
                last_seen_tick: t.last_seen_tick,
            })
            .collect()
    }

    /// Fingerprints evicted since the last drain (for journaling).
    pub fn drain_evictions(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.pending_evictions)
    }

    /// Distinct templates currently retained.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// Total observations (including duplicates of retained templates).
    pub fn observed_total(&self) -> u64 {
        self.observed_total
    }

    /// Total evictions over the monitor's life.
    pub fn evictions_total(&self) -> u64 {
        self.evictions_total
    }

    /// Evicted templates whose history was restored on re-arrival (ARC
    /// ghost hits) over the monitor's life.
    pub fn ghost_hits_total(&self) -> u64 {
        self.ghost_hits_total
    }

    /// Configured capacity (distinct templates retained).
    pub fn capacity(&self) -> usize {
        self.config.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use query::{bind_statement, parse_statement, BoundStatement};
    use storage::{ColumnDef, DataType, Database, Schema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let t = db
            .create_table(
                "t",
                Schema::new(vec![
                    ColumnDef::new("a", DataType::Int),
                    ColumnDef::new("b", DataType::Int),
                ]),
            )
            .unwrap();
        for i in 0..10i64 {
            db.table_mut(t)
                .insert(vec![Value::Int(i), Value::Int(i % 3)])
                .unwrap();
        }
        db
    }

    fn select(db: &Database, sql: &str) -> BoundSelect {
        match bind_statement(db, &parse_statement(sql).unwrap()).unwrap() {
            BoundStatement::Select(q) => q,
            other => panic!("expected select, got {other:?}"),
        }
    }

    fn queries(db: &Database, n: usize) -> Vec<BoundSelect> {
        (0..n)
            .map(|i| select(db, &format!("SELECT * FROM t WHERE a = {i}")))
            .collect()
    }

    #[test]
    fn deduplicates_and_counts_frequency() {
        let db = db();
        let q = select(&db, "SELECT * FROM t WHERE a = 1");
        let mut m = WorkloadMonitor::new(MonitorConfig::default());
        m.observe(&q, 1);
        m.observe(&q, 3);
        assert_eq!(m.len(), 1);
        assert_eq!(m.observed_total(), 2);
        let t = &m.templates()[0];
        assert_eq!(t.frequency, 2);
        assert_eq!(t.first_seen_tick, 1);
        assert_eq!(t.last_seen_tick, 3);
    }

    #[test]
    fn capacity_bound_evicts_least_frequent_first() {
        let db = db();
        let qs = queries(&db, 4);
        let mut m = WorkloadMonitor::new(MonitorConfig {
            capacity: 3,
            seed: 42,
        });
        // q0 is hot; q1..q3 arrive once each.
        for _ in 0..5 {
            m.observe(&qs[0], 1);
        }
        m.observe(&qs[1], 2);
        m.observe(&qs[2], 3);
        m.observe(&qs[3], 4); // over capacity: one frequency-1 template goes
        assert_eq!(m.len(), 3);
        assert_eq!(m.evictions_total(), 1);
        let evicted = m.drain_evictions();
        assert_eq!(evicted.len(), 1);
        assert!(m.drain_evictions().is_empty());
        // The hot template survives; the evictee is the stalest freq-1 one.
        assert!(m.templates().iter().any(|t| t.frequency == 5));
        assert_eq!(evicted[0], qs[1].fingerprint());
    }

    #[test]
    fn ghost_restores_frequency_of_reobserved_evictee() {
        let db = db();
        let qs = queries(&db, 3);
        let mut m = WorkloadMonitor::new(MonitorConfig {
            capacity: 2,
            seed: 7,
        });
        m.observe(&qs[0], 1);
        m.observe(&qs[0], 1);
        m.observe(&qs[1], 1);
        m.observe(&qs[2], 2); // evicts q1 (freq 1, oldest tick)
        assert_eq!(m.drain_evictions(), vec![qs[1].fingerprint()]);
        // q1 returns: its count resumes at 2, not 1.
        m.observe(&qs[1], 3);
        let t = m
            .templates()
            .into_iter()
            .find(|t| t.fingerprint == qs[1].fingerprint());
        assert_eq!(t.map(|t| t.frequency), Some(2));
        assert_eq!(m.ghost_hits_total(), 1);
        assert_eq!(m.capacity(), 2);
    }

    #[test]
    fn eviction_is_deterministic_for_fixed_seed() {
        let db = db();
        let qs = queries(&db, 8);
        let run = |seed: u64| {
            let mut m = WorkloadMonitor::new(MonitorConfig { capacity: 4, seed });
            for (i, q) in qs.iter().enumerate() {
                m.observe(q, i as u64);
            }
            (
                m.sample()
                    .iter()
                    .map(|q| q.fingerprint())
                    .collect::<Vec<_>>(),
                m.drain_evictions(),
            )
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn sample_preserves_arrival_order() {
        let db = db();
        let qs = queries(&db, 3);
        let mut m = WorkloadMonitor::new(MonitorConfig::default());
        for (i, q) in qs.iter().enumerate() {
            m.observe(q, i as u64);
        }
        let fps: Vec<u64> = m.sample().iter().map(|q| q.fingerprint()).collect();
        let expect: Vec<u64> = qs.iter().map(|q| q.fingerprint()).collect();
        assert_eq!(fps, expect);
    }
}
