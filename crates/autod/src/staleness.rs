//! The staleness tracker: modification counters → refresh targets.
//!
//! Consumes [`Database::modification_snapshot`] and flags each built
//! statistic whose table has accumulated more modifications since the
//! statistic's build (`mods_at_build`) than the SQL Server-style threshold
//! `max(min_modified_rows, update_fraction × rows)` — strictly greater, so
//! a table sitting exactly at the threshold is still fresh. The rule itself
//! lives in [`stats::MaintenancePolicy::threshold`] /
//! [`StatsCatalog::stale_statistics`], shared with the offline `maintain`
//! pass; this tracker adds the snapshot bookkeeping and the per-statistic
//! detail a daemon journal wants.
//!
//! [`Database::modification_snapshot`]: storage::Database::modification_snapshot

use stats::{MaintenancePolicy, StatId, StatsCatalog};
use std::collections::BTreeMap;
use storage::{Database, TableId};

/// One stale statistic, with the evidence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaleStatistic {
    pub stat: StatId,
    pub table: TableId,
    /// Table modifications accumulated since this statistic's build.
    pub mods_since_build: u64,
    /// Threshold it exceeded.
    pub threshold: u64,
}

/// Tracks modification-counter snapshots and derives stale statistics.
#[derive(Debug)]
pub struct StalenessTracker {
    policy: MaintenancePolicy,
    last_snapshot: BTreeMap<TableId, u64>,
}

impl StalenessTracker {
    /// `policy` supplies `update_fraction` / `min_modified_rows`; its drop
    /// fields are not consulted here.
    pub fn new(policy: MaintenancePolicy) -> Self {
        StalenessTracker {
            policy,
            last_snapshot: BTreeMap::new(),
        }
    }

    pub fn policy(&self) -> &MaintenancePolicy {
        &self.policy
    }

    /// Snapshot the counters and return every stale built statistic, in
    /// statistic-id order (deterministic).
    pub fn scan(&mut self, db: &Database, catalog: &StatsCatalog) -> Vec<StaleStatistic> {
        self.last_snapshot = db.modification_snapshot();
        catalog
            .stale_statistics(db, &self.policy)
            .into_iter()
            .filter_map(|id| {
                let s = catalog.statistic(id)?;
                let table = s.descriptor.table;
                let counter = self.last_snapshot.get(&table).copied()?;
                let rows = db.try_table(table).ok()?.row_count();
                Some(StaleStatistic {
                    stat: id,
                    table,
                    mods_since_build: counter.saturating_sub(s.mods_at_build),
                    threshold: self.policy.threshold(rows),
                })
            })
            .collect()
    }

    /// The counter snapshot taken by the last [`StalenessTracker::scan`].
    pub fn last_snapshot(&self) -> &BTreeMap<TableId, u64> {
        &self.last_snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats::StatDescriptor;
    use storage::{ColumnDef, DataType, Schema, Value};

    fn db_with(rows: i64) -> (Database, TableId) {
        let mut db = Database::new();
        let t = db
            .create_table(
                "t",
                Schema::new(vec![
                    ColumnDef::new("a", DataType::Int),
                    ColumnDef::new("b", DataType::Int),
                ]),
            )
            .unwrap();
        for i in 0..rows {
            db.table_mut(t)
                .insert(vec![Value::Int(i), Value::Int(i % 5)])
                .unwrap();
        }
        #[allow(deprecated)]
        db.table_mut(t).reset_modification_counter();
        (db, t)
    }

    fn modify(db: &mut Database, t: TableId, n: u64) {
        for i in 0..n {
            db.table_mut(t)
                .insert(vec![Value::Int(i as i64), Value::Int(0)])
                .unwrap();
        }
    }

    #[test]
    fn boundary_exactly_at_min_modified_rows_is_fresh() {
        let (mut db, t) = db_with(100);
        let mut cat = StatsCatalog::new();
        let id = cat
            .create_statistic(&db, StatDescriptor::single(t, 0))
            .unwrap();
        let mut tracker = StalenessTracker::new(MaintenancePolicy::default());
        // threshold = max(500, 0.2 × 100) = 500: exactly 500 mods is fresh.
        modify(&mut db, t, 500);
        assert!(tracker.scan(&db, &cat).is_empty());
        // One more modification crosses it.
        modify(&mut db, t, 1);
        let stale = tracker.scan(&db, &cat);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].stat, id);
        assert_eq!(stale[0].mods_since_build, 501);
        assert_eq!(stale[0].threshold, 500);
        assert_eq!(tracker.last_snapshot()[&t], 501);
    }

    #[test]
    fn twenty_percent_edge_on_large_table() {
        let (mut db, t) = db_with(10_000);
        let mut cat = StatsCatalog::new();
        cat.create_statistic(&db, StatDescriptor::single(t, 0))
            .unwrap();
        let mut tracker = StalenessTracker::new(MaintenancePolicy::default());
        // Rows grow as we insert, so compute the threshold at scan time:
        // after 2000 inserts rows = 12_000 → threshold = 2400.
        modify(&mut db, t, 2000);
        assert!(tracker.scan(&db, &cat).is_empty());
        // After 2400 total the table has 12_400 rows → threshold 2480; keep
        // going until mods (2481) strictly exceed the moving threshold.
        modify(&mut db, t, 481);
        let threshold = MaintenancePolicy::default().threshold(db.table(t).row_count());
        assert_eq!(threshold, 2496);
        assert!(tracker.scan(&db, &cat).is_empty());
        modify(&mut db, t, 120);
        let stale = tracker.scan(&db, &cat);
        assert_eq!(stale.len(), 1);
        assert!(stale[0].mods_since_build > stale[0].threshold);
    }

    #[test]
    fn empty_table_uses_min_modified_rows() {
        let (mut db, t) = db_with(0);
        let mut cat = StatsCatalog::new();
        cat.create_statistic(&db, StatDescriptor::single(t, 0))
            .unwrap();
        let mut tracker = StalenessTracker::new(MaintenancePolicy::default());
        assert!(tracker.scan(&db, &cat).is_empty());
        modify(&mut db, t, 500);
        assert!(tracker.scan(&db, &cat).is_empty());
        modify(&mut db, t, 1);
        assert_eq!(tracker.scan(&db, &cat).len(), 1);
    }

    #[test]
    fn single_row_table_boundary() {
        let (mut db, t) = db_with(1);
        let mut cat = StatsCatalog::new();
        let id = cat
            .create_statistic(&db, StatDescriptor::single(t, 0))
            .unwrap();
        let mut tracker = StalenessTracker::new(MaintenancePolicy::default());
        // threshold = max(500, 0.2 × 1) = 500, fraction term never NaN.
        modify(&mut db, t, 500);
        assert!(tracker.scan(&db, &cat).is_empty());
        modify(&mut db, t, 1);
        let stale = tracker.scan(&db, &cat);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].stat, id);
        assert_eq!(stale[0].threshold, 500);
    }

    #[test]
    fn table_shrinking_to_zero_rows_mid_epoch_refreshes_cleanly() {
        let (mut db, t) = db_with(1000);
        let mut cat = StatsCatalog::new();
        let id = cat
            .create_statistic(&db, StatDescriptor::single(t, 0))
            .unwrap();
        let mut tracker = StalenessTracker::new(MaintenancePolicy::default());
        // Deleting every row counts 1000 modifications against a now-empty
        // table: threshold(0) = 500, so the statistic is stale — and the
        // math must not divide by the zero row count anywhere.
        let all: Vec<usize> = (0..1000).collect();
        db.table_mut(t).delete_rows(all);
        assert_eq!(db.table(t).row_count(), 0);
        let stale = tracker.scan(&db, &cat);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].mods_since_build, 1000);
        assert_eq!(stale[0].threshold, 500);
        // A refresh over the empty table succeeds and restores freshness —
        // no starvation loop where the statistic stays stale forever.
        let refreshed = cat.refresh_statistics(&db, t, &[id]);
        assert_eq!(refreshed.len(), 1);
        assert!(tracker.scan(&db, &cat).is_empty());
        let s = cat.statistic(id).unwrap();
        assert_eq!(s.row_count_at_build, 0);
        // Estimates on the empty statistic stay finite.
        assert!(s.histogram.selectivity_lt(&Value::Int(10)).is_finite());
    }

    #[test]
    fn feedback_correction_resets_baseline_without_starvation() {
        let (mut db, t) = db_with(2000);
        let mut cat = StatsCatalog::new();
        let id = cat
            .create_statistic(&db, StatDescriptor::single(t, 0))
            .unwrap();
        let mut tracker = StalenessTracker::new(MaintenancePolicy::default());
        modify(&mut db, t, 600);
        assert_eq!(tracker.scan(&db, &cat).len(), 1);

        // A feedback correction must count as a refresh for staleness: the
        // corrected statistic records the current counter as its baseline.
        let mut store = stats::FeedbackStore::new();
        let records: Vec<obsv::FeedbackRecord> = (0..6)
            .map(|i| obsv::FeedbackRecord {
                fingerprint: 0,
                table: t.0 as u64,
                column: 0,
                lo: 0.0,
                hi: 10.0 + i as f64,
                est_rows: 100.0,
                rows_out: 120.0,
                input_rows: 2600.0,
            })
            .collect();
        store.ingest(&records);
        let corrected =
            cat.feedback_refresh(&db, t, &[id], &mut store, &stats::FeedbackConfig::default());
        assert_eq!(corrected.len(), 1);
        // Not stale immediately after the correction (no thrash) ...
        assert!(tracker.scan(&db, &cat).is_empty());
        // ... and still eligible for future refreshes once drift resumes
        // (no starvation: the baseline moved forward, not to infinity).
        modify(&mut db, t, 700);
        assert_eq!(tracker.scan(&db, &cat).len(), 1);
    }
}
