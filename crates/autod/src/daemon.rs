//! The lifecycle daemon: budgeted background tuning on virtual-time ticks.
//!
//! [`LifecycleCore`] is the daemon's deterministic heart — a pure state
//! machine advanced by [`LifecycleCore::tick`]. Each tick, in order:
//!
//! 1. **fund** — deposit `budget_per_tick` work tokens into the shared
//!    token bucket (unspent tokens carry over; overshoot becomes debt that
//!    later ticks pay down first);
//! 2. **monitor** — drain the workload monitor's eviction log into the
//!    journal and enqueue its retained sample into the incremental tuner
//!    (fingerprint-deduplicated, so a template is analyzed once);
//! 3. **refresh** — scan modification counters, rebuild stale statistics
//!    table by table through the catalog's shared-scan batch path, charging
//!    each rebuild to the bucket; remaining tables wait for the next tick
//!    once the balance runs out;
//! 4. **tune** — run a budgeted [`OnlineTuner::step`] of MNSA over pending
//!    templates;
//! 5. **shrink** — every `shrink_every` ticks, an MNSA/D-complementing
//!    Shrinking Set pass over the monitor sample (the offline `tune`
//!    tail), also charged to the bucket;
//! 6. **publish** — if the catalog changed, push a frozen copy through the
//!    [`EpochHandle`] so query threads pick it up without blocking.
//!
//! [`LifecycleDaemon`] wraps a `LifecycleCore` in a background thread
//! driven by explicit tick commands over a channel — virtual time, not wall
//! clocks, so schedules are reproducible. With a fixed seed, tick schedule,
//! and a single query thread, the whole catalog trajectory (epochs, work
//! meters, journal) is bit-identical run to run.

use crate::epoch::EpochHandle;
use crate::monitor::{MonitorConfig, WorkloadMonitor};
use crate::staleness::StalenessTracker;
use autostats::{Equivalence, MnsaConfig, OnlineEvent, ServeParts, SessionReport, TuneError};
use parking_lot::{Mutex, RwLock};
use stats::{FeedbackConfig, FeedbackStore, MaintenancePolicy, StatId, StatsCatalog};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use storage::{Database, TableId};

/// Always-on telemetry knobs for the online service: span sampling and the
/// slow-query reservoir (see [`obsv::slowlog`]). Latency histograms and the
/// per-tick [`obsv::HealthSnapshot`] are unconditional — they cost a few
/// relaxed atomics per query and one small struct per tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Retain the K worst (slowest) sampled queries per tick window with
    /// their full span trees. 0 disables the slow-query log.
    pub slowlog_k: usize,
    /// Trace roughly one in this many query fingerprints (deterministic in
    /// the fingerprint, see [`obsv::SpanSampler`]). 0 disables sampling,
    /// 1 traces everything.
    pub sample_one_in: u64,
    /// Seed of the fingerprint sampler.
    pub sample_seed: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            slowlog_k: 8,
            sample_one_in: 16,
            sample_seed: 0x0B5E,
        }
    }
}

/// Daemon policy knobs. Defaults follow the paper's magic numbers where one
/// exists and SQL Server conventions elsewhere.
#[derive(Debug, Clone)]
pub struct AutodConfig {
    /// Work tokens deposited per tick. The same deterministic work units as
    /// the offline layers (`build_work`, `optimizer_call_work`).
    pub budget_per_tick: f64,
    /// MNSA configuration for the incremental tuner.
    pub mnsa: MnsaConfig,
    /// Equivalence notion for the periodic Shrinking Set pass; `None`
    /// disables shrinking entirely.
    pub shrink: Option<Equivalence>,
    /// Run the Shrinking Set pass every this many ticks (0 = never).
    pub shrink_every: u64,
    /// Staleness rule: stale iff mods since build strictly exceed
    /// `max(min_modified_rows, update_fraction × rows)`.
    pub staleness: MaintenancePolicy,
    /// Workload-monitor sizing and eviction seed.
    pub monitor: MonitorConfig,
    /// Feedback-driven refresh: when `Some`, the daemon exposes an enabled
    /// [`obsv::FeedbackLog`] for query threads, digests its records each
    /// tick, and corrects stale statistics from observed cardinalities
    /// before falling back to scan rebuilds. `None` (the default) keeps the
    /// whole channel disabled and the catalog trajectory bit-identical to a
    /// daemon without this feature.
    pub feedback: Option<FeedbackConfig>,
    /// Span sampling and slow-query capture. Observation-only: telemetry on
    /// vs off never changes catalogs, plans, or journals (pinned by
    /// `tests/telemetry_determinism.rs`).
    pub telemetry: TelemetryConfig,
    /// Serving-shard label stamped on health snapshots (0 for an unsharded
    /// service). Pure observability plumbing for the `serve` layer — it
    /// never influences tuning.
    pub shard: u32,
}

impl Default for AutodConfig {
    fn default() -> Self {
        AutodConfig {
            budget_per_tick: 500_000.0,
            mnsa: MnsaConfig::default(),
            shrink: Some(Equivalence::paper_default()),
            shrink_every: 8,
            staleness: MaintenancePolicy::default(),
            monitor: MonitorConfig::default(),
            feedback: None,
            telemetry: TelemetryConfig::default(),
            shard: 0,
        }
    }
}

/// What one tick did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TickReport {
    pub tick: u64,
    /// Stale statistics rebuilt this tick.
    pub refreshed: usize,
    /// Work charged for those rebuilds.
    pub refresh_work: f64,
    /// Stale statistics corrected from feedback (no scan) this tick.
    pub feedback_refreshed: usize,
    /// Work charged for those corrections (tiny next to `refresh_work`).
    pub feedback_work: f64,
    /// Query templates MNSA analyzed this tick.
    pub queries_tuned: usize,
    /// Work charged for tuning (creation + analysis overhead).
    pub tuning_work: f64,
    /// True when refreshes or tuning were deferred for lack of tokens.
    pub budget_exhausted: bool,
    /// Work left over at end of tick: templates still queued for MNSA plus
    /// refreshes deferred for lack of tokens. The budget arbiter in the
    /// `serve` layer reads this as the shard's demand signal.
    pub pending: usize,
    /// `Some(n)` when a Shrinking Set pass ran and removed `n` statistics.
    pub shrink_removed: Option<usize>,
    /// `Some(g)` when the catalog changed and generation `g` was published.
    pub published_generation: Option<u64>,
}

/// The deterministic daemon state machine. Owns the master catalog; query
/// threads only ever see frozen copies through the [`EpochHandle`].
pub struct LifecycleCore {
    config: AutodConfig,
    catalog: StatsCatalog,
    tuner: autostats::OnlineTuner,
    staleness: StalenessTracker,
    epochs: Arc<EpochHandle>,
    session: SessionReport,
    obs: obsv::Obs,
    tick: u64,
    last_error: Option<TuneError>,
    /// Shared with query threads; enabled iff `config.feedback` is set.
    feedback_log: obsv::FeedbackLog,
    feedback_store: FeedbackStore,
    /// Kept for health reporting; the tuner holds its own clone.
    cache: Option<Arc<optimizer::OptimizeCache>>,
    /// Tick of the last epoch publication (0 = generation 0 at start).
    last_publish_tick: u64,
    /// Written at the end of every tick, read by [`OnlineService::health`]
    /// without touching the daemon. Observation only.
    ///
    /// [`OnlineService::health`]: crate::service::OnlineService::health
    health: Arc<Mutex<obsv::HealthSnapshot>>,
}

impl LifecycleCore {
    /// Build a core around an existing catalog (generation 0 is published
    /// immediately, so query threads have statistics from the start).
    pub fn new(catalog: StatsCatalog, config: AutodConfig) -> Self {
        Self::with_parts(
            catalog,
            config,
            obsv::Obs::disabled(),
            SessionReport::default(),
            None,
        )
    }

    /// Build a core from an [`AutoStatsManager::serve`] hand-off, keeping
    /// its observability context, journal, and optimizer cache. Returns the
    /// database back to the caller (the daemon does not own storage).
    ///
    /// [`AutoStatsManager::serve`]: autostats::AutoStatsManager::serve
    pub fn from_serve(parts: ServeParts, config: AutodConfig) -> (Self, Database) {
        let ServeParts {
            db,
            catalog,
            obs,
            session,
            cache,
            ..
        } = parts;
        (Self::with_parts(catalog, config, obs, session, cache), db)
    }

    fn with_parts(
        catalog: StatsCatalog,
        config: AutodConfig,
        obs: obsv::Obs,
        session: SessionReport,
        cache: Option<Arc<optimizer::OptimizeCache>>,
    ) -> Self {
        let mut tuner = autostats::OnlineTuner::new(config.mnsa).with_obs(obs.clone());
        if let Some(cache) = &cache {
            tuner = tuner.with_cache(Arc::clone(cache));
        }
        let epochs = Arc::new(EpochHandle::new(StatsCatalog::restore(catalog.snapshot())));
        let feedback_log = if config.feedback.is_some() {
            obsv::FeedbackLog::enabled()
        } else {
            obsv::FeedbackLog::disabled()
        };
        LifecycleCore {
            staleness: StalenessTracker::new(config.staleness),
            config,
            catalog,
            tuner,
            epochs,
            session,
            obs,
            tick: 0,
            last_error: None,
            feedback_log,
            feedback_store: FeedbackStore::new(),
            cache,
            last_publish_tick: 0,
            health: Arc::new(Mutex::new(obsv::HealthSnapshot::default())),
        }
    }

    /// The publication handle query threads read from.
    pub fn epochs(&self) -> Arc<EpochHandle> {
        Arc::clone(&self.epochs)
    }

    /// The master catalog (authoritative; epochs are frozen copies of it).
    pub fn catalog(&self) -> &StatsCatalog {
        &self.catalog
    }

    /// Consume the core, yielding the master catalog and journal.
    pub fn into_parts(self) -> (StatsCatalog, SessionReport) {
        (self.catalog, self.session)
    }

    /// The session journal (offline history plus online events).
    pub fn journal(&self) -> &SessionReport {
        &self.session
    }

    /// The optimizer the tuner analyzes with (shared cost model).
    pub fn optimizer(&self) -> &optimizer::Optimizer {
        self.tuner.optimizer()
    }

    /// Ticks executed so far.
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// Current work-token balance (negative = debt).
    pub fn balance(&self) -> f64 {
        self.tuner.balance()
    }

    /// The first error from a fire-and-forget tick, if any.
    pub fn last_error(&self) -> Option<&TuneError> {
        self.last_error.as_ref()
    }

    /// The cardinality-feedback channel query threads should execute under
    /// (clones share one buffer). Disabled — and free to pass around — when
    /// `config.feedback` is `None`.
    pub fn feedback_log(&self) -> obsv::FeedbackLog {
        self.feedback_log.clone()
    }

    /// The shared cell the core writes an [`obsv::HealthSnapshot`] into at
    /// the end of every tick. Observation only — nothing reads it back into
    /// tuning decisions.
    pub fn health_cell(&self) -> Arc<Mutex<obsv::HealthSnapshot>> {
        Arc::clone(&self.health)
    }

    /// The latest end-of-tick health snapshot (default before tick 1).
    pub fn health(&self) -> obsv::HealthSnapshot {
        self.health.lock().clone()
    }

    /// Advance virtual time by one tick. See the module docs for the exact
    /// sequence. Deterministic: same inputs, same catalog trajectory.
    pub fn tick(
        &mut self,
        db: &Database,
        monitor: &mut WorkloadMonitor,
    ) -> Result<TickReport, TuneError> {
        self.tick_budgeted(db, monitor, self.config.budget_per_tick)
    }

    /// [`LifecycleCore::tick`] with this tick's funding chosen by the
    /// caller instead of `config.budget_per_tick` — the hook a cluster-level
    /// budget arbiter uses to split one global allowance across shards.
    /// Unspent tokens and debt still carry over in the shard's own bucket.
    pub fn tick_budgeted(
        &mut self,
        db: &Database,
        monitor: &mut WorkloadMonitor,
        budget: f64,
    ) -> Result<TickReport, TuneError> {
        self.tick += 1;
        let tick = self.tick;
        let mut span = self.obs.tracer.span("autod.tick");
        span.arg("tick", tick);
        let metrics = &self.obs.metrics;
        metrics.counter("autod.ticks").inc();

        // 1. Fund this tick's allowance.
        self.tuner.fund(budget);

        // 2. Drain monitor evictions into the journal, enqueue the sample.
        for fingerprint in monitor.drain_evictions() {
            metrics.counter("autod.monitor.evictions").inc();
            self.session
                .record_online(OnlineEvent::MonitorEvict { tick, fingerprint });
        }
        metrics
            .gauge("autod.monitor.templates")
            .set(monitor.len() as i64);
        let sample = monitor.sample();
        for query in &sample {
            self.tuner.enqueue(query.clone());
        }

        let mut report = TickReport {
            tick,
            ..TickReport::default()
        };

        // 3. Staleness-driven refresh, table by table (shared scans), while
        //    the token balance lasts. With feedback enabled, stale
        //    statistics whose (table, column) has enough digested
        //    observations are corrected in place first — near-zero work —
        //    and only the remainder pays for a scan rebuild.
        if self.config.feedback.is_some() {
            let drained = self.feedback_log.drain();
            if !drained.is_empty() {
                metrics
                    .counter("stats.feedback.records")
                    .add(drained.len() as u64);
                self.feedback_store.ingest(&drained);
            }
        }
        let stale = self.staleness.scan(db, &self.catalog);
        let mut by_table: BTreeMap<TableId, Vec<StatId>> = BTreeMap::new();
        for s in &stale {
            by_table.entry(s.table).or_default().push(s.stat);
        }
        let mut deferred_refreshes = 0usize;
        for (table, ids) in &by_table {
            if self.tuner.balance() <= 0.0 {
                deferred_refreshes += ids.len();
                continue;
            }
            let mut remaining: Vec<StatId> = Vec::with_capacity(ids.len());
            if let Some(feedback_config) = &self.config.feedback {
                for &id in ids {
                    if !self
                        .catalog
                        .feedback_refreshable(id, &self.feedback_store, feedback_config)
                    {
                        remaining.push(id);
                        continue;
                    }
                    let observations = self.feedback_store.count(
                        table.0 as u64,
                        self.catalog
                            .statistic(id)
                            .map(|s| s.descriptor.leading_column() as u32)
                            .unwrap_or(0),
                    );
                    let corrected = self.catalog.feedback_refresh(
                        db,
                        *table,
                        &[id],
                        &mut self.feedback_store,
                        feedback_config,
                    );
                    if corrected.is_empty() {
                        remaining.push(id);
                        continue;
                    }
                    for (stat, work) in corrected {
                        self.tuner.charge(work);
                        report.feedback_refreshed += 1;
                        report.feedback_work += work;
                        metrics.counter("stats.feedback.refreshes").inc();
                        metrics.float_counter("stats.feedback.work").add(work);
                        self.session.record_online(OnlineEvent::FeedbackRefresh {
                            tick,
                            stat,
                            table: *table,
                            work,
                            observations,
                        });
                    }
                }
            } else {
                remaining.extend_from_slice(ids);
            }
            for (stat, work) in self.catalog.refresh_statistics(db, *table, &remaining) {
                self.tuner.charge(work);
                report.refreshed += 1;
                report.refresh_work += work;
                metrics.counter("autod.refreshes").inc();
                metrics.float_counter("autod.refresh_work").add(work);
                self.session.record_online(OnlineEvent::Refresh {
                    tick,
                    stat,
                    table: *table,
                    work,
                });
            }
        }

        // 4. A budgeted MNSA increment over the pending templates.
        let step = self.tuner.step(db, &mut self.catalog)?;
        for (relations, outcome) in &step.tuned {
            self.session.record_query(*relations, outcome);
        }
        self.session.totals.absorb(&step.report);
        report.queries_tuned = step.tuned.len();
        report.tuning_work = step.work;
        metrics
            .counter("autod.tuned_queries")
            .add(step.tuned.len() as u64);
        metrics.float_counter("autod.tuning_work").add(step.work);
        metrics
            .gauge("autod.pending")
            .set(self.tuner.pending() as i64);

        report.budget_exhausted = step.exhausted || deferred_refreshes > 0;
        report.pending = self.tuner.pending() + deferred_refreshes;
        if report.budget_exhausted {
            metrics.counter("autod.budget_exhausted").inc();
            self.session.record_online(OnlineEvent::BudgetExhausted {
                tick,
                pending: self.tuner.pending() + deferred_refreshes,
                balance: self.tuner.balance(),
            });
        }

        // 5. Periodic MNSA/D-complementing Shrinking Set pass.
        if let Some(equivalence) = self.config.shrink {
            let due = self.config.shrink_every > 0 && tick.is_multiple_of(self.config.shrink_every);
            if due && !sample.is_empty() {
                let out = self
                    .tuner
                    .shrink_pass(db, &mut self.catalog, &sample, equivalence)?;
                self.session.shrink_removed += out.removed.len();
                self.session.totals.optimizer_calls += out.optimizer_calls;
                report.shrink_removed = Some(out.removed.len());
            }
        }

        // 6. Publish a frozen copy iff the catalog changed this tick.
        let changed = report.refreshed > 0
            || report.feedback_refreshed > 0
            || step.report.statistics_created > 0
            || step.report.statistics_drop_listed > 0
            || report.shrink_removed.is_some();
        if changed {
            let generation = self
                .epochs
                .publish(StatsCatalog::restore(self.catalog.snapshot()));
            report.published_generation = Some(generation);
            self.last_publish_tick = tick;
            metrics.counter("autod.epoch_swaps").inc();
            metrics
                .gauge("autod.epoch_generation")
                .set(generation as i64);
            self.session
                .record_online(OnlineEvent::EpochSwap { tick, generation });
        }

        // Assemble and publish the end-of-tick health snapshot. Pure
        // observation: every input is a counter or gauge read; nothing here
        // feeds back into tuning, so the catalog trajectory is untouched.
        let latency = metrics.latency("autod.query.latency_ns").snapshot();
        let (cache_hits, cache_misses, cache_invalidations) = self
            .cache
            .as_ref()
            .map(|c| (c.hits(), c.misses(), c.invalidations()))
            .unwrap_or((0, 0, 0));
        *self.health.lock() = obsv::HealthSnapshot {
            tick,
            shard: self.config.shard as u64,
            epoch_generation: self.epochs.generation(),
            epoch_age_ticks: tick.saturating_sub(self.last_publish_tick),
            staleness_backlog: deferred_refreshes as u64,
            pending_templates: self.tuner.pending() as u64,
            monitor_templates: monitor.len() as u64,
            monitor_capacity: monitor.capacity() as u64,
            monitor_observed: monitor.observed_total(),
            monitor_evictions: monitor.evictions_total(),
            monitor_ghost_hits: monitor.ghost_hits_total(),
            feedback_queue_depth: self.feedback_log.len() as u64,
            budget_balance: self.tuner.balance(),
            cache_hits,
            cache_misses,
            cache_invalidations,
            queries: metrics.counter("autod.queries").get(),
            dml: metrics.counter("autod.dml").get(),
            latency_count: latency.count,
            latency_p50_ns: latency.quantile(0.50),
            latency_p90_ns: latency.quantile(0.90),
            latency_p99_ns: latency.quantile(0.99),
            latency_p999_ns: latency.quantile(0.999),
            latency_max_ns: latency.max,
        };

        span.arg("refreshed", report.refreshed);
        span.arg("feedback_refreshed", report.feedback_refreshed);
        span.arg("tuned", report.queries_tuned);
        span.arg("exhausted", report.budget_exhausted);
        Ok(report)
    }
}

enum Command {
    /// Tick with an optional budget override (None = `config.budget_per_tick`)
    /// and an optional ack channel.
    Tick(
        Option<f64>,
        Option<mpsc::Sender<Result<TickReport, TuneError>>>,
    ),
    Shutdown,
}

/// A [`LifecycleCore`] on a background thread, advanced by explicit tick
/// commands — the query path never waits on it, and it never runs except
/// when ticked.
pub struct LifecycleDaemon {
    commands: mpsc::Sender<Command>,
    handle: std::thread::JoinHandle<LifecycleCore>,
    tick_cell: Arc<AtomicU64>,
    health_cell: Arc<Mutex<obsv::HealthSnapshot>>,
}

impl LifecycleDaemon {
    /// Spawn the daemon thread. It locks `db` for read and then `monitor`
    /// for each tick — the same order the query path must use.
    pub fn spawn(
        mut core: LifecycleCore,
        db: Arc<RwLock<Database>>,
        monitor: Arc<Mutex<WorkloadMonitor>>,
    ) -> LifecycleDaemon {
        let (commands, inbox) = mpsc::channel::<Command>();
        let tick_cell = Arc::new(AtomicU64::new(0));
        let cell = Arc::clone(&tick_cell);
        let health_cell = core.health_cell();
        let handle = std::thread::spawn(move || {
            while let Ok(command) = inbox.recv() {
                match command {
                    Command::Shutdown => break,
                    Command::Tick(budget, ack) => {
                        let result = {
                            // Lock order: database first, then the monitor.
                            let db = db.read();
                            let mut monitor = monitor.lock();
                            match budget {
                                Some(b) => core.tick_budgeted(&db, &mut monitor, b),
                                None => core.tick(&db, &mut monitor),
                            }
                        };
                        cell.store(core.ticks(), Ordering::SeqCst);
                        match ack {
                            Some(ack) => {
                                let _ = ack.send(result);
                            }
                            None => {
                                if let Err(e) = result {
                                    if core.last_error.is_none() {
                                        core.last_error = Some(e);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            core
        });
        LifecycleDaemon {
            commands,
            handle,
            tick_cell,
            health_cell,
        }
    }

    /// Fire-and-forget tick. Errors are retained in the core's
    /// `last_error` and surface at shutdown.
    pub fn tick(&self) {
        let _ = self.commands.send(Command::Tick(None, None));
    }

    /// Tick and wait for the report (used by deterministic drivers).
    pub fn tick_wait(&self) -> Result<TickReport, TuneError> {
        let (tx, rx) = mpsc::channel();
        if self.commands.send(Command::Tick(None, Some(tx))).is_err() {
            return Ok(TickReport::default()); // daemon already gone
        }
        rx.recv().unwrap_or_else(|_| Ok(TickReport::default()))
    }

    /// Begin a tick funded with `budget` work tokens instead of the
    /// configured per-tick allowance, returning immediately with the ack
    /// channel. A cluster driver fires all shards' ticks, then collects acks
    /// in shard order — shards tick in parallel while the collection order
    /// stays deterministic.
    pub fn tick_begin_budgeted(
        &self,
        budget: f64,
    ) -> mpsc::Receiver<Result<TickReport, TuneError>> {
        let (tx, rx) = mpsc::channel();
        let _ = self.commands.send(Command::Tick(Some(budget), Some(tx)));
        rx
    }

    /// [`LifecycleDaemon::tick_wait`] with a caller-chosen budget for this
    /// tick (see [`LifecycleCore::tick_budgeted`]).
    pub fn tick_wait_budgeted(&self, budget: f64) -> Result<TickReport, TuneError> {
        self.tick_begin_budgeted(budget)
            .recv()
            .unwrap_or_else(|_| Ok(TickReport::default()))
    }

    /// The shared cell holding the last completed tick number (virtual
    /// "now" for monitor observations on query threads).
    pub fn tick_cell(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.tick_cell)
    }

    /// The shared cell holding the core's latest end-of-tick
    /// [`obsv::HealthSnapshot`].
    pub fn health_cell(&self) -> Arc<Mutex<obsv::HealthSnapshot>> {
        Arc::clone(&self.health_cell)
    }

    /// Stop the thread and recover the core (catalog, journal, meters).
    /// `None` only if the daemon thread panicked, which the panic-free
    /// lint gate makes unreachable in practice.
    pub fn shutdown(self) -> Option<LifecycleCore> {
        let _ = self.commands.send(Command::Shutdown);
        self.handle.join().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autostats::OfflineTuner;
    use query::{bind_statement, parse_statement, BoundStatement};
    use storage::{ColumnDef, DataType, Schema, Value};

    /// The paper's Example-2 shape: employees (skewed `salary`, rare > 200)
    /// joined with departments, where MNSA reliably builds statistics.
    fn test_db() -> Database {
        let mut db = Database::new();
        let emp = db
            .create_table(
                "employees",
                Schema::new(vec![
                    ColumnDef::new("empid", DataType::Int),
                    ColumnDef::new("deptid", DataType::Int),
                    ColumnDef::new("age", DataType::Int),
                    ColumnDef::new("salary", DataType::Int),
                ]),
            )
            .unwrap();
        let dept = db
            .create_table(
                "departments",
                Schema::new(vec![
                    ColumnDef::new("deptid", DataType::Int),
                    ColumnDef::new("dname", DataType::Str),
                ]),
            )
            .unwrap();
        for i in 0..3000i64 {
            let salary = if i % 100 == 0 { 250 } else { i % 200 };
            db.table_mut(emp)
                .insert(vec![
                    Value::Int(i),
                    Value::Int(i % 20),
                    Value::Int(20 + (i % 50)),
                    Value::Int(salary),
                ])
                .unwrap();
        }
        for d in 0..20i64 {
            db.table_mut(dept)
                .insert(vec![Value::Int(d), Value::Str(format!("d{d}"))])
                .unwrap();
        }
        #[allow(deprecated)]
        db.table_mut(emp).reset_modification_counter();
        #[allow(deprecated)]
        db.table_mut(dept).reset_modification_counter();
        db
    }

    fn select(db: &Database, sql: &str) -> query::BoundSelect {
        match bind_statement(db, &parse_statement(sql).unwrap()).unwrap() {
            BoundStatement::Select(q) => q,
            other => panic!("expected select, got {other:?}"),
        }
    }

    const EXAMPLE2_SQL: &str = "SELECT e.empid, d.dname FROM employees e, departments d \
        WHERE e.deptid = d.deptid AND e.age < 30 AND e.salary > 200";

    fn workload(db: &Database) -> Vec<query::BoundSelect> {
        vec![
            select(db, EXAMPLE2_SQL),
            select(
                db,
                "SELECT e.empid FROM employees e, departments d \
                 WHERE e.deptid = d.deptid AND e.salary > 200",
            ),
            select(db, "SELECT * FROM employees WHERE empid < 100"),
        ]
    }

    /// Paused daemon ≡ offline tune: a core with an unconstrained budget
    /// that drains its queue and runs one shrink pass leaves the master
    /// catalog bit-identical to `OfflineTuner::tune` on the same sample.
    #[test]
    fn paused_daemon_matches_offline_tune() {
        let db = test_db();
        let queries = workload(&db);

        let mut offline_catalog = StatsCatalog::new();
        OfflineTuner::default()
            .tune(&db, &mut offline_catalog, &queries)
            .unwrap();

        let mut monitor = WorkloadMonitor::new(MonitorConfig::default());
        for q in &queries {
            monitor.observe(q, 0);
        }
        let mut core = LifecycleCore::new(
            StatsCatalog::new(),
            AutodConfig {
                budget_per_tick: f64::INFINITY,
                shrink_every: 1,
                ..AutodConfig::default()
            },
        );
        let report = core.tick(&db, &mut monitor).unwrap();
        assert!(!report.budget_exhausted);
        assert!(report.shrink_removed.is_some());
        assert_eq!(core.catalog().snapshot(), offline_catalog.snapshot());
        // The published epoch is the same catalog.
        assert_eq!(
            core.epochs().load().catalog.snapshot(),
            offline_catalog.snapshot()
        );
    }

    #[test]
    fn tiny_budget_defers_work_and_journals_exhaustion() {
        let db = test_db();
        let queries = workload(&db);
        let mut monitor = WorkloadMonitor::new(MonitorConfig::default());
        for q in &queries {
            monitor.observe(q, 0);
        }
        let mut core = LifecycleCore::new(
            StatsCatalog::new(),
            AutodConfig {
                budget_per_tick: 1.0,
                shrink_every: 0,
                ..AutodConfig::default()
            },
        );
        let first = core.tick(&db, &mut monitor).unwrap();
        assert!(first.budget_exhausted);
        assert!(first.queries_tuned <= 1);
        assert!(core.balance() < 0.0);
        assert!(core
            .journal()
            .online
            .iter()
            .any(|e| matches!(e, OnlineEvent::BudgetExhausted { .. })));
        // Enough later ticks pay down the debt and finish the queue.
        let mut tuned = first.queries_tuned;
        for _ in 0..100_000 {
            let r = core.tick(&db, &mut monitor).unwrap();
            tuned += r.queries_tuned;
            if !r.budget_exhausted {
                break;
            }
        }
        assert_eq!(tuned, queries.len());
    }

    #[test]
    fn bulk_update_triggers_refresh_and_epoch_swap() {
        let mut db = test_db();
        let t = db.table_id("employees").unwrap();
        let queries = workload(&db);
        let mut monitor = WorkloadMonitor::new(MonitorConfig::default());
        for q in &queries {
            monitor.observe(q, 0);
        }
        let mut core = LifecycleCore::new(
            StatsCatalog::new(),
            AutodConfig {
                budget_per_tick: f64::INFINITY,
                shrink_every: 0,
                ..AutodConfig::default()
            },
        );
        let first = core.tick(&db, &mut monitor).unwrap();
        assert!(first.queries_tuned > 0);
        let built = core.catalog().built_on_table(t).count();
        assert!(built > 0);
        let gen_after_build = core.epochs().generation();
        assert!(first.published_generation.is_some());

        // Nothing stale yet: the next tick publishes nothing.
        let quiet = core.tick(&db, &mut monitor).unwrap();
        assert_eq!(quiet.refreshed, 0);
        assert_eq!(quiet.published_generation, None);

        // A bulk modification beyond max(500, 20% of rows) makes everything
        // on the table stale; the next tick refreshes and republishes.
        for i in 0..900i64 {
            db.table_mut(t)
                .insert(vec![
                    Value::Int(10_000 + i),
                    Value::Int(0),
                    Value::Int(21),
                    Value::Int(0),
                ])
                .unwrap();
        }
        let refreshed = core.tick(&db, &mut monitor).unwrap();
        assert_eq!(refreshed.refreshed, built);
        assert!(refreshed.refresh_work > 0.0);
        assert_eq!(core.epochs().generation(), gen_after_build + 1);
        assert!(core
            .journal()
            .online
            .iter()
            .any(|e| matches!(e, OnlineEvent::Refresh { .. })));
    }

    const SALARY_SCAN_SQL: &str = "SELECT * FROM employees WHERE salary > 200";

    #[test]
    fn feedback_refresh_replaces_scan_rebuild_cheaply() {
        let mut db = test_db();
        let t = db.table_id("employees").unwrap();
        let queries = workload(&db);
        let mut monitor = WorkloadMonitor::new(MonitorConfig::default());
        for q in &queries {
            monitor.observe(q, 0);
        }
        let mut core = LifecycleCore::new(
            StatsCatalog::new(),
            AutodConfig {
                budget_per_tick: f64::INFINITY,
                shrink_every: 0,
                feedback: Some(FeedbackConfig::default()),
                ..AutodConfig::default()
            },
        );
        core.tick(&db, &mut monitor).unwrap();
        let built = core.catalog().built_on_table(t).count();
        assert!(built > 0);

        // Query threads execute under the shared feedback log; single-
        // predicate scans on salary feed observations for its statistic.
        let log = core.feedback_log();
        assert!(log.is_enabled());
        let stmt = bind_statement(&db, &parse_statement(SALARY_SCAN_SQL).unwrap()).unwrap();
        let opt = optimizer::Optimizer::default();
        for _ in 0..6 {
            executor::run_statement_observed(
                &mut db,
                core.catalog().full_view(),
                &opt,
                &stmt,
                &obsv::Tracer::disabled(),
                &log,
            )
            .unwrap();
        }
        assert!(!log.is_empty());

        // Drift: bulk inserts age every statistic on the table.
        for i in 0..900i64 {
            db.table_mut(t)
                .insert(vec![
                    Value::Int(10_000 + i),
                    Value::Int(0),
                    Value::Int(21),
                    Value::Int(300),
                ])
                .unwrap();
        }
        let report = core.tick(&db, &mut monitor).unwrap();
        assert!(
            report.feedback_refreshed >= 1,
            "salary statistic should take the feedback path: {report:?}"
        );
        assert_eq!(report.feedback_refreshed + report.refreshed, built);
        assert!(report.feedback_work > 0.0);
        if report.refreshed > 0 {
            assert!(
                report.feedback_work < report.refresh_work / 10.0,
                "feedback corrections must be far cheaper than scan rebuilds"
            );
        }
        assert!(core
            .journal()
            .online
            .iter()
            .any(|e| matches!(e, OnlineEvent::FeedbackRefresh { .. })));
        // The corrected statistics reset their staleness baseline: a quiet
        // tick refreshes nothing (no starvation, no thrash).
        let quiet = core.tick(&db, &mut monitor).unwrap();
        assert_eq!(quiet.refreshed + quiet.feedback_refreshed, 0);
    }

    /// Feedback enabled but never fed ≡ feedback disabled: identical
    /// catalog trajectory and tick reports.
    #[test]
    fn empty_feedback_channel_changes_nothing() {
        let run = |feedback: Option<FeedbackConfig>| {
            let mut db = test_db();
            let t = db.table_id("employees").unwrap();
            let queries = workload(&db);
            let mut monitor = WorkloadMonitor::new(MonitorConfig::default());
            for q in &queries {
                monitor.observe(q, 0);
            }
            let mut core = LifecycleCore::new(
                StatsCatalog::new(),
                AutodConfig {
                    budget_per_tick: f64::INFINITY,
                    shrink_every: 0,
                    feedback,
                    ..AutodConfig::default()
                },
            );
            let mut reports = vec![core.tick(&db, &mut monitor).unwrap()];
            for i in 0..900i64 {
                db.table_mut(t)
                    .insert(vec![
                        Value::Int(10_000 + i),
                        Value::Int(0),
                        Value::Int(21),
                        Value::Int(0),
                    ])
                    .unwrap();
            }
            reports.push(core.tick(&db, &mut monitor).unwrap());
            (core.catalog().snapshot(), reports)
        };
        let (off_catalog, off_reports) = run(None);
        let (on_catalog, on_reports) = run(Some(FeedbackConfig::default()));
        assert_eq!(off_catalog, on_catalog);
        assert_eq!(off_reports, on_reports);
    }

    #[test]
    fn daemon_thread_ticks_and_returns_core() {
        let db = Arc::new(RwLock::new(test_db()));
        let queries = workload(&db.read());
        let monitor = Arc::new(Mutex::new(WorkloadMonitor::new(MonitorConfig::default())));
        {
            let mut m = monitor.lock();
            for q in &queries {
                m.observe(q, 0);
            }
        }
        let core = LifecycleCore::new(StatsCatalog::new(), AutodConfig::default());
        let epochs = core.epochs();
        let daemon = LifecycleDaemon::spawn(core, Arc::clone(&db), Arc::clone(&monitor));
        let report = daemon.tick_wait().unwrap();
        assert_eq!(report.tick, 1);
        assert!(report.queries_tuned > 0);
        assert_eq!(daemon.tick_cell().load(Ordering::SeqCst), 1);
        assert!(epochs.generation() >= 1);
        let core = daemon.shutdown().expect("daemon thread lives");
        assert_eq!(core.ticks(), 1);
        assert!(core.last_error().is_none());
    }
}
