//! # autod — the online statistics lifecycle daemon
//!
//! The paper frames MNSA as one piece of a *continuously running*
//! statistics-management service: the deployed system watches the workload,
//! notices when data changes invalidate statistics, and tunes in the
//! background without getting in the way of queries. This crate is that
//! service, built from three cooperating pieces:
//!
//! * [`WorkloadMonitor`] — a bounded, fingerprint-deduplicated reservoir of
//!   executed query templates (frequency + recency per template,
//!   deterministic seeded eviction). The tuning workload is this compressed
//!   live sample, not an offline workload file.
//! * [`StalenessTracker`] — consumes [`Database::modification_snapshot`]
//!   counters and flags each built statistic stale under the SQL
//!   Server-style `max(500, 20% of rows)` rule (configurable), driving
//!   targeted refreshes through the catalog's shared-scan batch rebuilds.
//! * [`LifecycleDaemon`] — a background thread driven by deterministic
//!   virtual-time ticks. Each tick funds a work-token budget (carry-over,
//!   debt allowed), refreshes stale statistics, runs a budgeted increment of
//!   MNSA over the monitored sample ([`autostats::OnlineTuner`]), and
//!   periodically an MNSA/D + Shrinking Set pass; catalog changes publish
//!   through an epoch-swap handle ([`EpochHandle`], an `ArcSwap`-style
//!   generation pointer under a `parking_lot` lock) so query threads always
//!   read a consistent catalog and never block on tuning.
//!
//! [`OnlineService`] assembles the pieces over an
//! [`AutoStatsManager::serve()`](autostats::AutoStatsManager::serve)
//! hand-off and exposes cloneable per-thread [`QueryHandle`]s.
//!
//! ## Determinism contract
//!
//! As in the offline layers: with a fixed seed, fixed tick schedule, and one
//! query thread, the daemon's catalog trajectory — epochs published, work
//! meters, journal — is bit-identical run to run. A *paused* daemon (queue
//! drained, one shrink pass) leaves the master catalog bit-identical to
//! [`OfflineTuner::tune`](autostats::OfflineTuner) over the same sample.
//!
//! [`Database::modification_snapshot`]: storage::Database::modification_snapshot

// Library code must stay panic-free on arbitrary input; tests may unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod daemon;
pub mod epoch;
pub mod monitor;
pub mod service;
pub mod staleness;

pub use daemon::{AutodConfig, LifecycleCore, LifecycleDaemon, TelemetryConfig, TickReport};
pub use epoch::{CatalogEpoch, EpochHandle};
pub use monitor::{MonitorConfig, TemplateStats, WorkloadMonitor};
pub use service::{OnlineService, PendingTick, QueryHandle, ServiceReport};
pub use staleness::{StaleStatistic, StalenessTracker};
