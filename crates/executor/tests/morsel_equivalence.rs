//! Differential morsel-equivalence suite: the executor's thread-count
//! determinism contract, checked against the row-at-a-time reference
//! interpreter over adversarial table shapes.
//!
//! Every case asserts the full contract for threads 1/2/4/8 with a morsel
//! size small enough to split the inputs:
//!
//! * `ExecOutput.rows` equal the reference engine's,
//! * `work` is bit-identical,
//! * the `exec.query`/`exec.op.*` span tree (canonical signature, Float
//!   args by bit pattern) is identical to the serial engine's,
//! * the `FeedbackRecord` stream is byte-identical to the serial engine's.
//!
//! Tables cover the shapes morsel dispatch can get wrong: empty, single-row,
//! sizes straddling the morsel boundary, NULL-heavy columns, and the
//! adversarial generator's skewed/correlated/star regimes.

use datagen::{adversarial_queries, build_adversarial, AdversarialConfig, Regime};
use executor::predicate::filter_table;
use executor::{
    execute_plan_observed, execute_plan_opts, execute_plan_reference, run_statement, ExecOptions,
    StatementOutcome,
};
use obsv::trace::canonical_signature;
use optimizer::{OptimizeOptions, Optimizer};
use proptest::prelude::*;
use query::{bind_statement, parse_statement, BoundSelect, BoundStatement};
use stats::StatsCatalog;
use storage::{ColumnDef, DataType, Database, Schema, Value};

const THREADS: [usize; 4] = [1, 2, 4, 8];
const MORSEL: usize = 16;

fn bind(db: &Database, sql: &str) -> BoundSelect {
    match bind_statement(db, &parse_statement(sql).expect("parses")).expect("binds") {
        BoundStatement::Select(q) => q,
        other => panic!("expected SELECT, got {other:?}"),
    }
}

/// Run `sql` on every engine and assert the whole determinism contract.
fn assert_equivalent(db: &Database, sql: &str) {
    let q = bind(db, sql);
    let opt = Optimizer::default();
    let cat = StatsCatalog::new();
    let plan = opt
        .optimize(db, &q, cat.full_view(), &OptimizeOptions::default())
        .expect("optimizes")
        .plan;
    let reference = execute_plan_reference(db, &q, &plan, &opt.params).expect("reference");

    let observed = |opts: &ExecOptions| {
        let tracer = obsv::Tracer::enabled();
        let feedback = obsv::FeedbackLog::enabled();
        let out = execute_plan_opts(db, &q, &plan, &opt.params, &tracer, &feedback, opts)
            .expect("columnar");
        (
            out,
            canonical_signature(&tracer.flush()),
            feedback.canonical_bytes(),
        )
    };

    let serial = observed(&ExecOptions {
        threads: 1,
        morsel_rows: MORSEL,
    });
    assert_eq!(serial.0.rows, reference.rows, "serial vs reference: {sql}");
    assert_eq!(
        serial.0.work.to_bits(),
        reference.work.to_bits(),
        "serial work vs reference: {sql}"
    );

    for threads in THREADS {
        let at_t = observed(&ExecOptions {
            threads,
            morsel_rows: MORSEL,
        });
        assert_eq!(at_t.0.rows, reference.rows, "rows at {threads}: {sql}");
        assert_eq!(
            at_t.0.work.to_bits(),
            reference.work.to_bits(),
            "work at {threads}: {sql}"
        );
        assert_eq!(at_t.1, serial.1, "span tree at {threads}: {sql}");
        assert_eq!(at_t.2, serial.2, "feedback at {threads}: {sql}");
    }
}

/// The fixed query set over the generated `emp`/`g` pair: single-predicate
/// scans (which emit feedback), conjunctions, a hash join, grouping with
/// NULL groups, and ORDER BY.
const QUERIES: [&str; 6] = [
    "SELECT * FROM emp WHERE grp = 2",
    "SELECT * FROM emp WHERE val < 0.5",
    "SELECT id, grp FROM emp WHERE grp <> 1 AND val >= -0.25",
    "SELECT * FROM emp WHERE id BETWEEN 5 AND 20",
    "SELECT * FROM emp e, g WHERE e.grp = g.gid",
    "SELECT grp, COUNT(*), SUM(val) FROM emp GROUP BY grp ORDER BY grp",
];

const NAMES: [&str; 4] = ["", "alpha", "β-unicode", "zzz"];

/// One generated `emp` row: (grp, val, name index, date), each nullable.
type RowSpec = (Option<i64>, Option<f64>, Option<u8>, Option<i64>);

/// Build the two-table fixture from explicit row tuples; `None` becomes
/// NULL.
fn fixture(rows: &[RowSpec]) -> Database {
    let mut db = Database::new();
    let emp = db
        .create_table(
            "emp",
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("grp", DataType::Int).nullable(),
                ColumnDef::new("val", DataType::Float).nullable(),
                ColumnDef::new("name", DataType::Str).nullable(),
                ColumnDef::new("d", DataType::Date).nullable(),
            ]),
        )
        .expect("emp");
    for (i, (grp, val, name, date)) in rows.iter().enumerate() {
        let to = |v: Option<Value>| v.unwrap_or(Value::Null);
        db.table_mut(emp)
            .insert(vec![
                Value::Int(i as i64),
                to(grp.map(Value::Int)),
                to(val.map(Value::Float)),
                to(name.map(|n| Value::Str(NAMES[n as usize % NAMES.len()].to_string()))),
                to(date.map(|d| Value::Date(d as i32))),
            ])
            .expect("insert");
    }
    let g = db
        .create_table(
            "g",
            Schema::new(vec![
                ColumnDef::new("gid", DataType::Int).nullable(),
                ColumnDef::new("label", DataType::Str),
            ]),
        )
        .expect("g");
    for gid in -1i64..4 {
        db.table_mut(g)
            .insert(vec![Value::Int(gid), Value::Str(format!("g{gid}"))])
            .expect("insert");
    }
    // One NULL join key on the build side: NULL keys must never join.
    db.table_mut(g)
        .insert(vec![Value::Null, Value::Str("null-gid".to_string())])
        .expect("insert");
    db
}

/// Deterministic splitmix64 stream for the fixed-size edge cases.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn seeded_rows(n: usize, seed: u64) -> Vec<RowSpec> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            let mut opt = |width: u64| {
                let v = splitmix(&mut s);
                // NULL-heavy: ~1 in 4 entries per column is NULL.
                (!v.is_multiple_of(4)).then_some((v >> 8) % width)
            };
            (
                opt(6).map(|v| v as i64 - 2),
                opt(1000).map(|v| v as f64 / 250.0 - 2.0),
                opt(NAMES.len() as u64).map(|v| v as u8),
                opt(400).map(|v| v as i64 + 18_000),
            )
        })
        .collect()
}

#[test]
fn empty_single_row_and_morsel_boundary_sizes() {
    // Sizes straddling the 16-row morsel boundary, plus degenerate tables.
    for n in [0usize, 1, 15, 16, 17, 33] {
        let db = fixture(&seeded_rows(n, n as u64 + 7));
        for sql in QUERIES {
            assert_equivalent(&db, sql);
        }
    }
}

#[test]
fn adversarial_regimes_match_reference_at_every_thread_count() {
    // The estimation-quality generator's worst-case data shapes (skew,
    // correlation with NULLs, star joins) through the same full contract.
    let cfg = AdversarialConfig {
        seed: 11,
        ..AdversarialConfig::tiny()
    };
    for regime in [Regime::Zipf, Regime::Correlated, Regime::Star] {
        let db = build_adversarial(&cfg, regime);
        let opt = Optimizer::default();
        let cat = StatsCatalog::new();
        for stmt in adversarial_queries(&db, &cfg, regime, 4) {
            let Ok(BoundStatement::Select(q)) =
                bind_statement(&db, &query::Statement::Select(stmt))
            else {
                continue;
            };
            let Ok(optimized) = opt.optimize(&db, &q, cat.full_view(), &OptimizeOptions::default())
            else {
                continue;
            };
            let reference =
                execute_plan_reference(&db, &q, &optimized.plan, &opt.params).expect("reference");
            for threads in THREADS {
                let out = execute_plan_opts(
                    &db,
                    &q,
                    &optimized.plan,
                    &opt.params,
                    &obsv::Tracer::disabled(),
                    &obsv::FeedbackLog::disabled(),
                    &ExecOptions {
                        threads,
                        morsel_rows: 32,
                    },
                )
                .expect("columnar");
                assert_eq!(out.rows, reference.rows, "{regime} at {threads} threads");
                assert_eq!(out.work.to_bits(), reference.work.to_bits());
            }
        }
    }
}

#[test]
fn feedback_stream_is_byte_identical_across_thread_counts() {
    // Satellite contract: the FeedbackRecord stream out of the observed
    // entry point is byte-identical at threads 1/2/8 and to the serial
    // engine (execute_plan_observed's environment default).
    let db = fixture(&seeded_rows(40, 3));
    let q = bind(&db, "SELECT * FROM emp WHERE grp = 2");
    let opt = Optimizer::default();
    let cat = StatsCatalog::new();
    let plan = opt
        .optimize(&db, &q, cat.full_view(), &OptimizeOptions::default())
        .expect("optimizes")
        .plan;

    let serial_log = obsv::FeedbackLog::enabled();
    execute_plan_observed(
        &db,
        &q,
        &plan,
        &opt.params,
        &obsv::Tracer::disabled(),
        &serial_log,
    )
    .expect("serial observed");
    let serial_bytes = serial_log.canonical_bytes();
    assert!(
        !serial_bytes.is_empty(),
        "single-predicate scan must emit feedback"
    );

    for threads in [1usize, 2, 8] {
        let log = obsv::FeedbackLog::enabled();
        execute_plan_opts(
            &db,
            &q,
            &plan,
            &opt.params,
            &obsv::Tracer::disabled(),
            &log,
            &ExecOptions {
                threads,
                morsel_rows: 8,
            },
        )
        .expect("parallel observed");
        assert_eq!(
            log.canonical_bytes(),
            serial_bytes,
            "feedback bytes at {threads} threads"
        );
    }
}

#[test]
fn dml_filtering_matches_row_at_a_time_oracle() {
    // UPDATE/DELETE row selection goes through the branch-free kernels
    // (filter_table_columnar); the oracle applies the same mutation with
    // the row-at-a-time reference filter and the tables must end up
    // identical — including NULL rows, which must never match.
    let statements = [
        "UPDATE emp SET val = 9.5 WHERE grp = 2",
        "UPDATE emp SET name = 'touched' WHERE val < 0.0",
        "DELETE FROM emp WHERE grp <> 1",
        "DELETE FROM emp WHERE id BETWEEN 10 AND 30",
    ];
    let opt = Optimizer::default();
    for sql in statements {
        let rows = seeded_rows(120, 99);
        let mut kernel_db = fixture(&rows);
        let mut oracle_db = fixture(&rows);
        let stmt =
            bind_statement(&kernel_db, &parse_statement(sql).expect("parses")).expect("binds");

        let cat = StatsCatalog::new();
        let outcome =
            run_statement(&mut kernel_db, cat.full_view(), &opt, &stmt).expect("kernel DML");
        let StatementOutcome::Dml { rows_affected, .. } = outcome else {
            panic!("DML expected");
        };

        // Row-at-a-time oracle: reference filter, same mutation primitives.
        let oracle_affected = match &stmt {
            BoundStatement::Update(u) => {
                let table = oracle_db.table_mut(u.table);
                let preds: Vec<_> = u.selections.iter().collect();
                let matched = filter_table(table, &preds);
                table.update_rows(&matched, u.set_column, &u.set_value)
            }
            BoundStatement::Delete(d) => {
                let table = oracle_db.table_mut(d.table);
                let preds: Vec<_> = d.selections.iter().collect();
                let matched = filter_table(table, &preds);
                table.delete_rows(matched)
            }
            other => panic!("DML expected, got {other:?}"),
        };
        assert_eq!(rows_affected, oracle_affected, "{sql}");

        // Final table state must be identical (read back via the reference
        // engine so the comparison is independent of the kernels).
        let readback = |db: &Database| {
            let q = bind(db, "SELECT * FROM emp ORDER BY id");
            let plan = opt
                .optimize(
                    db,
                    &q,
                    StatsCatalog::new().full_view(),
                    &OptimizeOptions::default(),
                )
                .expect("optimizes")
                .plan;
            execute_plan_reference(db, &q, &plan, &opt.params)
                .expect("readback")
                .rows
        };
        assert_eq!(readback(&kernel_db), readback(&oracle_db), "{sql}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random NULL-heavy tables of random size: the full determinism
    /// contract holds for every query shape at every thread count.
    #[test]
    fn random_tables_match_reference(
        rows in prop::collection::vec(
            (
                prop::option::of(-2i64..4),
                prop::option::of(-2.0f64..2.0),
                prop::option::of(0u8..4),
                prop::option::of(18_000i64..18_400),
            ),
            0..48,
        ),
    ) {
        let db = fixture(&rows);
        for sql in QUERIES {
            assert_equivalent(&db, sql);
        }
    }
}
