//! Physical-plan execution over the columnar store.
//!
//! The paper measures "execution cost of the workload" on real hardware
//! (§8.2). Our substitute is a deterministic interpreter: every operator is
//! actually evaluated against the stored data, and the work it performs
//! (rows scanned, hashed, probed, sorted, joined, aggregated) is metered with
//! the same weights the optimizer's cost model uses — so a plan that the
//! optimizer mispriced because statistics were missing really does execute
//! with a different (usually larger) measured cost, which is the effect all
//! of the paper's execution-cost experiments quantify.
//!
//! The executor also runs INSERT/UPDATE/DELETE statements, which drive the
//! per-table modification counters that the §6 auto-maintenance policy
//! consumes.

// Library code must stay panic-free on arbitrary input; tests may unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod error;
pub mod exec;
mod kernels;
pub mod pool;
pub mod predicate;
pub mod reference;
pub mod runner;

pub use error::ExecError;
pub use exec::{
    execute_plan, execute_plan_observed, execute_plan_opts, execute_plan_traced, ExecOptions,
    ExecOutput,
};
pub use pool::ExecPool;
pub use reference::execute_plan_reference;
pub use runner::{
    run_statement, run_statement_observed, run_statement_traced, StatementOutcome, WorkloadReport,
    WorkloadRunner,
};
