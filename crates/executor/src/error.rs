//! Executor-level errors.
//!
//! Plan interpretation returns [`ExecError`] instead of panicking so that a
//! malformed or stale plan — one whose tree is inconsistent with the bound
//! query it is executed against — surfaces as a typed, recoverable failure
//! naming the offending relation rather than crashing the tuning loop.

use optimizer::PlanError;
use std::fmt;
use storage::StorageError;

/// Errors raised while interpreting a physical plan or running a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A plan node (or the final projection) reads relation ordinal
    /// `relation`, but the intermediate result feeding it does not produce
    /// that relation — the plan tree is inconsistent with the query.
    MissingRelation { relation: usize },
    /// A plan node references a selection predicate or join edge ordinal
    /// that the bound query does not define.
    MalformedPlan { detail: String },
    /// Plan search failed before execution could start.
    Plan(PlanError),
    /// A table referenced by the plan or statement no longer exists.
    Storage(StorageError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MissingRelation { relation } => write!(
                f,
                "plan reads relation #{relation}, which its input does not \
                 produce; the plan tree is inconsistent with the query"
            ),
            ExecError::MalformedPlan { detail } => {
                write!(f, "malformed plan: {detail}")
            }
            ExecError::Plan(e) => write!(f, "optimization failed: {e}"),
            ExecError::Storage(e) => write!(f, "storage error during execution: {e}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Plan(e) => Some(e),
            ExecError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlanError> for ExecError {
    fn from(e: PlanError) -> Self {
        ExecError::Plan(e)
    }
}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        ExecError::Storage(e)
    }
}
