//! Persistent worker pool for morsel dispatch.
//!
//! [`ExecPool::parallel_for`] runs `task(0..n)` across the pool with
//! dynamic (work-stealing) claiming: every participant — the calling thread
//! included — repeatedly grabs the next unclaimed index from a shared
//! atomic counter. Which thread runs which index is nondeterministic; the
//! executor keeps results deterministic by writing each index's output into
//! its own pre-allocated slot and merging slots in index order afterwards.
//!
//! Unlike the scoped-thread fan-out the tuner uses (spawn + join per batch),
//! the pool's workers are spawned once and parked on a condvar between
//! rounds, so per-operator dispatch costs a wakeup rather than a thread
//! spawn — morsel dispatch happens per scan/join, far too often to pay
//! spawn cost.
//!
//! Pools are interned per thread count ([`ExecPool::global`]) and live for
//! the process; workers park when idle and hold no job state between
//! rounds.
//!
//! Calls must not nest: a `task` must never call `parallel_for` on any
//! pool (the executor only dispatches from coordinator code, never from
//! inside a morsel).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// Recover a possibly-poisoned std lock result. A panic inside a morsel
/// task propagates to the coordinator via the worker's own unwind (tests)
/// or aborts; recovering the guard here matches parking_lot's no-poisoning
/// semantics used elsewhere in the workspace.
pub(crate) fn relock<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(|e| e.into_inner())
}

/// Borrowed task pointer smuggled to the workers for one round.
///
/// Safety: the pointee lives on the `parallel_for` caller's stack and is
/// only dereferenced for claimed indices `i < n`. `parallel_for` does not
/// return until `completed == n`, i.e. every dereference has finished;
/// after that workers may still hold the `Arc<Job>` briefly but can only
/// claim indices `>= n`, which are never executed.
struct TaskPtr(*const (dyn Fn(usize) + Sync));
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

/// One dispatched round.
struct Job {
    task: TaskPtr,
    n: usize,
    /// Next unclaimed index.
    next: AtomicUsize,
    /// Indices whose task invocation has returned.
    completed: AtomicUsize,
    /// Set (under the lock) by whichever thread completes the last index;
    /// the coordinator waits on it for stragglers.
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl Job {
    /// Claim and run indices until none remain.
    fn run(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return;
            }
            // Safety: i < n and the round is still live (see TaskPtr).
            unsafe { (*self.task.0)(i) };
            // AcqRel: the thread that observes completed == n has acquired
            // every other participant's writes, so its done-flag store
            // publishes them to the waiting coordinator.
            let finished = self.completed.fetch_add(1, Ordering::AcqRel) + 1;
            if finished == self.n {
                *relock(self.done.lock()) = true;
                self.done_cv.notify_all();
            }
        }
    }
}

/// Where workers pick up rounds: a generation counter plus the current job.
/// Workers sleep on the condvar until the generation moves.
struct Inbox {
    slot: Mutex<(u64, Option<Arc<Job>>)>,
    cv: Condvar,
}

/// A persistent pool of `threads - 1` workers plus the calling thread.
pub struct ExecPool {
    threads: usize,
    inbox: Arc<Inbox>,
}

impl ExecPool {
    /// Spawn a pool that runs rounds on `threads` threads total (the caller
    /// participates, so `threads - 1` workers are spawned; `threads <= 1`
    /// spawns none and `parallel_for` degenerates to a serial loop).
    pub fn new(threads: usize) -> ExecPool {
        let threads = threads.max(1);
        let inbox = Arc::new(Inbox {
            slot: Mutex::new((0, None)),
            cv: Condvar::new(),
        });
        for _ in 1..threads {
            let inbox = Arc::clone(&inbox);
            // Workers are detached; pool instances are interned for the
            // process lifetime (see `global`).
            let builder = thread::Builder::new().name("exec-morsel".into());
            if builder.spawn(move || worker_loop(&inbox)).is_err() {
                // Spawn failure (resource exhaustion): the pool still works
                // with fewer workers; rounds just run with less overlap.
                break;
            }
        }
        ExecPool { threads, inbox }
    }

    /// The interned pool for `threads`, spawning it on first use. All
    /// executor invocations at the same thread count share one pool.
    pub fn global(threads: usize) -> Arc<ExecPool> {
        static POOLS: OnceLock<Mutex<HashMap<usize, Arc<ExecPool>>>> = OnceLock::new();
        let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = relock(pools.lock());
        Arc::clone(
            map.entry(threads.max(1))
                .or_insert_with(|| Arc::new(ExecPool::new(threads))),
        )
    }

    /// Total participating threads (callers size per-worker scratch by it).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `task(i)` for every `i in 0..n`, returning once all invocations
    /// have finished. Indices are claimed dynamically; `task` must be safe
    /// to call concurrently from multiple threads and must not call back
    /// into any pool.
    pub fn parallel_for(&self, n: usize, task: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        if self.threads <= 1 || n == 1 {
            for i in 0..n {
                task(i);
            }
            return;
        }
        // Safety: erases the borrow's lifetime into the raw pointer; the
        // TaskPtr contract above guarantees no dereference outlives this
        // call, during which `task` is borrowed.
        let task: &(dyn Fn(usize) + Sync + 'static) = unsafe { std::mem::transmute(task) };
        let job = Arc::new(Job {
            task: TaskPtr(task as *const _),
            n,
            next: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        {
            let mut slot = relock(self.inbox.slot.lock());
            slot.0 += 1;
            slot.1 = Some(Arc::clone(&job));
            self.inbox.cv.notify_all();
        }
        // The coordinator claims morsels like any worker…
        job.run();
        // …then waits out stragglers still finishing their last claim.
        let mut flag = relock(job.done.lock());
        while !*flag {
            flag = relock(job.done_cv.wait(flag));
        }
    }
}

fn worker_loop(inbox: &Inbox) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut slot = relock(inbox.slot.lock());
            loop {
                if slot.0 != seen {
                    seen = slot.0;
                    break slot.1.clone();
                }
                slot = relock(inbox.cv.wait(slot));
            }
        };
        match job {
            // A stale round is harmless: its indices are exhausted, so
            // `run` returns immediately and the worker re-parks.
            Some(job) => job.run(),
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_index_exactly_once() {
        let pool = ExecPool::new(4);
        for round in 0..50 {
            let n = 1 + (round * 13) % 97;
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            pool.parallel_for(n, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "index {i} round {round}");
            }
        }
    }

    #[test]
    fn serial_pool_runs_inline() {
        let pool = ExecPool::new(1);
        let mut order = Vec::new();
        let cell = Mutex::new(&mut order);
        pool.parallel_for(5, &|i| {
            relock(cell.lock()).push(i);
        });
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn global_interns_by_thread_count() {
        let a = ExecPool::global(3);
        let b = ExecPool::global(3);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.threads(), 3);
        assert_eq!(ExecPool::global(0).threads(), 1);
    }

    #[test]
    fn writes_into_disjoint_slots_are_visible() {
        let pool = ExecPool::new(3);
        let n = 1000;
        let mut out = vec![0u64; n];
        {
            let slots: Vec<Mutex<&mut u64>> = out.iter_mut().map(Mutex::new).collect();
            pool.parallel_for(n, &|i| {
                **relock(slots[i].lock()) = (i as u64) * 3 + 1;
            });
        }
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * 3 + 1);
        }
    }
}
