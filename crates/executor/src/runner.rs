//! Running whole statements and workloads.
//!
//! `run_statement` executes any bound statement: SELECTs go through the
//! optimizer and the plan interpreter; DML mutates the store (and thereby
//! the modification counters). `WorkloadRunner` executes a statement list
//! and reports per-statement and total execution work — the paper's
//! "execution cost of the workload" metric.

use crate::error::ExecError;
use crate::exec::{execute_plan_observed, ExecOutput};
use crate::predicate::filter_table_columnar;
use optimizer::{OptimizeOptions, Optimizer};
use query::{BoundDelete, BoundInsert, BoundStatement, BoundUpdate};
use stats::StatsView;
use storage::Database;

/// What executing one statement produced.
#[derive(Debug, Clone)]
pub enum StatementOutcome {
    /// A query: materialized output and the plan's estimated cost.
    Query {
        output: ExecOutput,
        estimated_cost: f64,
    },
    /// DML: rows affected.
    Dml { rows_affected: usize, work: f64 },
}

impl StatementOutcome {
    /// Deterministic execution work of this statement.
    pub fn work(&self) -> f64 {
        match self {
            StatementOutcome::Query { output, .. } => output.work,
            StatementOutcome::Dml { work, .. } => *work,
        }
    }
}

fn run_insert(
    db: &mut Database,
    ins: &BoundInsert,
    opt: &Optimizer,
) -> Result<StatementOutcome, ExecError> {
    let table = db.try_table_mut(ins.table)?;
    let work = opt.params.seq_row; // append cost
    let affected = match table.insert(ins.values.clone()) {
        Ok(()) => 1,
        Err(_) => 0,
    };
    Ok(StatementOutcome::Dml {
        rows_affected: affected,
        work,
    })
}

fn run_update(
    db: &mut Database,
    upd: &BoundUpdate,
    opt: &Optimizer,
) -> Result<StatementOutcome, ExecError> {
    let table = db.try_table_mut(upd.table)?;
    let scan_work = opt.params.seq_scan(table.row_count() as f64);
    let preds: Vec<_> = upd.selections.iter().collect();
    let rows = filter_table_columnar(table, &preds);
    let n = table.update_rows(&rows, upd.set_column, &upd.set_value);
    Ok(StatementOutcome::Dml {
        rows_affected: n,
        work: scan_work + n as f64,
    })
}

fn run_delete(
    db: &mut Database,
    del: &BoundDelete,
    opt: &Optimizer,
) -> Result<StatementOutcome, ExecError> {
    let table = db.try_table_mut(del.table)?;
    let scan_work = opt.params.seq_scan(table.row_count() as f64);
    let preds: Vec<_> = del.selections.iter().collect();
    let rows = filter_table_columnar(table, &preds);
    let n = table.delete_rows(rows);
    Ok(StatementOutcome::Dml {
        rows_affected: n,
        work: scan_work + n as f64,
    })
}

/// Execute one bound statement. Queries are optimized against `stats` and
/// then interpreted; DML mutates `db`.
pub fn run_statement(
    db: &mut Database,
    stats: StatsView<'_>,
    optimizer: &Optimizer,
    stmt: &BoundStatement,
) -> Result<StatementOutcome, ExecError> {
    run_statement_traced(db, stats, optimizer, stmt, &obsv::Tracer::disabled())
}

/// [`run_statement`] under a tracer: SELECTs get an `exec.query` span tree
/// with per-operator child spans; DML gets an `exec.dml` span with the rows
/// affected. Outcomes are bit-identical to the untraced call.
pub fn run_statement_traced(
    db: &mut Database,
    stats: StatsView<'_>,
    optimizer: &Optimizer,
    stmt: &BoundStatement,
    tracer: &obsv::Tracer,
) -> Result<StatementOutcome, ExecError> {
    run_statement_observed(
        db,
        stats,
        optimizer,
        stmt,
        tracer,
        &obsv::FeedbackLog::disabled(),
    )
}

/// [`run_statement_traced`] with a cardinality-feedback channel: SELECT scans
/// additionally record (estimate, observed) pairs into `feedback` when it is
/// enabled. With a disabled log this is bit-identical to the traced call.
pub fn run_statement_observed(
    db: &mut Database,
    stats: StatsView<'_>,
    optimizer: &Optimizer,
    stmt: &BoundStatement,
    tracer: &obsv::Tracer,
    feedback: &obsv::FeedbackLog,
) -> Result<StatementOutcome, ExecError> {
    match stmt {
        BoundStatement::Select(q) => {
            let optimized = optimizer.optimize(db, q, stats, &OptimizeOptions::default())?;
            let output =
                execute_plan_observed(db, q, &optimized.plan, &optimizer.params, tracer, feedback)?;
            Ok(StatementOutcome::Query {
                output,
                estimated_cost: optimized.cost,
            })
        }
        BoundStatement::Insert(i) => traced_dml(tracer, || run_insert(db, i, optimizer)),
        BoundStatement::Update(u) => traced_dml(tracer, || run_update(db, u, optimizer)),
        BoundStatement::Delete(d) => traced_dml(tracer, || run_delete(db, d, optimizer)),
    }
}

fn traced_dml(
    tracer: &obsv::Tracer,
    f: impl FnOnce() -> Result<StatementOutcome, ExecError>,
) -> Result<StatementOutcome, ExecError> {
    let mut span = tracer.span("exec.dml");
    let outcome = f()?;
    if let StatementOutcome::Dml {
        rows_affected,
        work,
    } = &outcome
    {
        span.arg("rows_affected", *rows_affected);
        span.arg("work", *work);
    }
    Ok(outcome)
}

/// Per-workload execution report.
#[derive(Debug, Clone, Default)]
pub struct WorkloadReport {
    /// Execution work per statement, in statement order.
    pub per_statement: Vec<f64>,
    /// Total execution work.
    pub total_work: f64,
    pub queries: usize,
    pub dml_statements: usize,
}

/// Runs a list of bound statements against a database + statistics view.
#[derive(Default)]
pub struct WorkloadRunner {
    pub optimizer: Optimizer,
    /// Disabled by default; set to a live tracer to get per-statement
    /// `exec.query` / `exec.dml` span trees. Purely observational.
    pub tracer: obsv::Tracer,
    /// Disabled by default; set to an enabled log to capture per-scan
    /// cardinality feedback records. Purely observational: results and
    /// metered work are bit-identical either way.
    pub feedback: obsv::FeedbackLog,
}

impl WorkloadRunner {
    /// Execute the whole workload in order, accumulating execution work.
    /// The statistics view is re-fetched per statement via the closure so
    /// callers can keep mutating the catalog between statements. Fails on
    /// the first statement whose optimization or execution errors.
    pub fn run<'a>(
        &self,
        db: &mut Database,
        stats: StatsView<'_>,
        workload: impl IntoIterator<Item = &'a BoundStatement>,
    ) -> Result<WorkloadReport, ExecError> {
        let mut report = WorkloadReport::default();
        for stmt in workload {
            let outcome = run_statement_observed(
                db,
                stats,
                &self.optimizer,
                stmt,
                &self.tracer,
                &self.feedback,
            )?;
            let w = outcome.work();
            report.per_statement.push(w);
            report.total_work += w;
            match outcome {
                StatementOutcome::Query { .. } => report.queries += 1,
                StatementOutcome::Dml { .. } => report.dml_statements += 1,
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use query::{bind_statement, parse_statement};
    use stats::StatsCatalog;
    use storage::{ColumnDef, DataType, Schema, Value};

    fn setup() -> Database {
        let mut db = Database::new();
        let t = db
            .create_table(
                "t",
                Schema::new(vec![
                    ColumnDef::new("a", DataType::Int),
                    ColumnDef::new("b", DataType::Int),
                ]),
            )
            .unwrap();
        for i in 0..50i64 {
            db.table_mut(t)
                .insert(vec![Value::Int(i), Value::Int(i % 5)])
                .unwrap();
        }
        #[allow(deprecated)]
        db.table_mut(t).reset_modification_counter();
        db
    }

    fn bound(db: &Database, sql: &str) -> BoundStatement {
        bind_statement(db, &parse_statement(sql).unwrap()).unwrap()
    }

    #[test]
    fn dml_mutates_and_meters() {
        let mut db = setup();
        let cat = StatsCatalog::new();
        let opt = Optimizer::default();
        let t = db.table_id("t").unwrap();

        let ins = bound(&db, "INSERT INTO t VALUES (100, 9)");
        let o = run_statement(&mut db, cat.full_view(), &opt, &ins).unwrap();
        assert!(matches!(
            o,
            StatementOutcome::Dml {
                rows_affected: 1,
                ..
            }
        ));
        assert_eq!(db.table(t).row_count(), 51);

        let upd = bound(&db, "UPDATE t SET b = 0 WHERE a >= 45");
        let o = run_statement(&mut db, cat.full_view(), &opt, &upd).unwrap();
        match o {
            StatementOutcome::Dml {
                rows_affected,
                work,
            } => {
                assert_eq!(rows_affected, 6);
                assert!(work > 0.0);
            }
            _ => panic!(),
        }

        let del = bound(&db, "DELETE FROM t WHERE a < 10");
        let o = run_statement(&mut db, cat.full_view(), &opt, &del).unwrap();
        assert!(matches!(
            o,
            StatementOutcome::Dml {
                rows_affected: 10,
                ..
            }
        ));
        assert_eq!(db.table(t).row_count(), 41);
        assert_eq!(db.table(t).modification_counter(), 1 + 6 + 10);
    }

    #[test]
    fn workload_report_accumulates() {
        let mut db = setup();
        let cat = StatsCatalog::new();
        let stmts = vec![
            bound(&db, "SELECT * FROM t WHERE a < 10"),
            bound(&db, "INSERT INTO t VALUES (200, 1)"),
            bound(&db, "SELECT COUNT(*) FROM t GROUP BY b"),
        ];
        let runner = WorkloadRunner::default();
        let report = runner.run(&mut db, cat.full_view(), &stmts).unwrap();
        assert_eq!(report.per_statement.len(), 3);
        assert_eq!(report.queries, 2);
        assert_eq!(report.dml_statements, 1);
        assert!((report.total_work - report.per_statement.iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn traced_dml_reports_post_operator_rows_and_matches_untraced() {
        // Audit of the UPDATE/DELETE paths: the `exec.dml` span must carry
        // the rows the statement actually affected (post-operator, after the
        // filter and the mutation), and tracing may not perturb the
        // mutation — same outcome, work, and final table state as the
        // untraced path, including the zero-match edge.
        let base = setup();
        let cases: [(&str, usize); 4] = [
            ("UPDATE t SET b = 9 WHERE a >= 40", 10),
            ("DELETE FROM t WHERE b = 1", 10),
            ("UPDATE t SET b = 7 WHERE a < 0", 0),
            ("DELETE FROM t WHERE a >= 999", 0),
        ];
        let cat = StatsCatalog::new();
        let opt = Optimizer::default();
        let t = base.table_id("t").unwrap();
        for (sql, expected) in cases {
            let stmt = bound(&base, sql);
            let mut db_plain = base.clone();
            let mut db_traced = base.clone();
            let plain = run_statement(&mut db_plain, cat.full_view(), &opt, &stmt).unwrap();
            let tracer = obsv::Tracer::enabled();
            let traced =
                run_statement_traced(&mut db_traced, cat.full_view(), &opt, &stmt, &tracer)
                    .unwrap();
            let (
                StatementOutcome::Dml {
                    rows_affected: n_plain,
                    work: w_plain,
                },
                StatementOutcome::Dml {
                    rows_affected: n_traced,
                    work: w_traced,
                },
            ) = (plain, traced)
            else {
                panic!("{sql}: expected DML outcomes");
            };
            assert_eq!(n_plain, expected, "{sql}");
            assert_eq!(n_plain, n_traced, "{sql}: tracing changed the outcome");
            assert_eq!(w_plain.to_bits(), w_traced.to_bits(), "{sql}");
            let (a, b) = (db_plain.table(t), db_traced.table(t));
            assert_eq!(a.row_count(), b.row_count(), "{sql}");
            for r in 0..a.row_count() {
                for c in 0..a.schema().len() {
                    assert_eq!(a.value(r, c), b.value(r, c), "{sql} r{r} c{c}");
                }
            }
            assert_eq!(a.modification_counter(), b.modification_counter());
            let events = tracer.flush();
            assert!(obsv::trace::validate(&events).is_empty());
            let end = events
                .iter()
                .find(|e| e.kind == obsv::EventKind::End && e.name == "exec.dml")
                .expect("exec.dml span present");
            assert!(
                end.args
                    .iter()
                    .any(|(k, v)| *k == "rows_affected"
                        && *v == obsv::ArgValue::Int(expected as i64)),
                "{sql}: span must report the post-operator count {expected}: {:?}",
                end.args
            );
        }
    }

    #[test]
    fn query_outcome_carries_estimate_and_output() {
        let mut db = setup();
        let cat = StatsCatalog::new();
        let opt = Optimizer::default();
        let sel = bound(&db, "SELECT * FROM t WHERE b = 1");
        match run_statement(&mut db, cat.full_view(), &opt, &sel).unwrap() {
            StatementOutcome::Query {
                output,
                estimated_cost,
            } => {
                assert_eq!(output.row_count(), 10);
                assert!(estimated_cost > 0.0);
            }
            _ => panic!(),
        }
    }
}
