//! The plan interpreter.
//!
//! Intermediate results are kept as tuples of base-table row indices (one
//! per relation present in the subtree) so joins never copy column data;
//! values are materialized only at the very end for the projection and
//! aggregates.
//!
//! The interpreter never trusts the plan tree: a node that reads a relation
//! its input does not produce, or references a predicate/join-edge ordinal
//! the query does not define, yields a typed [`ExecError`] identifying the
//! inconsistency instead of panicking.

use crate::error::ExecError;
use crate::predicate::{filter_table, row_matches};
use optimizer::{CostParams, Operator, PlanNode};
use query::{AggFunc, BoundColumn, BoundSelect, Projection, SelectionPredicate};
use std::collections::HashMap;
use storage::{Database, Value};

/// The result of executing one query plan.
#[derive(Debug, Clone)]
pub struct ExecOutput {
    /// Materialized output rows (projection or aggregate results).
    pub rows: Vec<Vec<Value>>,
    /// Deterministic execution work in the optimizer's cost-model units, but
    /// computed from **actual** row counts.
    pub work: f64,
}

impl ExecOutput {
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }
}

/// An intermediate result: which relation ordinals are present, plus one
/// base-table row index per present relation for every tuple.
struct Intermediate {
    rels: Vec<usize>,
    tuples: Vec<Vec<usize>>,
}

impl Intermediate {
    fn slot_of(&self, rel: usize) -> Option<usize> {
        self.rels.iter().position(|&r| r == rel)
    }
}

struct Interp<'a> {
    db: &'a Database,
    query: &'a BoundSelect,
    params: &'a CostParams,
    work: f64,
}

impl<'a> Interp<'a> {
    fn value_of(
        &self,
        inter: &Intermediate,
        tuple: &[usize],
        col: BoundColumn,
    ) -> Result<Value, ExecError> {
        let missing = ExecError::MissingRelation {
            relation: col.relation,
        };
        let slot = inter.slot_of(col.relation).ok_or_else(|| missing.clone())?;
        let &(tid, _) = self.query.relations.get(col.relation).ok_or(missing)?;
        let table = self.db.try_table(tid)?;
        Ok(table.value(tuple[slot], col.column))
    }

    /// The query's selection predicates at the given plan-node ordinals, or
    /// `MalformedPlan` if an ordinal is out of range.
    fn selections(&self, idxs: &[usize]) -> Result<Vec<&'a SelectionPredicate>, ExecError> {
        idxs.iter()
            .map(|&i| {
                self.query
                    .selections
                    .get(i)
                    .ok_or_else(|| ExecError::MalformedPlan {
                        detail: format!(
                            "plan references selection predicate #{i}, but the query \
                             defines only {}",
                            self.query.selections.len()
                        ),
                    })
            })
            .collect()
    }

    fn edge(&self, e: usize) -> Result<&'a query::JoinEdge, ExecError> {
        self.query
            .join_edges
            .get(e)
            .ok_or_else(|| ExecError::MalformedPlan {
                detail: format!(
                    "plan references join edge #{e}, but the query defines only {}",
                    self.query.join_edges.len()
                ),
            })
    }

    fn run(&mut self, node: &PlanNode) -> Result<Intermediate, ExecError> {
        match &node.op {
            Operator::SeqScan { rel, table, preds } => {
                let t = self.db.try_table(*table)?;
                self.work += self.params.seq_scan(t.row_count() as f64);
                let pred_refs = self.selections(preds)?;
                let rows = filter_table(t, &pred_refs);
                Ok(Intermediate {
                    rels: vec![*rel],
                    tuples: rows.into_iter().map(|r| vec![r]).collect(),
                })
            }
            Operator::IndexScan {
                rel,
                table,
                seek_preds,
                residual,
                ..
            } => {
                let t = self.db.try_table(*table)?;
                // Rows reachable through the index seek.
                let seek_refs = self.selections(seek_preds)?;
                let seek_rows = filter_table(t, &seek_refs);
                self.work += self
                    .params
                    .index_scan(t.row_count() as f64, seek_rows.len() as f64);
                let residual_refs = self.selections(residual)?;
                let rows: Vec<usize> = seek_rows
                    .into_iter()
                    .filter(|&r| residual_refs.iter().all(|p| row_matches(t, r, p)))
                    .collect();
                Ok(Intermediate {
                    rels: vec![*rel],
                    tuples: rows.into_iter().map(|r| vec![r]).collect(),
                })
            }
            Operator::HashJoin { edges } => {
                let left = self.run(&node.children[0])?;
                let right = self.run(&node.children[1])?;
                let out = self.equi_join(&left, &right, edges)?;
                self.work += self.params.hash_join(
                    left.tuples.len() as f64,
                    right.tuples.len() as f64,
                    out.tuples.len() as f64,
                );
                Ok(out)
            }
            Operator::MergeJoin { edges } => {
                let left = self.run(&node.children[0])?;
                let right = self.run(&node.children[1])?;
                let out = self.equi_join(&left, &right, edges)?;
                self.work += self.params.merge_join(
                    left.tuples.len() as f64,
                    right.tuples.len() as f64,
                    out.tuples.len() as f64,
                );
                Ok(out)
            }
            Operator::NestedLoopJoin { edges } => {
                let left = self.run(&node.children[0])?;
                let right = self.run(&node.children[1])?;
                let out = if edges.is_empty() {
                    self.cartesian(&left, &right)
                } else {
                    self.equi_join(&left, &right, edges)?
                };
                // A nested-loop join re-walks the inner input once per outer
                // row; meter it that way even though we materialize.
                self.work += self.params.nested_loop(
                    left.tuples.len() as f64,
                    self.params.seq_row * right.tuples.len() as f64,
                    out.tuples.len() as f64,
                );
                Ok(out)
            }
            Operator::IndexNLJoin {
                edges,
                inner_rel,
                inner_table,
                inner_preds,
                ..
            } => {
                let outer = self.run(&node.children[0])?;
                let table = self.db.try_table(*inner_table)?;
                // Outer-side and inner-side key columns per crossing edge.
                let mut outer_keys: Vec<BoundColumn> = Vec::new();
                let mut inner_cols: Vec<usize> = Vec::new();
                for &e in edges {
                    let edge = self.edge(e)?;
                    for &(lc, rc) in &edge.pairs {
                        if edge.left_rel == *inner_rel {
                            inner_cols.push(lc);
                            outer_keys.push(BoundColumn::new(edge.right_rel, rc));
                        } else {
                            inner_cols.push(rc);
                            outer_keys.push(BoundColumn::new(edge.left_rel, lc));
                        }
                    }
                }
                let inner_pred_refs = self.selections(inner_preds)?;
                // The "index": inner rows keyed by the joined columns.
                let mut by_key: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
                for r in 0..table.row_count() {
                    let key: Vec<Value> = inner_cols.iter().map(|&c| table.value(r, c)).collect();
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    by_key.entry(key).or_default().push(r);
                }
                let mut rels = outer.rels.clone();
                rels.push(*inner_rel);
                let mut tuples = Vec::new();
                let mut fetched_total = 0usize;
                for tup in &outer.tuples {
                    let mut key = Vec::with_capacity(outer_keys.len());
                    for &c in &outer_keys {
                        key.push(self.value_of(&outer, tup, c)?);
                    }
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    if let Some(matches) = by_key.get(&key) {
                        fetched_total += matches.len();
                        for &r in matches {
                            if inner_pred_refs.iter().all(|p| row_matches(table, r, p)) {
                                let mut t = tup.clone();
                                t.push(r);
                                tuples.push(t);
                            }
                        }
                    }
                }
                // Metering mirrors the optimizer's model: one index descent
                // per outer tuple plus a random access per fetched row.
                self.work += outer.tuples.len() as f64 * self.params.index_lookup
                    + fetched_total as f64 * self.params.index_row
                    + self.params.join_output * tuples.len() as f64;
                Ok(Intermediate { rels, tuples })
            }
            Operator::HashAggregate { .. } | Operator::Sort { .. } => {
                // Aggregation and final ordering are handled at the top
                // level in execute_plan; running them standalone passes the
                // input through.
                match node.children.first() {
                    Some(child) => self.run(child),
                    None => Err(ExecError::MalformedPlan {
                        detail: "aggregate/sort node has no input".to_string(),
                    }),
                }
            }
        }
    }

    /// The (left col, right col) pairs of the given edge ordinals oriented so
    /// the first element belongs to `left`.
    fn oriented_keys(
        &self,
        left: &Intermediate,
        edges: &[usize],
    ) -> Result<(Vec<BoundColumn>, Vec<BoundColumn>), ExecError> {
        let mut lk = Vec::new();
        let mut rk = Vec::new();
        for &e in edges {
            let edge = self.edge(e)?;
            let left_has = left.rels.contains(&edge.left_rel);
            for &(lc, rc) in &edge.pairs {
                if left_has {
                    lk.push(BoundColumn::new(edge.left_rel, lc));
                    rk.push(BoundColumn::new(edge.right_rel, rc));
                } else {
                    lk.push(BoundColumn::new(edge.right_rel, rc));
                    rk.push(BoundColumn::new(edge.left_rel, lc));
                }
            }
        }
        Ok((lk, rk))
    }

    fn equi_join(
        &self,
        left: &Intermediate,
        right: &Intermediate,
        edges: &[usize],
    ) -> Result<Intermediate, ExecError> {
        let (lk, rk) = self.oriented_keys(left, edges)?;
        // Build on the right.
        let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (i, tuple) in right.tuples.iter().enumerate() {
            let mut key = Vec::with_capacity(rk.len());
            for &c in &rk {
                key.push(self.value_of(right, tuple, c)?);
            }
            if key.iter().any(Value::is_null) {
                continue; // NULL keys never join
            }
            table.entry(key).or_default().push(i);
        }
        let mut rels = left.rels.clone();
        rels.extend(&right.rels);
        let mut tuples = Vec::new();
        for ltuple in &left.tuples {
            let mut key = Vec::with_capacity(lk.len());
            for &c in &lk {
                key.push(self.value_of(left, ltuple, c)?);
            }
            if key.iter().any(Value::is_null) {
                continue;
            }
            if let Some(matches) = table.get(&key) {
                for &ri in matches {
                    let mut t = ltuple.clone();
                    t.extend(&right.tuples[ri]);
                    tuples.push(t);
                }
            }
        }
        Ok(Intermediate { rels, tuples })
    }

    fn cartesian(&self, left: &Intermediate, right: &Intermediate) -> Intermediate {
        let mut rels = left.rels.clone();
        rels.extend(&right.rels);
        let mut tuples = Vec::with_capacity(left.tuples.len() * right.tuples.len());
        for l in &left.tuples {
            for r in &right.tuples {
                let mut t = l.clone();
                t.extend(r);
                tuples.push(t);
            }
        }
        Intermediate { rels, tuples }
    }
}

fn agg_output(
    interp: &Interp<'_>,
    inter: &Intermediate,
    query: &BoundSelect,
    group_tuples: &[&Vec<usize>],
    key: &[Value],
) -> Result<Vec<Value>, ExecError> {
    let mut row: Vec<Value> = key.to_vec();
    for agg in &query.aggregates {
        let vals: Vec<Value> = match agg.input {
            None => Vec::new(),
            Some(col) => {
                let mut vals = Vec::with_capacity(group_tuples.len());
                for t in group_tuples {
                    let v = interp.value_of(inter, t, col)?;
                    if !v.is_null() {
                        vals.push(v);
                    }
                }
                vals
            }
        };
        let out = match agg.func {
            AggFunc::Count => Value::Int(match agg.input {
                None => group_tuples.len() as i64,
                Some(_) => vals.len() as i64,
            }),
            AggFunc::Min => vals.iter().min().cloned().unwrap_or(Value::Null),
            AggFunc::Max => vals.iter().max().cloned().unwrap_or(Value::Null),
            AggFunc::Sum | AggFunc::Avg => {
                if vals.is_empty() {
                    Value::Null
                } else {
                    let sum: f64 = vals.iter().map(Value::numeric_key).sum();
                    if agg.func == AggFunc::Sum {
                        Value::Float(sum)
                    } else {
                        Value::Float(sum / vals.len() as f64)
                    }
                }
            }
        };
        row.push(out);
    }
    Ok(row)
}

/// Execute a physical plan for `query` against `db`, returning materialized
/// output rows and the deterministic work metric. Errors if the plan tree is
/// inconsistent with the query or references a stale table.
pub fn execute_plan(
    db: &Database,
    query: &BoundSelect,
    plan: &PlanNode,
    params: &CostParams,
) -> Result<ExecOutput, ExecError> {
    let mut interp = Interp {
        db,
        query,
        params,
        work: 0.0,
    };

    let has_agg = !query.group_by.is_empty() || !query.aggregates.is_empty();
    let mut input = interp.run(plan)?;

    if has_agg {
        // Group by the grouping key values.
        let mut groups: HashMap<Vec<Value>, Vec<&Vec<usize>>> = HashMap::new();
        for tuple in &input.tuples {
            let mut key = Vec::with_capacity(query.group_by.len());
            for &g in &query.group_by {
                key.push(interp.value_of(&input, tuple, g)?);
            }
            groups.entry(key).or_default().push(tuple);
        }
        interp.work += interp
            .params
            .hash_aggregate(input.tuples.len() as f64, groups.len() as f64);
        let mut keys: Vec<&Vec<Value>> = groups.keys().collect();
        keys.sort();
        let mut rows = Vec::with_capacity(keys.len());
        for k in keys {
            rows.push(agg_output(&interp, &input, query, &groups[k], k)?);
        }
        // ORDER BY over aggregate output: keys must be grouping columns;
        // their output position is their position in the GROUP BY list.
        if !query.order_by.is_empty() {
            interp.work += interp.params.sort(rows.len() as f64);
            let positions: Vec<(usize, bool)> = query
                .order_by
                .iter()
                .filter_map(|&(col, desc)| {
                    query
                        .group_by
                        .iter()
                        .position(|&g| g == col)
                        .map(|p| (p, desc))
                })
                .collect();
            rows.sort_by(|a, b| {
                for &(p, desc) in &positions {
                    let ord = a[p].total_cmp(&b[p]);
                    if ord != std::cmp::Ordering::Equal {
                        return if desc { ord.reverse() } else { ord };
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        return Ok(ExecOutput {
            rows,
            work: interp.work,
        });
    }

    // ORDER BY on plain queries sorts the tuples before projection (the sort
    // key need not be projected).
    if !query.order_by.is_empty() {
        interp.work += interp.params.sort(input.tuples.len() as f64);
        let mut keyed: Vec<(Vec<Value>, Vec<usize>)> = Vec::with_capacity(input.tuples.len());
        for t in &input.tuples {
            let mut k = Vec::with_capacity(query.order_by.len());
            for &(col, _) in &query.order_by {
                k.push(interp.value_of(&input, t, col)?);
            }
            keyed.push((k, t.clone()));
        }
        let descs: Vec<bool> = query.order_by.iter().map(|&(_, d)| d).collect();
        keyed.sort_by(|a, b| {
            for (i, (x, y)) in a.0.iter().zip(&b.0).enumerate() {
                let ord = x.total_cmp(y);
                if ord != std::cmp::Ordering::Equal {
                    return if descs[i] { ord.reverse() } else { ord };
                }
            }
            std::cmp::Ordering::Equal
        });
        input.tuples = keyed.into_iter().map(|(_, t)| t).collect();
    }

    // Plain projection.
    let cols: Vec<BoundColumn> = match &query.projection {
        Projection::Columns(cols) => cols.clone(),
        Projection::Star => {
            let mut all = Vec::new();
            for (rel, (tid, _)) in query.relations.iter().enumerate() {
                for c in 0..db.try_table(*tid)?.schema().len() {
                    all.push(BoundColumn::new(rel, c));
                }
            }
            all
        }
    };
    let mut rows = Vec::with_capacity(input.tuples.len());
    for t in &input.tuples {
        let mut row = Vec::with_capacity(cols.len());
        for &c in &cols {
            row.push(interp.value_of(&input, t, c)?);
        }
        rows.push(row);
    }
    Ok(ExecOutput {
        rows,
        work: interp.work,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimizer::{OptimizeOptions, Optimizer};
    use query::{bind_statement, parse_statement, BoundStatement};
    use stats::StatsCatalog;
    use storage::{ColumnDef, DataType, Schema};

    fn setup() -> Database {
        let mut db = Database::new();
        let emp = db
            .create_table(
                "emp",
                Schema::new(vec![
                    ColumnDef::new("empid", DataType::Int),
                    ColumnDef::new("deptid", DataType::Int),
                    ColumnDef::new("salary", DataType::Float),
                ]),
            )
            .unwrap();
        let dept = db
            .create_table(
                "dept",
                Schema::new(vec![
                    ColumnDef::new("deptid", DataType::Int),
                    ColumnDef::new("dname", DataType::Str),
                ]),
            )
            .unwrap();
        for i in 0..100i64 {
            db.table_mut(emp)
                .insert(vec![
                    Value::Int(i),
                    Value::Int(i % 5),
                    Value::Float((i * 10) as f64),
                ])
                .unwrap();
        }
        for d in 0..5i64 {
            db.table_mut(dept)
                .insert(vec![Value::Int(d), Value::Str(format!("d{d}"))])
                .unwrap();
        }
        db
    }

    fn bind(db: &Database, sql: &str) -> BoundSelect {
        match bind_statement(db, &parse_statement(sql).unwrap()).unwrap() {
            BoundStatement::Select(q) => q,
            _ => panic!(),
        }
    }

    fn run(db: &Database, sql: &str) -> ExecOutput {
        let q = bind(db, sql);
        let cat = StatsCatalog::new();
        let opt = Optimizer::default();
        let r = opt
            .optimize(db, &q, cat.full_view(), &OptimizeOptions::default())
            .unwrap();
        execute_plan(db, &q, &r.plan, &opt.params).unwrap()
    }

    #[test]
    fn filtered_scan() {
        let db = setup();
        let out = run(&db, "SELECT * FROM emp WHERE empid < 10");
        assert_eq!(out.row_count(), 10);
        assert!(out.work > 0.0);
    }

    #[test]
    fn equi_join_counts() {
        let db = setup();
        let out = run(&db, "SELECT * FROM emp e, dept d WHERE e.deptid = d.deptid");
        assert_eq!(out.row_count(), 100, "every emp matches exactly one dept");
        // Projection covers both tables' columns.
        assert_eq!(out.rows[0].len(), 5);
    }

    #[test]
    fn join_with_filter() {
        let db = setup();
        let out = run(
            &db,
            "SELECT e.empid, d.dname FROM emp e, dept d \
             WHERE e.deptid = d.deptid AND e.salary >= 900.0",
        );
        assert_eq!(out.row_count(), 10);
        assert_eq!(out.rows[0].len(), 2);
    }

    #[test]
    fn group_by_with_aggregates() {
        let db = setup();
        let out = run(
            &db,
            "SELECT deptid, COUNT(*), SUM(salary), MIN(empid), MAX(empid), AVG(salary) \
             FROM emp GROUP BY deptid",
        );
        assert_eq!(out.row_count(), 5);
        // deptid = 0 group: empids 0,5,...,95 → count 20
        let g0 = out.rows.iter().find(|r| r[0] == Value::Int(0)).unwrap();
        assert_eq!(g0[1], Value::Int(20));
        assert_eq!(g0[3], Value::Int(0));
        assert_eq!(g0[4], Value::Int(95));
    }

    #[test]
    fn scalar_aggregate_without_group_by() {
        let db = setup();
        let out = run(&db, "SELECT COUNT(*) FROM emp WHERE deptid = 3");
        assert_eq!(out.row_count(), 1);
        assert_eq!(out.rows[0][0], Value::Int(20));
    }

    #[test]
    fn cartesian_product() {
        let db = setup();
        let out = run(&db, "SELECT * FROM emp, dept");
        assert_eq!(out.row_count(), 500);
    }

    #[test]
    fn empty_result() {
        let db = setup();
        let out = run(&db, "SELECT * FROM emp WHERE empid = -1");
        assert_eq!(out.row_count(), 0);
    }

    #[test]
    fn between_predicate_execution() {
        let db = setup();
        let out = run(&db, "SELECT * FROM emp WHERE empid BETWEEN 10 AND 19");
        assert_eq!(out.row_count(), 10);
    }

    #[test]
    fn order_by_sorts_output() {
        let db = setup();
        let out = run(
            &db,
            "SELECT empid FROM emp WHERE empid < 5 ORDER BY empid DESC",
        );
        let ids: Vec<Value> = out.rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(
            ids,
            vec![
                Value::Int(4),
                Value::Int(3),
                Value::Int(2),
                Value::Int(1),
                Value::Int(0)
            ]
        );
    }

    #[test]
    fn order_by_unprojected_column() {
        // Sorting by a column that is not in the projection.
        let db = setup();
        let out = run(&db, "SELECT dname FROM dept ORDER BY deptid DESC");
        assert_eq!(out.rows[0][0], Value::Str("d4".into()));
        assert_eq!(out.rows[4][0], Value::Str("d0".into()));
    }

    #[test]
    fn order_by_on_aggregate_output() {
        let db = setup();
        let out = run(
            &db,
            "SELECT deptid, COUNT(*) FROM emp GROUP BY deptid ORDER BY deptid DESC",
        );
        assert_eq!(out.rows[0][0], Value::Int(4));
        assert_eq!(out.rows[4][0], Value::Int(0));
    }

    #[test]
    fn work_is_deterministic() {
        let db = setup();
        let a = run(&db, "SELECT * FROM emp e, dept d WHERE e.deptid = d.deptid");
        let b = run(&db, "SELECT * FROM emp e, dept d WHERE e.deptid = d.deptid");
        assert_eq!(a.work, b.work);
    }

    #[test]
    fn inconsistent_plan_reports_missing_relation() {
        // A hand-built plan whose scan produces relation ordinal 1 while the
        // query's projection reads relation 0: the executor must name the
        // missing relation instead of panicking.
        let db = setup();
        let q = bind(&db, "SELECT * FROM emp");
        let t = db.table_id("emp").unwrap();
        let plan = PlanNode::leaf(
            Operator::SeqScan {
                rel: 1,
                table: t,
                preds: vec![],
            },
            100.0,
            100.0,
        );
        let err = execute_plan(&db, &q, &plan, &Optimizer::default().params).unwrap_err();
        assert_eq!(err, ExecError::MissingRelation { relation: 0 });
        assert!(err.to_string().contains("relation #0"), "{err}");
    }

    #[test]
    fn out_of_range_predicate_is_malformed_plan() {
        let db = setup();
        let q = bind(&db, "SELECT * FROM emp");
        let t = db.table_id("emp").unwrap();
        let plan = PlanNode::leaf(
            Operator::SeqScan {
                rel: 0,
                table: t,
                preds: vec![9],
            },
            100.0,
            100.0,
        );
        let err = execute_plan(&db, &q, &plan, &Optimizer::default().params).unwrap_err();
        assert!(matches!(err, ExecError::MalformedPlan { .. }), "{err:?}");
    }
}
