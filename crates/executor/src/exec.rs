//! The columnar batch plan executor.
//!
//! Intermediate results are kept as tuples of base-table row indices (one
//! per relation present in the subtree) so joins never copy column data;
//! values are materialized only at the very end for the projection and
//! aggregates.
//!
//! This engine is bit-identical to the retained row-at-a-time interpreter in
//! [`crate::reference`] — same `ExecOutput.rows`, same `work` — but removes
//! its per-row costs:
//!
//! * **Selections** are evaluated as selection vectors over typed column
//!   slices ([`filter_table_columnar`]): each predicate is compiled once
//!   against its column, so the per-row check is a primitive compare instead
//!   of a `Value` materialization.
//! * **Hash joins and group-bys** key on fixed-seed 64-bit fingerprints of
//!   the key columns (an `FxHasher` over the same type-tag + payload layout
//!   as `Value`'s `Hash` impl) instead of `HashMap<Vec<Value>, _>`. A
//!   fingerprint bucket may mix distinct keys, so every probe hit is
//!   verified with a typed column-to-column equality check — results stay
//!   exact even under 64-bit collisions.
//! * **Column resolution is hoisted**: relation → slot → table → column is
//!   resolved once per operator, not once per value.
//! * **Projections materialize column-wise**: one pass per output column
//!   over the surviving tuples.
//!
//! The interpreter never trusts the plan tree: a node that reads a relation
//! its input does not produce, or references a predicate/join-edge ordinal
//! the query does not define, yields a typed [`ExecError`] identifying the
//! inconsistency instead of panicking.
//!
//! # Morsel-driven parallelism
//!
//! With [`ExecOptions::threads`] > 1 the engine splits scans, hash-join
//! builds, and probes into fixed-size morsels ([`ExecOptions::morsel_rows`]
//! rows each) dispatched to the interned [`ExecPool`]. Determinism is
//! structural, not scheduled: morsel boundaries depend only on
//! `morsel_rows` (never on the thread count), every morsel writes into its
//! own pre-sized output slot, and the coordinator concatenates the slots in
//! morsel order — which is exactly the serial engine's iteration order. All
//! tracing (`exec.op.*` spans), `work` accumulation, and feedback pushes
//! stay on the coordinator thread in plan-recursion order, so rows, work
//! bits, span trees, and `FeedbackRecord` streams are identical at every
//! thread count and to the serial engine.

use crate::error::ExecError;
use crate::pool::{relock, ExecPool};
use crate::predicate::{filter_table_columnar, CompiledPred};
use optimizer::{CostParams, Operator, PlanNode};
use query::{AggFunc, BoundColumn, BoundSelect, CmpOp, PredOp, Projection, SelectionPredicate};
use rustc_hash::{FxHashMap, FxHasher};
use std::hash::{Hash, Hasher};
use std::ops::Range;
use std::sync::{Arc, Mutex, OnceLock};
use storage::{ColumnData, DataType, Database, TableId, Value, ValueRef};

/// Execution tuning knobs. The defaults are the serial engine; thread
/// counts > 1 enable morsel dispatch with results bit-identical to serial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Total threads participating in morsel rounds (the calling thread
    /// included). `0` and `1` both mean serial.
    pub threads: usize,
    /// Rows per morsel. Output-shaping constant: it defines the
    /// deterministic merge boundaries, so changing it regroups work but
    /// never changes results. Inputs of at most one morsel run inline.
    pub morsel_rows: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            threads: 1,
            morsel_rows: 4096,
        }
    }
}

impl ExecOptions {
    /// Serial defaults with the given thread count.
    pub fn with_threads(threads: usize) -> Self {
        ExecOptions {
            threads: threads.max(1),
            ..ExecOptions::default()
        }
    }

    /// Options from `AUTOSTATS_EXEC_THREADS` / `AUTOSTATS_MORSEL_ROWS`
    /// (absent or unparsable → defaults), read once per process. This is
    /// what [`execute_plan`] and the workload runner use, so CI can force
    /// every executor invocation parallel without threading options through
    /// call sites.
    pub fn from_env() -> Self {
        static CACHED: OnceLock<ExecOptions> = OnceLock::new();
        *CACHED.get_or_init(|| {
            let read = |name: &str| {
                std::env::var(name)
                    .ok()
                    .and_then(|v| v.trim().parse::<usize>().ok())
            };
            let mut opts = ExecOptions::default();
            if let Some(t) = read("AUTOSTATS_EXEC_THREADS") {
                opts.threads = t.max(1);
            }
            if let Some(m) = read("AUTOSTATS_MORSEL_ROWS") {
                opts.morsel_rows = m.max(1);
            }
            opts
        })
    }
}

/// Run `f` over each morsel of `0..n` and return the outputs in morsel
/// order. The pool path writes each morsel's output into its own slot
/// (locked once, uncontended); with no pool, or when everything fits in one
/// morsel, the morsels run inline on the caller — either way the returned
/// sequence is the same.
fn map_morsels<T: Send>(
    pool: Option<&ExecPool>,
    n: usize,
    morsel_rows: usize,
    f: impl Fn(Range<usize>) -> T + Sync,
) -> Vec<T> {
    let morsel_rows = morsel_rows.max(1);
    let m = n.div_ceil(morsel_rows);
    let span = |mi: usize| mi * morsel_rows..((mi + 1) * morsel_rows).min(n);
    match pool {
        Some(pool) if m > 1 => {
            let slots: Vec<Mutex<Option<T>>> = (0..m).map(|_| Mutex::new(None)).collect();
            pool.parallel_for(m, &|mi| {
                *relock(slots[mi].lock()) = Some(f(span(mi)));
            });
            slots
                .into_iter()
                .filter_map(|s| relock(s.into_inner()))
                .collect()
        }
        _ => (0..m).map(|mi| f(span(mi))).collect(),
    }
}

/// Hash-join build side, partitioned by fingerprint.
///
/// Replaces a `FxHashMap<u64, chain>` with flat arrays sized at build time:
/// fingerprints live in one vector indexed by build ordinal, and each of the
/// [`FP_PARTITIONS`] fixed partitions (top fingerprint bits — a constant
/// split, independent of thread count) owns a power-of-two bucket array
/// with intrusive chains over its rows. Chains are built by prepending in
/// *reverse* input order, so every probe walks matches in input order —
/// exactly the bucket order of the reference interpreter's
/// `HashMap<Vec<Value>, Vec<usize>>`. A bucket (and even one fingerprint)
/// may mix distinct keys; callers verify every hit with [`keys_equal`].
///
/// Build is morsel-parallel in two phases: fingerprints are computed into
/// disjoint per-morsel slices, then the (serial, cheap) scatter assigns
/// rows to partitions in input order and the per-partition chain builds run
/// in parallel — each phase's output is independent of the thread count.
struct FpTable {
    /// Fingerprint per build ordinal; unspecified where the key was NULL.
    fps: Vec<u64>,
    parts: Vec<FpPartition>,
}

const FP_PARTITIONS: usize = 16;

struct FpPartition {
    /// Bucket count - 1 (bucket count is a power of two).
    mask: usize,
    /// Bucket → first local index, `usize::MAX` when empty.
    head: Vec<usize>,
    /// Local index → next local index in the chain.
    next: Vec<usize>,
    /// Local index → build ordinal, in input order.
    rows: Vec<usize>,
}

#[inline]
fn fp_partition(fp: u64) -> usize {
    (fp >> 60) as usize & (FP_PARTITIONS - 1)
}

#[inline]
fn fp_bucket(fp: u64, mask: usize) -> usize {
    // The partition uses the top bits; spread the rest before masking so
    // low-entropy fingerprints don't chain up.
    ((fp.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & mask
}

impl FpTable {
    /// Build over ordinals `0..n`; `fingerprint(i)` returns `None` for keys
    /// that can never match (NULL components).
    fn build(
        n: usize,
        pool: Option<&ExecPool>,
        morsel_rows: usize,
        fingerprint: impl Fn(usize) -> Option<u64> + Sync,
    ) -> FpTable {
        // Phase 1: fingerprints, morsel-parallel into disjoint slices.
        let mut fps = vec![0u64; n];
        let mut has = vec![false; n];
        {
            let morsel = morsel_rows.max(1);
            let chunks: Vec<Mutex<(&mut [u64], &mut [bool])>> = fps
                .chunks_mut(morsel)
                .zip(has.chunks_mut(morsel))
                .map(Mutex::new)
                .collect();
            let fill = |mi: usize| {
                let mut slot = relock(chunks[mi].lock());
                let (fp_chunk, has_chunk) = &mut *slot;
                let base = mi * morsel;
                for j in 0..fp_chunk.len() {
                    if let Some(fp) = fingerprint(base + j) {
                        fp_chunk[j] = fp;
                        has_chunk[j] = true;
                    }
                }
            };
            match pool {
                Some(pool) if chunks.len() > 1 => pool.parallel_for(chunks.len(), &fill),
                _ => (0..chunks.len()).for_each(fill),
            }
        }
        // Phase 2: scatter build ordinals to their partitions, input order.
        let mut part_rows: Vec<Vec<usize>> = (0..FP_PARTITIONS).map(|_| Vec::new()).collect();
        for i in 0..n {
            if has[i] {
                part_rows[fp_partition(fps[i])].push(i);
            }
        }
        // Phase 3: per-partition chains, partition-parallel.
        let parts = {
            let slots: Vec<Mutex<(Vec<usize>, Option<FpPartition>)>> = part_rows
                .into_iter()
                .map(|rows| Mutex::new((rows, None)))
                .collect();
            let build_one = |p: usize| {
                let mut slot = relock(slots[p].lock());
                let rows = std::mem::take(&mut slot.0);
                slot.1 = Some(FpPartition::build(&fps, rows));
            };
            match pool {
                Some(pool) => pool.parallel_for(FP_PARTITIONS, &build_one),
                None => (0..FP_PARTITIONS).for_each(build_one),
            }
            slots
                .into_iter()
                .filter_map(|s| relock(s.into_inner()).1)
                .collect()
        };
        FpTable { fps, parts }
    }

    /// Ordinals whose fingerprint equals `fp`, in input order.
    #[inline]
    fn probe(&self, fp: u64) -> FpIter<'_> {
        let part = &self.parts[fp_partition(fp)];
        FpIter {
            fps: &self.fps,
            part,
            at: part.head[fp_bucket(fp, part.mask)],
            fp,
        }
    }
}

impl FpPartition {
    fn build(fps: &[u64], rows: Vec<usize>) -> FpPartition {
        let buckets = rows.len().next_power_of_two().max(1);
        let mask = buckets - 1;
        let mut head = vec![usize::MAX; buckets];
        let mut next = vec![usize::MAX; rows.len()];
        for li in (0..rows.len()).rev() {
            let b = fp_bucket(fps[rows[li]], mask);
            next[li] = head[b];
            head[b] = li;
        }
        FpPartition {
            mask,
            head,
            next,
            rows,
        }
    }
}

struct FpIter<'a> {
    fps: &'a [u64],
    part: &'a FpPartition,
    at: usize,
    fp: u64,
}

impl Iterator for FpIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.at != usize::MAX {
            let li = self.at;
            self.at = self.part.next[li];
            let row = self.part.rows[li];
            if self.fps[row] == self.fp {
                return Some(row);
            }
        }
        None
    }
}

/// The result of executing one query plan.
#[derive(Debug, Clone)]
pub struct ExecOutput {
    /// Materialized output rows (projection or aggregate results).
    pub rows: Vec<Vec<Value>>,
    /// Deterministic execution work in the optimizer's cost-model units, but
    /// computed from **actual** row counts.
    pub work: f64,
}

impl ExecOutput {
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }
}

/// An intermediate result: which relation ordinals are present, plus one
/// base-table row index per present relation for every tuple. Tuples live
/// back-to-back in one flat buffer (`rels.len()` indices per tuple) so
/// operators never allocate per tuple — a scan's output *is* its selection
/// vector, and a join appends two slices per match.
struct Intermediate {
    rels: Vec<usize>,
    data: Vec<usize>,
}

impl Intermediate {
    fn slot_of(&self, rel: usize) -> Option<usize> {
        self.rels.iter().position(|&r| r == rel)
    }

    #[inline]
    fn arity(&self) -> usize {
        self.rels.len()
    }

    #[inline]
    fn count(&self) -> usize {
        if self.rels.is_empty() {
            0
        } else {
            self.data.len() / self.rels.len()
        }
    }

    #[inline]
    fn tuple(&self, i: usize) -> &[usize] {
        let a = self.arity();
        &self.data[i * a..(i + 1) * a]
    }

    #[inline]
    fn tuples(&self) -> std::slice::ChunksExact<'_, usize> {
        self.data.chunks_exact(self.arity().max(1))
    }
}

/// A bound column resolved against an intermediate: the tuple slot holding
/// the row index, and the column storage itself. Resolving once per operator
/// replaces the reference interpreter's per-value relation → table → column
/// chain.
#[derive(Clone, Copy)]
struct ResolvedCol<'a> {
    slot: usize,
    col: &'a ColumnData,
}

impl<'a> ResolvedCol<'a> {
    #[inline]
    fn row(&self, tuple: &[usize]) -> usize {
        tuple[self.slot]
    }
}

/// One join/group key column with the `data_type` dispatch hoisted out of
/// the per-tuple loops: fingerprinting and equality over a `KeyCol` touch a
/// tuple slot, a validity flag, and a typed payload — no `ValueRef`
/// construction, no per-value type match. `Other` keeps the generic path
/// for columns whose payload slice is unavailable (never the case for the
/// four stored types, but it keeps construction total without panicking).
enum KeyCol<'a> {
    Int {
        slot: usize,
        xs: &'a [i64],
        valid: &'a [bool],
    },
    Date {
        slot: usize,
        xs: &'a [i64],
        valid: &'a [bool],
    },
    Float {
        slot: usize,
        xs: &'a [f64],
        valid: &'a [bool],
    },
    Str {
        slot: usize,
        xs: &'a [String],
        valid: &'a [bool],
    },
    Other(ResolvedCol<'a>),
}

impl<'a> KeyCol<'a> {
    fn new(rc: ResolvedCol<'a>) -> KeyCol<'a> {
        let slot = rc.slot;
        let valid = rc.col.validity();
        match rc.col.data_type() {
            DataType::Int => match rc.col.int_slice() {
                Some(xs) => KeyCol::Int { slot, xs, valid },
                None => KeyCol::Other(rc),
            },
            DataType::Date => match rc.col.int_slice() {
                Some(xs) => KeyCol::Date { slot, xs, valid },
                None => KeyCol::Other(rc),
            },
            DataType::Float => match rc.col.float_slice() {
                Some(xs) => KeyCol::Float { slot, xs, valid },
                None => KeyCol::Other(rc),
            },
            DataType::Str => match rc.col.str_slice() {
                Some(xs) => KeyCol::Str { slot, xs, valid },
                None => KeyCol::Other(rc),
            },
        }
    }

    /// Borrowed view of this key component — the generic fallback used when
    /// comparing across differently-typed columns. Dates truncate to `i32`
    /// exactly as [`ColumnData::get_ref`] does.
    #[inline]
    fn value_ref(&self, tuple: &[usize]) -> ValueRef<'a> {
        match self {
            KeyCol::Int { slot, xs, valid } => {
                let r = tuple[*slot];
                if valid[r] {
                    ValueRef::Int(xs[r])
                } else {
                    ValueRef::Null
                }
            }
            KeyCol::Date { slot, xs, valid } => {
                let r = tuple[*slot];
                if valid[r] {
                    ValueRef::Date(xs[r] as i32)
                } else {
                    ValueRef::Null
                }
            }
            KeyCol::Float { slot, xs, valid } => {
                let r = tuple[*slot];
                if valid[r] {
                    ValueRef::Float(xs[r])
                } else {
                    ValueRef::Null
                }
            }
            KeyCol::Str { slot, xs, valid } => {
                let r = tuple[*slot];
                if valid[r] {
                    ValueRef::Str(&xs[r])
                } else {
                    ValueRef::Null
                }
            }
            KeyCol::Other(rc) => rc.col.get_ref(rc.row(tuple)),
        }
    }
}

/// The key columns of one join side (or of a GROUP BY), typed once per
/// operator via [`KeyCol`].
struct KeySet<'a> {
    cols: Vec<KeyCol<'a>>,
}

impl<'a> KeySet<'a> {
    fn new(cols: Vec<ResolvedCol<'a>>) -> KeySet<'a> {
        KeySet {
            cols: cols.into_iter().map(KeyCol::new).collect(),
        }
    }

    /// 64-bit fingerprint of a join key: `None` when any component is NULL
    /// (NULL keys never join). Hashes the same type-tag + canonical-payload
    /// sequence as `ValueRef::hash` over the fixed-seed `FxHasher` — the
    /// typed arms write exactly the bytes the generic path would — so equal
    /// same-typed keys always collide and the map behaves like the
    /// reference `HashMap<Vec<Value>, _>`.
    #[inline]
    fn join_fp(&self, tuple: &[usize]) -> Option<u64> {
        let mut h = FxHasher::default();
        for kc in &self.cols {
            match kc {
                KeyCol::Int { slot, xs, valid } => {
                    let r = tuple[*slot];
                    if !valid[r] {
                        return None;
                    }
                    1u8.hash(&mut h);
                    xs[r].hash(&mut h);
                }
                KeyCol::Date { slot, xs, valid } => {
                    let r = tuple[*slot];
                    if !valid[r] {
                        return None;
                    }
                    4u8.hash(&mut h);
                    (xs[r] as i32).hash(&mut h);
                }
                KeyCol::Float { slot, xs, valid } => {
                    let r = tuple[*slot];
                    if !valid[r] {
                        return None;
                    }
                    2u8.hash(&mut h);
                    xs[r].to_bits().hash(&mut h);
                }
                KeyCol::Str { slot, xs, valid } => {
                    let r = tuple[*slot];
                    if !valid[r] {
                        return None;
                    }
                    3u8.hash(&mut h);
                    xs[r].hash(&mut h);
                }
                KeyCol::Other(rc) => {
                    let v = rc.col.get_ref(rc.row(tuple));
                    if v.is_null() {
                        return None;
                    }
                    v.hash(&mut h);
                }
            }
        }
        Some(h.finish())
    }

    /// Fingerprint of a grouping key; unlike join keys, NULLs participate
    /// (they form their own group, tagged `0` as `Value::hash` tags them).
    #[inline]
    fn group_fp(&self, tuple: &[usize]) -> u64 {
        let mut h = FxHasher::default();
        for kc in &self.cols {
            match kc {
                KeyCol::Int { slot, xs, valid } => {
                    let r = tuple[*slot];
                    if valid[r] {
                        1u8.hash(&mut h);
                        xs[r].hash(&mut h);
                    } else {
                        0u8.hash(&mut h);
                    }
                }
                KeyCol::Date { slot, xs, valid } => {
                    let r = tuple[*slot];
                    if valid[r] {
                        4u8.hash(&mut h);
                        (xs[r] as i32).hash(&mut h);
                    } else {
                        0u8.hash(&mut h);
                    }
                }
                KeyCol::Float { slot, xs, valid } => {
                    let r = tuple[*slot];
                    if valid[r] {
                        2u8.hash(&mut h);
                        xs[r].to_bits().hash(&mut h);
                    } else {
                        0u8.hash(&mut h);
                    }
                }
                KeyCol::Str { slot, xs, valid } => {
                    let r = tuple[*slot];
                    if valid[r] {
                        3u8.hash(&mut h);
                        xs[r].hash(&mut h);
                    } else {
                        0u8.hash(&mut h);
                    }
                }
                KeyCol::Other(rc) => rc.col.get_ref(rc.row(tuple)).hash(&mut h),
            }
        }
        h.finish()
    }

    /// Exact equality of this side's key tuple against `other`'s — the
    /// collision fallback behind the fingerprints. Same-typed pairs compare
    /// payloads directly: for same-typed values `total_cmp == Equal`
    /// reduces to payload equality (floats by bit pattern, dates truncated
    /// to `i32`). Mixed-type pairs fall back to the `ValueRef` comparison.
    /// Callers only invoke this after both fingerprints matched, so every
    /// component is known non-NULL.
    #[inline]
    fn keys_equal(&self, tuple: &[usize], other: &KeySet<'a>, otuple: &[usize]) -> bool {
        self.cols
            .iter()
            .zip(&other.cols)
            .all(|(a, b)| match (a, b) {
                (
                    KeyCol::Int {
                        slot: sa, xs: xa, ..
                    },
                    KeyCol::Int {
                        slot: sb, xs: xb, ..
                    },
                ) => xa[tuple[*sa]] == xb[otuple[*sb]],
                (
                    KeyCol::Date {
                        slot: sa, xs: xa, ..
                    },
                    KeyCol::Date {
                        slot: sb, xs: xb, ..
                    },
                ) => xa[tuple[*sa]] as i32 == xb[otuple[*sb]] as i32,
                (
                    KeyCol::Float {
                        slot: sa, xs: xa, ..
                    },
                    KeyCol::Float {
                        slot: sb, xs: xb, ..
                    },
                ) => xa[tuple[*sa]].to_bits() == xb[otuple[*sb]].to_bits(),
                (
                    KeyCol::Str {
                        slot: sa, xs: xa, ..
                    },
                    KeyCol::Str {
                        slot: sb, xs: xb, ..
                    },
                ) => xa[tuple[*sa]] == xb[otuple[*sb]],
                (a, b) => a.value_ref(tuple) == b.value_ref(otuple),
            })
    }
}

/// Static span name per operator (`exec.op.<Operator>`): span names are
/// `&'static str` by the tracer's contract, so the taxonomy is spelled out
/// here rather than formatted at runtime.
fn op_span_name(op: &Operator) -> &'static str {
    match op {
        Operator::SeqScan { .. } => "exec.op.SeqScan",
        Operator::IndexScan { .. } => "exec.op.IndexScan",
        Operator::HashJoin { .. } => "exec.op.HashJoin",
        Operator::MergeJoin { .. } => "exec.op.MergeJoin",
        Operator::NestedLoopJoin { .. } => "exec.op.NestedLoopJoin",
        Operator::IndexNLJoin { .. } => "exec.op.IndexNLJoin",
        Operator::HashAggregate { .. } => "exec.op.HashAggregate",
        Operator::Sort { .. } => "exec.op.Sort",
    }
}

struct Interp<'a> {
    db: &'a Database,
    query: &'a BoundSelect,
    params: &'a CostParams,
    work: f64,
    /// Execution-feedback channel: scans with a single supported predicate
    /// report (template, est, actual) records here. Disabled by default —
    /// one branch per scan, and never any effect on rows or work.
    feedback: &'a obsv::FeedbackLog,
    /// Morsel dispatch target; `None` runs everything inline (serial).
    pool: Option<Arc<ExecPool>>,
    morsel_rows: usize,
}

/// The numeric key of a literal, for feedback ranges. Strings are excluded:
/// their histogram keys depend on a stored common prefix the executor cannot
/// know, so a raw `numeric_key` would not align with the histogram domain.
fn feedback_key(v: &Value) -> Option<f64> {
    match v {
        Value::Int(_) | Value::Float(_) => {
            let k = v.numeric_key();
            k.is_finite().then_some(k)
        }
        _ => None,
    }
}

/// The inclusive numeric-key range a predicate selects, plus a stable
/// operator-class byte for template fingerprinting. `None` for predicates
/// feedback cannot describe as one interval (Ne, string literals).
fn feedback_range(op: &PredOp) -> Option<(f64, f64, u8)> {
    match op {
        PredOp::Cmp(CmpOp::Eq, v) => {
            let k = feedback_key(v)?;
            Some((k, k, 0))
        }
        PredOp::Cmp(CmpOp::Lt, v) | PredOp::Cmp(CmpOp::Le, v) => {
            Some((f64::NEG_INFINITY, feedback_key(v)?, 2))
        }
        PredOp::Cmp(CmpOp::Gt, v) | PredOp::Cmp(CmpOp::Ge, v) => {
            Some((feedback_key(v)?, f64::INFINITY, 2))
        }
        PredOp::Cmp(CmpOp::Ne, _) => None,
        PredOp::Between(a, b) => {
            let (ka, kb) = (feedback_key(a)?, feedback_key(b)?);
            (ka <= kb).then_some((ka, kb, 3))
        }
    }
}

impl<'a> Interp<'a> {
    #[inline]
    fn pool(&self) -> Option<&ExecPool> {
        self.pool.as_deref()
    }

    /// Row indices of `table` matching all `preds`, morsel-parallel: each
    /// morsel sweeps the compiled kernels over its own span and the partial
    /// selection vectors concatenate in morsel order — the serial scan
    /// order. Returns exactly [`filter_table_columnar`]'s result.
    fn filter_morsels(&self, table: &storage::Table, preds: &[&SelectionPredicate]) -> Vec<usize> {
        let n = table.row_count();
        if preds.is_empty() || n == 0 {
            return (0..n).collect();
        }
        if self.pool.is_none() || n <= self.morsel_rows {
            return filter_table_columnar(table, preds);
        }
        let compiled: Vec<CompiledPred<'_>> =
            preds.iter().map(|p| CompiledPred::new(table, p)).collect();
        let parts = map_morsels(self.pool(), n, self.morsel_rows, |span| {
            let mut sel = Vec::new();
            if let Some((first, rest)) = compiled.split_first() {
                first.select_into(span, &mut sel);
                for p in rest {
                    p.refine(&mut sel);
                }
            }
            sel
        });
        parts.concat()
    }

    /// Resolve bound columns against an intermediate, once per operator.
    /// The per-column checks (slot, relation, table) run in the same order
    /// as the reference interpreter's `value_of`, so a malformed plan
    /// surfaces the same error.
    fn resolve_cols(
        &self,
        inter: &Intermediate,
        cols: &[BoundColumn],
    ) -> Result<Vec<ResolvedCol<'a>>, ExecError> {
        cols.iter()
            .map(|&c| {
                let missing = ExecError::MissingRelation {
                    relation: c.relation,
                };
                let slot = inter.slot_of(c.relation).ok_or_else(|| missing.clone())?;
                let &(tid, _) = self.query.relations.get(c.relation).ok_or(missing)?;
                let table = self.db.try_table(tid)?;
                Ok(ResolvedCol {
                    slot,
                    col: table.column(c.column),
                })
            })
            .collect()
    }

    /// The query's selection predicates at the given plan-node ordinals, or
    /// `MalformedPlan` if an ordinal is out of range.
    fn selections(&self, idxs: &[usize]) -> Result<Vec<&'a SelectionPredicate>, ExecError> {
        idxs.iter()
            .map(|&i| {
                self.query
                    .selections
                    .get(i)
                    .ok_or_else(|| ExecError::MalformedPlan {
                        detail: format!(
                            "plan references selection predicate #{i}, but the query \
                             defines only {}",
                            self.query.selections.len()
                        ),
                    })
            })
            .collect()
    }

    /// Report one scan's observed cardinality to the feedback log, when the
    /// scan is a clean feedback template: exactly one predicate, describable
    /// as a single numeric-key interval. Anything else is skipped — partial
    /// feedback on a conjunction would mis-attribute the filtering.
    fn record_scan_feedback(
        &self,
        node: &PlanNode,
        table: TableId,
        preds: &[&SelectionPredicate],
        rows_out: usize,
        input_rows: usize,
    ) {
        if !self.feedback.is_enabled() || preds.len() != 1 {
            return;
        }
        let Some(&pred) = preds.first() else { return };
        let Some((lo, hi, op_class)) = feedback_range(&pred.op) else {
            return;
        };
        let (table_raw, column) = (table.0 as u64, pred.column.column as u32);
        self.feedback.push(obsv::FeedbackRecord {
            fingerprint: obsv::template_fingerprint(table_raw, column, op_class),
            table: table_raw,
            column,
            lo,
            hi,
            est_rows: node.est_rows,
            rows_out: rows_out as f64,
            input_rows: input_rows as f64,
        });
    }

    fn edge(&self, e: usize) -> Result<&'a query::JoinEdge, ExecError> {
        self.query
            .join_edges
            .get(e)
            .ok_or_else(|| ExecError::MalformedPlan {
                detail: format!(
                    "plan references join edge #{e}, but the query defines only {}",
                    self.query.join_edges.len()
                ),
            })
    }

    /// Run one plan node under an operator span. Each operator records its
    /// actual output cardinality next to the optimizer's estimate, so a
    /// trace shows exactly where cardinality estimation went wrong — the
    /// feedback signal the whole statistics-selection loop exists to serve.
    fn run(
        &mut self,
        node: &PlanNode,
        parent: &obsv::SpanGuard,
    ) -> Result<Intermediate, ExecError> {
        let mut span = parent.child(op_span_name(&node.op));
        let out = self.run_node(node, &span)?;
        span.arg("rows_out", out.count());
        span.arg("est_rows", node.est_rows);
        Ok(out)
    }

    fn run_node(
        &mut self,
        node: &PlanNode,
        span: &obsv::SpanGuard,
    ) -> Result<Intermediate, ExecError> {
        match &node.op {
            Operator::SeqScan { rel, table, preds } => {
                let t = self.db.try_table(*table)?;
                self.work += self.params.seq_scan(t.row_count() as f64);
                let pred_refs = self.selections(preds)?;
                let rows = self.filter_morsels(t, &pred_refs);
                self.record_scan_feedback(node, *table, &pred_refs, rows.len(), t.row_count());
                Ok(Intermediate {
                    rels: vec![*rel],
                    data: rows,
                })
            }
            Operator::IndexScan {
                rel,
                table,
                seek_preds,
                residual,
                ..
            } => {
                let t = self.db.try_table(*table)?;
                // Rows reachable through the index seek.
                let seek_refs = self.selections(seek_preds)?;
                let mut rows = self.filter_morsels(t, &seek_refs);
                self.work += self
                    .params
                    .index_scan(t.row_count() as f64, rows.len() as f64);
                let residual_refs = self.selections(residual)?;
                if !rows.is_empty() && !residual_refs.is_empty() {
                    for pred in &residual_refs {
                        CompiledPred::new(t, pred).refine(&mut rows);
                    }
                }
                let all_refs: Vec<&SelectionPredicate> =
                    seek_refs.iter().chain(&residual_refs).copied().collect();
                self.record_scan_feedback(node, *table, &all_refs, rows.len(), t.row_count());
                Ok(Intermediate {
                    rels: vec![*rel],
                    data: rows,
                })
            }
            Operator::HashJoin { edges } => {
                let left = self.run(&node.children[0], span)?;
                let right = self.run(&node.children[1], span)?;
                let out = self.equi_join(&left, &right, edges)?;
                self.work += self.params.hash_join(
                    left.count() as f64,
                    right.count() as f64,
                    out.count() as f64,
                );
                Ok(out)
            }
            Operator::MergeJoin { edges } => {
                let left = self.run(&node.children[0], span)?;
                let right = self.run(&node.children[1], span)?;
                let out = self.equi_join(&left, &right, edges)?;
                self.work += self.params.merge_join(
                    left.count() as f64,
                    right.count() as f64,
                    out.count() as f64,
                );
                Ok(out)
            }
            Operator::NestedLoopJoin { edges } => {
                let left = self.run(&node.children[0], span)?;
                let right = self.run(&node.children[1], span)?;
                let out = if edges.is_empty() {
                    self.cartesian(&left, &right)
                } else {
                    self.equi_join(&left, &right, edges)?
                };
                // A nested-loop join re-walks the inner input once per outer
                // row; meter it that way even though we materialize.
                self.work += self.params.nested_loop(
                    left.count() as f64,
                    self.params.seq_row * right.count() as f64,
                    out.count() as f64,
                );
                Ok(out)
            }
            Operator::IndexNLJoin {
                edges,
                inner_rel,
                inner_table,
                inner_preds,
                ..
            } => {
                let outer = self.run(&node.children[0], span)?;
                let table = self.db.try_table(*inner_table)?;
                // Outer-side and inner-side key columns per crossing edge.
                let mut outer_keys: Vec<BoundColumn> = Vec::new();
                let mut inner_ords: Vec<usize> = Vec::new();
                for &e in edges {
                    let edge = self.edge(e)?;
                    for &(lc, rc) in &edge.pairs {
                        if edge.left_rel == *inner_rel {
                            inner_ords.push(lc);
                            outer_keys.push(BoundColumn::new(edge.right_rel, rc));
                        } else {
                            inner_ords.push(rc);
                            outer_keys.push(BoundColumn::new(edge.left_rel, lc));
                        }
                    }
                }
                let inner_pred_refs = self.selections(inner_preds)?;
                // The "index": inner rows keyed by fingerprints of the joined
                // columns. Inner-side key columns resolve directly against
                // the base table (every tuple is its own row index).
                let inner_rows = table.row_count();
                let mut inner_cols: Vec<ResolvedCol<'a>> = Vec::new();
                let mut compiled_inner: Vec<CompiledPred<'a>> = Vec::new();
                if inner_rows > 0 {
                    inner_cols = inner_ords
                        .iter()
                        .map(|&c| ResolvedCol {
                            slot: 0,
                            col: table.column(c),
                        })
                        .collect();
                    compiled_inner = inner_pred_refs
                        .iter()
                        .map(|p| CompiledPred::new(table, p))
                        .collect();
                }
                let inner_key = KeySet::new(inner_cols);
                let by_key = FpTable::build(inner_rows, self.pool(), self.morsel_rows, |r| {
                    inner_key.join_fp(&[r])
                });
                let mut rels = outer.rels.clone();
                rels.push(*inner_rel);
                let outer_cols = if outer.data.is_empty() {
                    Vec::new()
                } else {
                    self.resolve_cols(&outer, &outer_keys)?
                };
                let outer_key = KeySet::new(outer_cols);
                // Probe morsels over the outer side; each morsel's matches
                // land in its own buffer, merged in morsel (= input) order.
                let parts = map_morsels(self.pool(), outer.count(), self.morsel_rows, |span| {
                    let mut data = Vec::new();
                    let mut fetched = 0usize;
                    for i in span {
                        let tup = outer.tuple(i);
                        let Some(fp) = outer_key.join_fp(tup) else {
                            continue;
                        };
                        for r in by_key.probe(fp) {
                            // Collision fallback: only exact key matches
                            // count as fetched (mirrors the reference's
                            // exact-key map).
                            if !outer_key.keys_equal(tup, &inner_key, &[r]) {
                                continue;
                            }
                            fetched += 1;
                            if compiled_inner.iter().all(|p| p.matches(r)) {
                                data.extend_from_slice(tup);
                                data.push(r);
                            }
                        }
                    }
                    (data, fetched)
                });
                let mut data = Vec::new();
                let mut fetched_total = 0usize;
                for (part, fetched) in parts {
                    data.extend_from_slice(&part);
                    fetched_total += fetched;
                }
                // Metering mirrors the optimizer's model: one index descent
                // per outer tuple plus a random access per fetched row.
                let out_count = data.len() / rels.len();
                self.work += outer.count() as f64 * self.params.index_lookup
                    + fetched_total as f64 * self.params.index_row
                    + self.params.join_output * out_count as f64;
                Ok(Intermediate { rels, data })
            }
            Operator::HashAggregate { .. } | Operator::Sort { .. } => {
                // Aggregation and final ordering are handled at the top
                // level in execute_plan; running them standalone passes the
                // input through.
                match node.children.first() {
                    Some(child) => self.run(child, span),
                    None => Err(ExecError::MalformedPlan {
                        detail: "aggregate/sort node has no input".to_string(),
                    }),
                }
            }
        }
    }

    /// The (left col, right col) pairs of the given edge ordinals oriented so
    /// the first element belongs to `left`.
    fn oriented_keys(
        &self,
        left: &Intermediate,
        edges: &[usize],
    ) -> Result<(Vec<BoundColumn>, Vec<BoundColumn>), ExecError> {
        let mut lk = Vec::new();
        let mut rk = Vec::new();
        for &e in edges {
            let edge = self.edge(e)?;
            let left_has = left.rels.contains(&edge.left_rel);
            for &(lc, rc) in &edge.pairs {
                if left_has {
                    lk.push(BoundColumn::new(edge.left_rel, lc));
                    rk.push(BoundColumn::new(edge.right_rel, rc));
                } else {
                    lk.push(BoundColumn::new(edge.right_rel, rc));
                    rk.push(BoundColumn::new(edge.left_rel, lc));
                }
            }
        }
        Ok((lk, rk))
    }

    fn equi_join(
        &self,
        left: &Intermediate,
        right: &Intermediate,
        edges: &[usize],
    ) -> Result<Intermediate, ExecError> {
        let (lk, rk) = self.oriented_keys(left, edges)?;
        // Build on the right: fingerprint → chained right tuple ordinals, in
        // input order (which is what makes the output order match the
        // reference). The build itself is morsel-parallel (see FpTable).
        let r_cols = if right.data.is_empty() {
            Vec::new()
        } else {
            self.resolve_cols(right, &rk)?
        };
        let r_key = KeySet::new(r_cols);
        let table = FpTable::build(right.count(), self.pool(), self.morsel_rows, |i| {
            r_key.join_fp(right.tuple(i))
        });
        let mut rels = left.rels.clone();
        rels.extend(&right.rels);
        let l_cols = if left.data.is_empty() {
            Vec::new()
        } else {
            self.resolve_cols(left, &lk)?
        };
        let l_key = KeySet::new(l_cols);
        // Probe morsels over the left side; per-morsel buffers concatenate
        // in morsel order, which is the serial probe order.
        let parts = map_morsels(self.pool(), left.count(), self.morsel_rows, |span| {
            let mut data = Vec::new();
            for i in span {
                let ltuple = left.tuple(i);
                let Some(fp) = l_key.join_fp(ltuple) else {
                    continue; // NULL keys never join
                };
                for ri in table.probe(fp) {
                    let rtuple = right.tuple(ri);
                    if l_key.keys_equal(ltuple, &r_key, rtuple) {
                        data.extend_from_slice(ltuple);
                        data.extend_from_slice(rtuple);
                    }
                }
            }
            data
        });
        let data = parts.concat();
        Ok(Intermediate { rels, data })
    }

    fn cartesian(&self, left: &Intermediate, right: &Intermediate) -> Intermediate {
        let mut rels = left.rels.clone();
        rels.extend(&right.rels);
        let out = left.count() * right.count();
        let mut data = Vec::with_capacity(out * rels.len());
        for l in left.tuples() {
            for r in right.tuples() {
                data.extend_from_slice(l);
                data.extend_from_slice(r);
            }
        }
        Intermediate { rels, data }
    }
}

/// One aggregation group: its materialized key and member tuple ordinals
/// (into the input intermediate), in input order.
struct Group {
    key: Vec<Value>,
    members: Vec<usize>,
}

fn agg_output(
    query: &BoundSelect,
    agg_cols: &[Option<ResolvedCol<'_>>],
    input: &Intermediate,
    group: &Group,
) -> Vec<Value> {
    let mut row: Vec<Value> = group.key.clone();
    for (agg, rc) in query.aggregates.iter().zip(agg_cols) {
        let vals: Vec<Value> = match rc {
            None => Vec::new(),
            Some(rc) => {
                let mut vals = Vec::with_capacity(group.members.len());
                for &ti in &group.members {
                    let r = rc.row(input.tuple(ti));
                    if rc.col.is_valid(r) {
                        vals.push(rc.col.get(r));
                    }
                }
                vals
            }
        };
        let out = match agg.func {
            AggFunc::Count => Value::Int(match agg.input {
                None => group.members.len() as i64,
                Some(_) => vals.len() as i64,
            }),
            AggFunc::Min => vals.iter().min().cloned().unwrap_or(Value::Null),
            AggFunc::Max => vals.iter().max().cloned().unwrap_or(Value::Null),
            AggFunc::Sum | AggFunc::Avg => {
                if vals.is_empty() {
                    Value::Null
                } else {
                    let sum: f64 = vals.iter().map(Value::numeric_key).sum();
                    if agg.func == AggFunc::Sum {
                        Value::Float(sum)
                    } else {
                        Value::Float(sum / vals.len() as f64)
                    }
                }
            }
        };
        row.push(out);
    }
    row
}

/// Execute a physical plan for `query` against `db`, returning materialized
/// output rows and the deterministic work metric. Errors if the plan tree is
/// inconsistent with the query or references a stale table.
pub fn execute_plan(
    db: &Database,
    query: &BoundSelect,
    plan: &PlanNode,
    params: &CostParams,
) -> Result<ExecOutput, ExecError> {
    execute_plan_traced(db, query, plan, params, &obsv::Tracer::disabled())
}

/// [`execute_plan`] under a tracer: the query gets an `exec.query` span with
/// one `exec.op.*` child span per plan node (actual vs estimated rows on
/// each). Rows and work are bit-identical to the untraced call.
pub fn execute_plan_traced(
    db: &Database,
    query: &BoundSelect,
    plan: &PlanNode,
    params: &CostParams,
    tracer: &obsv::Tracer,
) -> Result<ExecOutput, ExecError> {
    execute_plan_observed(
        db,
        query,
        plan,
        params,
        tracer,
        &obsv::FeedbackLog::disabled(),
    )
}

/// [`execute_plan_traced`] with an execution-feedback channel: scans with a
/// single supported predicate additionally push (predicate template,
/// est_rows, rows_out) records into `feedback`. Rows and work stay
/// bit-identical to the unobserved call — the log is write-only here.
///
/// Threading comes from the environment ([`ExecOptions::from_env`]); use
/// [`execute_plan_opts`] to pass options explicitly.
pub fn execute_plan_observed(
    db: &Database,
    query: &BoundSelect,
    plan: &PlanNode,
    params: &CostParams,
    tracer: &obsv::Tracer,
    feedback: &obsv::FeedbackLog,
) -> Result<ExecOutput, ExecError> {
    execute_plan_opts(
        db,
        query,
        plan,
        params,
        tracer,
        feedback,
        &ExecOptions::from_env(),
    )
}

/// The full entry point: [`execute_plan_observed`] with explicit
/// [`ExecOptions`]. Rows, `work` bits, span trees, and feedback streams do
/// not depend on the options — `threads`/`morsel_rows` only change how the
/// same results are computed.
pub fn execute_plan_opts(
    db: &Database,
    query: &BoundSelect,
    plan: &PlanNode,
    params: &CostParams,
    tracer: &obsv::Tracer,
    feedback: &obsv::FeedbackLog,
    opts: &ExecOptions,
) -> Result<ExecOutput, ExecError> {
    let mut span = tracer.span("exec.query");
    let out = execute_impl(db, query, plan, params, &span, feedback, opts)?;
    span.arg("rows_out", out.rows.len());
    span.arg("work", out.work);
    Ok(out)
}

fn execute_impl(
    db: &Database,
    query: &BoundSelect,
    plan: &PlanNode,
    params: &CostParams,
    span: &obsv::SpanGuard,
    feedback: &obsv::FeedbackLog,
    opts: &ExecOptions,
) -> Result<ExecOutput, ExecError> {
    let mut interp = Interp {
        db,
        query,
        params,
        work: 0.0,
        feedback,
        pool: (opts.threads > 1).then(|| ExecPool::global(opts.threads)),
        morsel_rows: opts.morsel_rows.max(1),
    };

    // Aggregation and final ordering execute at this level, not in
    // `run_node`, so the top-level Sort/HashAggregate wrappers are peeled
    // here and given spans of their own: each records its *post*-operator
    // cardinality. Running them through `run` would pass through the input
    // count, and any consumer joining estimated vs actual rows per operator
    // (the cardbench harness) would read a pre-aggregation count as the
    // aggregate's truth.
    let mut tree = plan;
    fn first_child(n: &PlanNode) -> Result<&PlanNode, ExecError> {
        n.children.first().ok_or_else(|| ExecError::MalformedPlan {
            detail: "aggregate/sort node has no input".to_string(),
        })
    }
    let mut sort_node: Option<&PlanNode> = None;
    let mut agg_node: Option<&PlanNode> = None;
    if matches!(tree.op, Operator::Sort { .. }) {
        sort_node = Some(tree);
        tree = first_child(tree)?;
    }
    if matches!(tree.op, Operator::HashAggregate { .. }) {
        agg_node = Some(tree);
        tree = first_child(tree)?;
    }
    let mut sort_span = sort_node.map(|n| span.child(op_span_name(&n.op)));
    let mut agg_span = agg_node.map(|n| {
        sort_span
            .as_ref()
            .unwrap_or(span)
            .child(op_span_name(&n.op))
    });

    let has_agg = !query.group_by.is_empty() || !query.aggregates.is_empty();
    let mut input = {
        let tree_parent = agg_span.as_ref().or(sort_span.as_ref()).unwrap_or(span);
        interp.run(tree, tree_parent)?
    };
    // Close each wrapper span with its actual output cardinality alongside
    // the optimizer's estimate, mirroring `Interp::run`. A Sort never
    // changes the cardinality of its input; an aggregate's output is its
    // group count, finalized below.
    let mut close_wrappers = |rows_out: usize| {
        if let (Some(s), Some(n)) = (agg_span.as_mut(), agg_node) {
            s.arg("rows_out", rows_out);
            s.arg("est_rows", n.est_rows);
        }
        drop(agg_span.take());
        if let (Some(s), Some(n)) = (sort_span.as_mut(), sort_node) {
            s.arg("rows_out", rows_out);
            s.arg("est_rows", n.est_rows);
        }
        drop(sort_span.take());
    };

    if has_agg {
        // Group by fingerprints of the grouping key values, with exact-key
        // verification inside each fingerprint bucket.
        let g_cols = if input.data.is_empty() {
            Vec::new()
        } else {
            interp.resolve_cols(&input, &query.group_by)?
        };
        let g_key = KeySet::new(g_cols.clone());
        let mut groups: Vec<Group> = Vec::new();
        let mut buckets: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
        for (ti, tuple) in input.tuples().enumerate() {
            let fp = g_key.group_fp(tuple);
            let bucket = buckets.entry(fp).or_default();
            let found = bucket.iter().copied().find(|&g| {
                groups[g]
                    .key
                    .iter()
                    .zip(&g_cols)
                    .all(|(k, rc)| k.as_ref() == rc.col.get_ref(rc.row(tuple)))
            });
            match found {
                Some(g) => groups[g].members.push(ti),
                None => {
                    let key: Vec<Value> =
                        g_cols.iter().map(|rc| rc.col.get(rc.row(tuple))).collect();
                    bucket.push(groups.len());
                    groups.push(Group {
                        key,
                        members: vec![ti],
                    });
                }
            }
        }
        interp.work += interp
            .params
            .hash_aggregate(input.count() as f64, groups.len() as f64);
        // Deterministic output: groups ordered by key, exactly as the
        // reference sorts its map keys.
        let mut order: Vec<usize> = (0..groups.len()).collect();
        order.sort_by(|&a, &b| groups[a].key.cmp(&groups[b].key));
        let agg_cols: Vec<Option<ResolvedCol<'_>>> = if groups.is_empty() {
            Vec::new()
        } else {
            query
                .aggregates
                .iter()
                .map(|agg| match agg.input {
                    None => Ok(None),
                    Some(col) => Ok(Some(
                        interp.resolve_cols(&input, std::slice::from_ref(&col))?[0],
                    )),
                })
                .collect::<Result<_, ExecError>>()?
        };
        let mut rows = Vec::with_capacity(order.len());
        for g in order {
            rows.push(agg_output(query, &agg_cols, &input, &groups[g]));
        }
        // ORDER BY over aggregate output: keys must be grouping columns;
        // their output position is their position in the GROUP BY list.
        if !query.order_by.is_empty() {
            interp.work += interp.params.sort(rows.len() as f64);
            let positions: Vec<(usize, bool)> = query
                .order_by
                .iter()
                .filter_map(|&(col, desc)| {
                    query
                        .group_by
                        .iter()
                        .position(|&g| g == col)
                        .map(|p| (p, desc))
                })
                .collect();
            rows.sort_by(|a, b| {
                for &(p, desc) in &positions {
                    let ord = a[p].total_cmp(&b[p]);
                    if ord != std::cmp::Ordering::Equal {
                        return if desc { ord.reverse() } else { ord };
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        close_wrappers(rows.len());
        return Ok(ExecOutput {
            rows,
            work: interp.work,
        });
    }

    // ORDER BY on plain queries sorts the tuples before projection (the sort
    // key need not be projected). Sorting tuple ordinals with a comparator
    // over resolved columns skips the reference's per-tuple key
    // materialization; the stable sort keeps tie order identical.
    if !query.order_by.is_empty() {
        interp.work += interp.params.sort(input.count() as f64);
        if !input.data.is_empty() {
            let order_cols: Vec<BoundColumn> = query.order_by.iter().map(|&(c, _)| c).collect();
            let o_cols = interp.resolve_cols(&input, &order_cols)?;
            let descs: Vec<bool> = query.order_by.iter().map(|&(_, d)| d).collect();
            let mut order: Vec<usize> = (0..input.count()).collect();
            order.sort_by(|&a, &b| {
                let (ta, tb) = (input.tuple(a), input.tuple(b));
                for (rc, &desc) in o_cols.iter().zip(&descs) {
                    let ord = rc
                        .col
                        .get_ref(rc.row(ta))
                        .total_cmp(&rc.col.get_ref(rc.row(tb)));
                    if ord != std::cmp::Ordering::Equal {
                        return if desc { ord.reverse() } else { ord };
                    }
                }
                std::cmp::Ordering::Equal
            });
            let mut sorted = Vec::with_capacity(input.data.len());
            for i in order {
                sorted.extend_from_slice(input.tuple(i));
            }
            input.data = sorted;
        }
    }

    close_wrappers(input.count());

    // Plain projection, materialized column-wise: one pass per output
    // column over the surviving tuples.
    let cols: Vec<BoundColumn> = match &query.projection {
        Projection::Columns(cols) => cols.clone(),
        Projection::Star => {
            let mut all = Vec::new();
            for (rel, (tid, _)) in query.relations.iter().enumerate() {
                for c in 0..db.try_table(*tid)?.schema().len() {
                    all.push(BoundColumn::new(rel, c));
                }
            }
            all
        }
    };
    let rows: Vec<Vec<Value>> = if input.data.is_empty() {
        (0..input.count())
            .map(|_| Vec::with_capacity(cols.len()))
            .collect()
    } else {
        let p_cols = interp.resolve_cols(&input, &cols)?;
        // Morsel-parallel materialization: each morsel fills its own rows
        // column-wise (typed loops via `project_column`), and the slots
        // concatenate in morsel order — the serial row order.
        let parts = map_morsels(interp.pool(), input.count(), interp.morsel_rows, |span| {
            let mut part: Vec<Vec<Value>> = (0..span.len())
                .map(|_| Vec::with_capacity(cols.len()))
                .collect();
            for rc in &p_cols {
                project_column(rc, &input, span.clone(), &mut part);
            }
            part
        });
        // Move the morsel outputs together (`concat` would clone each row).
        parts.into_iter().flatten().collect()
    };
    Ok(ExecOutput {
        rows,
        work: interp.work,
    })
}

/// Append one projected column's values to the per-row output vectors for
/// the tuples in `span`, with the column's type dispatch hoisted out of the
/// row loop so each iteration is a slot load, a validity load, and a typed
/// `Value` push.
fn project_column(
    rc: &ResolvedCol<'_>,
    input: &Intermediate,
    span: Range<usize>,
    part: &mut [Vec<Value>],
) {
    let arity = input.arity().max(1);
    let tuples = input.data[span.start * arity..span.end * arity].chunks_exact(arity);
    let valid = rc.col.validity();
    let slot = rc.slot;
    match rc.col.data_type() {
        DataType::Int => {
            if let Some(xs) = rc.col.int_slice() {
                for (row, t) in part.iter_mut().zip(tuples) {
                    let r = t[slot];
                    row.push(if valid[r] {
                        Value::Int(xs[r])
                    } else {
                        Value::Null
                    });
                }
                return;
            }
        }
        DataType::Date => {
            if let Some(xs) = rc.col.int_slice() {
                for (row, t) in part.iter_mut().zip(tuples) {
                    let r = t[slot];
                    row.push(if valid[r] {
                        Value::Date(xs[r] as i32)
                    } else {
                        Value::Null
                    });
                }
                return;
            }
        }
        DataType::Float => {
            if let Some(xs) = rc.col.float_slice() {
                for (row, t) in part.iter_mut().zip(tuples) {
                    let r = t[slot];
                    row.push(if valid[r] {
                        Value::Float(xs[r])
                    } else {
                        Value::Null
                    });
                }
                return;
            }
        }
        DataType::Str => {
            if let Some(xs) = rc.col.str_slice() {
                for (row, t) in part.iter_mut().zip(tuples) {
                    let r = t[slot];
                    row.push(if valid[r] {
                        Value::Str(xs[r].clone())
                    } else {
                        Value::Null
                    });
                }
                return;
            }
        }
    }
    // Unreachable for the four stored types; kept so the function is total.
    let tuples = input.data[span.start * arity..span.end * arity].chunks_exact(arity);
    for (row, t) in part.iter_mut().zip(tuples) {
        row.push(rc.col.get(t[slot]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::execute_plan_reference;
    use optimizer::{OptimizeOptions, Optimizer};
    use query::{bind_statement, parse_statement, BoundStatement};
    use stats::StatsCatalog;
    use storage::{ColumnDef, DataType, Schema};

    fn setup() -> Database {
        let mut db = Database::new();
        let emp = db
            .create_table(
                "emp",
                Schema::new(vec![
                    ColumnDef::new("empid", DataType::Int),
                    ColumnDef::new("deptid", DataType::Int),
                    ColumnDef::new("salary", DataType::Float),
                ]),
            )
            .unwrap();
        let dept = db
            .create_table(
                "dept",
                Schema::new(vec![
                    ColumnDef::new("deptid", DataType::Int),
                    ColumnDef::new("dname", DataType::Str),
                ]),
            )
            .unwrap();
        for i in 0..100i64 {
            db.table_mut(emp)
                .insert(vec![
                    Value::Int(i),
                    Value::Int(i % 5),
                    Value::Float((i * 10) as f64),
                ])
                .unwrap();
        }
        for d in 0..5i64 {
            db.table_mut(dept)
                .insert(vec![Value::Int(d), Value::Str(format!("d{d}"))])
                .unwrap();
        }
        db
    }

    fn bind(db: &Database, sql: &str) -> BoundSelect {
        match bind_statement(db, &parse_statement(sql).unwrap()).unwrap() {
            BoundStatement::Select(q) => q,
            _ => panic!(),
        }
    }

    fn run(db: &Database, sql: &str) -> ExecOutput {
        let q = bind(db, sql);
        let cat = StatsCatalog::new();
        let opt = Optimizer::default();
        let r = opt
            .optimize(db, &q, cat.full_view(), &OptimizeOptions::default())
            .unwrap();
        let out = execute_plan(db, &q, &r.plan, &opt.params).unwrap();
        // Every test doubles as a differential check against the retained
        // row-at-a-time reference.
        let ref_out = execute_plan_reference(db, &q, &r.plan, &opt.params).unwrap();
        assert_eq!(out.rows, ref_out.rows, "columnar rows diverge on {sql}");
        assert_eq!(
            out.work.to_bits(),
            ref_out.work.to_bits(),
            "columnar work diverges on {sql}"
        );
        out
    }

    #[test]
    fn filtered_scan() {
        let db = setup();
        let out = run(&db, "SELECT * FROM emp WHERE empid < 10");
        assert_eq!(out.row_count(), 10);
        assert!(out.work > 0.0);
    }

    #[test]
    fn traced_execution_is_bit_identical_and_well_formed() {
        let db = setup();
        let q = bind(&db, "SELECT * FROM emp e, dept d WHERE e.deptid = d.deptid");
        let cat = StatsCatalog::new();
        let opt = Optimizer::default();
        let r = opt
            .optimize(&db, &q, cat.full_view(), &OptimizeOptions::default())
            .unwrap();
        let plain = execute_plan(&db, &q, &r.plan, &opt.params).unwrap();
        let tracer = obsv::Tracer::enabled();
        let traced = execute_plan_traced(&db, &q, &r.plan, &opt.params, &tracer).unwrap();
        assert_eq!(plain.rows, traced.rows);
        assert_eq!(plain.work.to_bits(), traced.work.to_bits());
        let events = tracer.flush();
        assert!(obsv::trace::validate(&events).is_empty());
        // One span per plan node plus the exec.query root.
        let begins: Vec<&str> = events
            .iter()
            .filter(|e| e.kind == obsv::EventKind::Begin)
            .map(|e| e.name)
            .collect();
        assert_eq!(begins.len(), r.plan.nodes().len() + 1);
        assert_eq!(begins[0], "exec.query");
        assert!(begins.iter().any(|n| n.starts_with("exec.op.")));
        // The join span reports the actual output cardinality.
        let join_end = events
            .iter()
            .find(|e| e.kind == obsv::EventKind::End && e.name.contains("Join"))
            .expect("a join span");
        assert!(join_end
            .args
            .iter()
            .any(|(k, v)| *k == "rows_out" && *v == obsv::ArgValue::Int(100)));
    }

    #[test]
    fn aggregate_and_sort_spans_report_actual_output_counts() {
        // Regression: the top-level HashAggregate/Sort wrappers execute in
        // `execute_impl`, and their spans used to pass through the *input*
        // cardinality. Per-operator truth capture needs the group count.
        let db = setup();
        let q = bind(
            &db,
            "SELECT deptid, COUNT(*) FROM emp GROUP BY deptid ORDER BY deptid DESC",
        );
        let cat = StatsCatalog::new();
        let opt = Optimizer::default();
        let r = opt
            .optimize(&db, &q, cat.full_view(), &OptimizeOptions::default())
            .unwrap();
        let tracer = obsv::Tracer::enabled();
        let out = execute_plan_traced(&db, &q, &r.plan, &opt.params, &tracer).unwrap();
        assert_eq!(out.row_count(), 5);
        let events = tracer.flush();
        assert!(obsv::trace::validate(&events).is_empty());
        let begins: Vec<&str> = events
            .iter()
            .filter(|e| e.kind == obsv::EventKind::Begin)
            .map(|e| e.name)
            .collect();
        assert_eq!(begins.len(), r.plan.nodes().len() + 1);
        assert_eq!(
            &begins[..3],
            &["exec.query", "exec.op.Sort", "exec.op.HashAggregate"],
            "wrapper spans keep the plan's pre-order"
        );
        for name in ["exec.op.HashAggregate", "exec.op.Sort"] {
            let end = events
                .iter()
                .find(|e| e.kind == obsv::EventKind::End && e.name == name)
                .expect("wrapper span present");
            assert!(
                end.args
                    .iter()
                    .any(|(k, v)| *k == "rows_out" && *v == obsv::ArgValue::Int(5)),
                "{name} must report the 5 groups, not the 100 input rows: {:?}",
                end.args
            );
        }
    }

    #[test]
    fn wrapper_span_chains_differential_against_reference() {
        // Audit of the wrapper-peeling path: for every top-level wrapper
        // chain the planner can emit (Sort over HashAggregate, each alone,
        // neither), the traced execution must (a) stay bit-identical to the
        // row-at-a-time reference in rows and work, and (b) stamp each
        // wrapper span with its *post*-operator cardinality — the final
        // output count, never the pre-aggregation input count.
        let db = setup();
        let cases: [(&str, bool, bool); 4] = [
            (
                "SELECT deptid, COUNT(*) FROM emp GROUP BY deptid",
                false,
                true,
            ),
            (
                "SELECT deptid, COUNT(*) FROM emp WHERE empid < 37 \
                 GROUP BY deptid ORDER BY deptid DESC",
                true,
                true,
            ),
            (
                "SELECT * FROM emp WHERE deptid = 2 ORDER BY salary",
                true,
                false,
            ),
            ("SELECT * FROM emp WHERE empid < 12", false, false),
        ];
        let cat = StatsCatalog::new();
        let opt = Optimizer::default();
        for (sql, want_sort, want_agg) in cases {
            let q = bind(&db, sql);
            let r = opt
                .optimize(&db, &q, cat.full_view(), &OptimizeOptions::default())
                .unwrap();
            let reference = execute_plan_reference(&db, &q, &r.plan, &opt.params).unwrap();
            let tracer = obsv::Tracer::enabled();
            let traced = execute_plan_traced(&db, &q, &r.plan, &opt.params, &tracer).unwrap();
            assert_eq!(traced.rows, reference.rows, "rows diverge on {sql}");
            assert_eq!(
                traced.work.to_bits(),
                reference.work.to_bits(),
                "work diverges on {sql}"
            );
            let events = tracer.flush();
            assert!(obsv::trace::validate(&events).is_empty(), "{sql}");
            for (name, wanted) in [
                ("exec.op.Sort", want_sort),
                ("exec.op.HashAggregate", want_agg),
            ] {
                let end = events
                    .iter()
                    .find(|e| e.kind == obsv::EventKind::End && e.name == name);
                assert_eq!(end.is_some(), wanted, "{sql}: span {name}");
                if let Some(end) = end {
                    let expected = obsv::ArgValue::Int(traced.row_count() as i64);
                    assert!(
                        end.args
                            .iter()
                            .any(|(k, v)| *k == "rows_out" && *v == expected),
                        "{sql}: {name} must report the post-operator count \
                         {}: {:?}",
                        traced.row_count(),
                        end.args
                    );
                }
            }
        }
    }

    #[test]
    fn feedback_log_captures_single_predicate_scans() {
        let db = setup();
        let opt = Optimizer::default();
        let cat = StatsCatalog::new();
        let run_observed = |sql: &str, log: &obsv::FeedbackLog| {
            let q = bind(&db, sql);
            let r = opt
                .optimize(&db, &q, cat.full_view(), &OptimizeOptions::default())
                .unwrap();
            let plain = execute_plan(&db, &q, &r.plan, &opt.params).unwrap();
            let observed = execute_plan_observed(
                &db,
                &q,
                &r.plan,
                &opt.params,
                &obsv::Tracer::disabled(),
                log,
            )
            .unwrap();
            // The write-only channel may never perturb execution.
            assert_eq!(plain.rows, observed.rows);
            assert_eq!(plain.work.to_bits(), observed.work.to_bits());
            observed
        };

        let log = obsv::FeedbackLog::enabled();
        run_observed("SELECT * FROM emp WHERE empid < 10", &log);
        let records = log.drain();
        assert_eq!(records.len(), 1, "one single-predicate scan, one record");
        let r = records[0];
        assert_eq!(r.column, 0);
        assert_eq!(r.rows_out, 10.0);
        assert_eq!(r.input_rows, 100.0);
        assert_eq!(r.lo, f64::NEG_INFINITY);
        assert_eq!(r.hi, 10.0);
        assert!(r.est_rows > 0.0);

        // Conjunctions and string literals are not clean templates: skipped.
        run_observed("SELECT * FROM emp WHERE empid < 10 AND deptid = 3", &log);
        run_observed("SELECT * FROM dept WHERE dname = 'd2'", &log);
        assert!(log.is_empty(), "unsupported scans must record nothing");

        // A disabled log costs one branch and stays empty.
        let disabled = obsv::FeedbackLog::disabled();
        run_observed("SELECT * FROM emp WHERE empid = 7", &disabled);
        assert!(disabled.is_empty());
    }

    #[test]
    fn equi_join_counts() {
        let db = setup();
        let out = run(&db, "SELECT * FROM emp e, dept d WHERE e.deptid = d.deptid");
        assert_eq!(out.row_count(), 100, "every emp matches exactly one dept");
        // Projection covers both tables' columns.
        assert_eq!(out.rows[0].len(), 5);
    }

    #[test]
    fn join_with_filter() {
        let db = setup();
        let out = run(
            &db,
            "SELECT e.empid, d.dname FROM emp e, dept d \
             WHERE e.deptid = d.deptid AND e.salary >= 900.0",
        );
        assert_eq!(out.row_count(), 10);
        assert_eq!(out.rows[0].len(), 2);
    }

    #[test]
    fn group_by_with_aggregates() {
        let db = setup();
        let out = run(
            &db,
            "SELECT deptid, COUNT(*), SUM(salary), MIN(empid), MAX(empid), AVG(salary) \
             FROM emp GROUP BY deptid",
        );
        assert_eq!(out.row_count(), 5);
        // deptid = 0 group: empids 0,5,...,95 → count 20
        let g0 = out.rows.iter().find(|r| r[0] == Value::Int(0)).unwrap();
        assert_eq!(g0[1], Value::Int(20));
        assert_eq!(g0[3], Value::Int(0));
        assert_eq!(g0[4], Value::Int(95));
    }

    #[test]
    fn scalar_aggregate_without_group_by() {
        let db = setup();
        let out = run(&db, "SELECT COUNT(*) FROM emp WHERE deptid = 3");
        assert_eq!(out.row_count(), 1);
        assert_eq!(out.rows[0][0], Value::Int(20));
    }

    #[test]
    fn cartesian_product() {
        let db = setup();
        let out = run(&db, "SELECT * FROM emp, dept");
        assert_eq!(out.row_count(), 500);
    }

    #[test]
    fn empty_result() {
        let db = setup();
        let out = run(&db, "SELECT * FROM emp WHERE empid = -1");
        assert_eq!(out.row_count(), 0);
    }

    #[test]
    fn between_predicate_execution() {
        let db = setup();
        let out = run(&db, "SELECT * FROM emp WHERE empid BETWEEN 10 AND 19");
        assert_eq!(out.row_count(), 10);
    }

    #[test]
    fn order_by_sorts_output() {
        let db = setup();
        let out = run(
            &db,
            "SELECT empid FROM emp WHERE empid < 5 ORDER BY empid DESC",
        );
        let ids: Vec<Value> = out.rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(
            ids,
            vec![
                Value::Int(4),
                Value::Int(3),
                Value::Int(2),
                Value::Int(1),
                Value::Int(0)
            ]
        );
    }

    #[test]
    fn order_by_unprojected_column() {
        // Sorting by a column that is not in the projection.
        let db = setup();
        let out = run(&db, "SELECT dname FROM dept ORDER BY deptid DESC");
        assert_eq!(out.rows[0][0], Value::Str("d4".into()));
        assert_eq!(out.rows[4][0], Value::Str("d0".into()));
    }

    #[test]
    fn order_by_on_aggregate_output() {
        let db = setup();
        let out = run(
            &db,
            "SELECT deptid, COUNT(*) FROM emp GROUP BY deptid ORDER BY deptid DESC",
        );
        assert_eq!(out.rows[0][0], Value::Int(4));
        assert_eq!(out.rows[4][0], Value::Int(0));
    }

    #[test]
    fn work_is_deterministic() {
        let db = setup();
        let a = run(&db, "SELECT * FROM emp e, dept d WHERE e.deptid = d.deptid");
        let b = run(&db, "SELECT * FROM emp e, dept d WHERE e.deptid = d.deptid");
        assert_eq!(a.work, b.work);
    }

    #[test]
    fn null_join_keys_never_match() {
        let mut db = Database::new();
        let a = db
            .create_table(
                "a",
                Schema::new(vec![ColumnDef::new("k", DataType::Int).nullable()]),
            )
            .unwrap();
        let b = db
            .create_table(
                "b",
                Schema::new(vec![ColumnDef::new("k", DataType::Int).nullable()]),
            )
            .unwrap();
        for v in [Value::Int(1), Value::Null, Value::Int(2)] {
            db.table_mut(a).insert(vec![v.clone()]).unwrap();
            db.table_mut(b).insert(vec![v]).unwrap();
        }
        let out = run(&db, "SELECT * FROM a, b WHERE a.k = b.k");
        assert_eq!(out.row_count(), 2, "NULL keys must not join");
    }

    #[test]
    fn null_group_keys_form_their_own_group() {
        let mut db = Database::new();
        let t = db
            .create_table(
                "t",
                Schema::new(vec![
                    ColumnDef::new("g", DataType::Int).nullable(),
                    ColumnDef::new("v", DataType::Int),
                ]),
            )
            .unwrap();
        for (g, v) in [
            (Value::Int(1), 10),
            (Value::Null, 20),
            (Value::Int(1), 30),
            (Value::Null, 40),
        ] {
            db.table_mut(t).insert(vec![g, Value::Int(v)]).unwrap();
        }
        let out = run(&db, "SELECT g, COUNT(*) FROM t GROUP BY g");
        assert_eq!(out.row_count(), 2);
        // NULL sorts first.
        assert_eq!(out.rows[0][0], Value::Null);
        assert_eq!(out.rows[0][1], Value::Int(2));
    }

    #[test]
    fn string_join_keys_match_exactly() {
        let db = setup();
        let out = run(
            &db,
            "SELECT e.empid FROM emp e, dept d WHERE e.deptid = d.deptid AND d.dname = 'd2'",
        );
        assert_eq!(out.row_count(), 20);
    }

    #[test]
    fn thread_count_never_changes_results() {
        // The determinism contract in one test: rows and work bits at
        // threads 2/4/8 (with a morsel size small enough to split the
        // 100-row inputs) equal the serial engine and the reference.
        let db = setup();
        let cat = StatsCatalog::new();
        let opt = Optimizer::default();
        for sql in [
            "SELECT * FROM emp WHERE empid < 10",
            "SELECT * FROM emp e, dept d WHERE e.deptid = d.deptid",
            "SELECT deptid, COUNT(*), SUM(salary) FROM emp GROUP BY deptid ORDER BY deptid",
            "SELECT * FROM emp WHERE salary >= 250.0 ORDER BY empid DESC",
        ] {
            let q = bind(&db, sql);
            let r = opt
                .optimize(&db, &q, cat.full_view(), &OptimizeOptions::default())
                .unwrap();
            let reference = execute_plan_reference(&db, &q, &r.plan, &opt.params).unwrap();
            for threads in [1usize, 2, 4, 8] {
                let opts = ExecOptions {
                    threads,
                    morsel_rows: 16,
                };
                let out = execute_plan_opts(
                    &db,
                    &q,
                    &r.plan,
                    &opt.params,
                    &obsv::Tracer::disabled(),
                    &obsv::FeedbackLog::disabled(),
                    &opts,
                )
                .unwrap();
                assert_eq!(out.rows, reference.rows, "{sql} at {threads} threads");
                assert_eq!(
                    out.work.to_bits(),
                    reference.work.to_bits(),
                    "{sql} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn inconsistent_plan_reports_missing_relation() {
        // A hand-built plan whose scan produces relation ordinal 1 while the
        // query's projection reads relation 0: the executor must name the
        // missing relation instead of panicking.
        let db = setup();
        let q = bind(&db, "SELECT * FROM emp");
        let t = db.table_id("emp").unwrap();
        let plan = PlanNode::leaf(
            Operator::SeqScan {
                rel: 1,
                table: t,
                preds: vec![],
            },
            100.0,
            100.0,
        );
        let err = execute_plan(&db, &q, &plan, &Optimizer::default().params).unwrap_err();
        assert_eq!(err, ExecError::MissingRelation { relation: 0 });
        assert!(err.to_string().contains("relation #0"), "{err}");
    }

    #[test]
    fn out_of_range_predicate_is_malformed_plan() {
        let db = setup();
        let q = bind(&db, "SELECT * FROM emp");
        let t = db.table_id("emp").unwrap();
        let plan = PlanNode::leaf(
            Operator::SeqScan {
                rel: 0,
                table: t,
                preds: vec![9],
            },
            100.0,
            100.0,
        );
        let err = execute_plan(&db, &q, &plan, &Optimizer::default().params).unwrap_err();
        assert!(matches!(err, ExecError::MalformedPlan { .. }), "{err:?}");
    }
}
