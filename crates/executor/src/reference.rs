//! The retained row-at-a-time reference interpreter.
//!
//! This is the original plan interpreter, kept verbatim after the columnar
//! batch engine in [`crate::exec`] replaced it on the hot path. It exists for
//! two reasons:
//!
//! 1. **Differential testing.** The columnar engine must be *bit-identical*
//!    to this implementation — same `ExecOutput.rows`, same `work` — and
//!    `tests/columnar_equivalence.rs` proves it by running both on random
//!    plans and databases.
//! 2. **Benchmarking.** `exp_perfbase` measures the columnar engine's speedup
//!    against this baseline live, so `BENCH_exec.json` always reports pre-
//!    vs post-tentpole numbers from the same machine and build.
//!
//! Its per-row costs are exactly the ones the columnar engine removes: every
//! value access re-resolves relation → table, and every join/group key is a
//! freshly materialized `Vec<Value>` (with a `String` clone per `Str`
//! column) used as a `HashMap` key.

use crate::error::ExecError;
use crate::exec::ExecOutput;
use crate::predicate::{filter_table, row_matches};
use optimizer::{CostParams, Operator, PlanNode};
use query::{AggFunc, BoundColumn, BoundSelect, Projection, SelectionPredicate};
use std::collections::HashMap;
use storage::{Database, Value};

/// An intermediate result: which relation ordinals are present, plus one
/// base-table row index per present relation for every tuple.
struct Intermediate {
    rels: Vec<usize>,
    tuples: Vec<Vec<usize>>,
}

impl Intermediate {
    fn slot_of(&self, rel: usize) -> Option<usize> {
        self.rels.iter().position(|&r| r == rel)
    }
}

struct Interp<'a> {
    db: &'a Database,
    query: &'a BoundSelect,
    params: &'a CostParams,
    work: f64,
}

impl<'a> Interp<'a> {
    fn value_of(
        &self,
        inter: &Intermediate,
        tuple: &[usize],
        col: BoundColumn,
    ) -> Result<Value, ExecError> {
        let missing = ExecError::MissingRelation {
            relation: col.relation,
        };
        let slot = inter.slot_of(col.relation).ok_or_else(|| missing.clone())?;
        let &(tid, _) = self.query.relations.get(col.relation).ok_or(missing)?;
        let table = self.db.try_table(tid)?;
        Ok(table.value(tuple[slot], col.column))
    }

    /// The query's selection predicates at the given plan-node ordinals, or
    /// `MalformedPlan` if an ordinal is out of range.
    fn selections(&self, idxs: &[usize]) -> Result<Vec<&'a SelectionPredicate>, ExecError> {
        idxs.iter()
            .map(|&i| {
                self.query
                    .selections
                    .get(i)
                    .ok_or_else(|| ExecError::MalformedPlan {
                        detail: format!(
                            "plan references selection predicate #{i}, but the query \
                             defines only {}",
                            self.query.selections.len()
                        ),
                    })
            })
            .collect()
    }

    fn edge(&self, e: usize) -> Result<&'a query::JoinEdge, ExecError> {
        self.query
            .join_edges
            .get(e)
            .ok_or_else(|| ExecError::MalformedPlan {
                detail: format!(
                    "plan references join edge #{e}, but the query defines only {}",
                    self.query.join_edges.len()
                ),
            })
    }

    fn run(&mut self, node: &PlanNode) -> Result<Intermediate, ExecError> {
        match &node.op {
            Operator::SeqScan { rel, table, preds } => {
                let t = self.db.try_table(*table)?;
                self.work += self.params.seq_scan(t.row_count() as f64);
                let pred_refs = self.selections(preds)?;
                let rows = filter_table(t, &pred_refs);
                Ok(Intermediate {
                    rels: vec![*rel],
                    tuples: rows.into_iter().map(|r| vec![r]).collect(),
                })
            }
            Operator::IndexScan {
                rel,
                table,
                seek_preds,
                residual,
                ..
            } => {
                let t = self.db.try_table(*table)?;
                // Rows reachable through the index seek.
                let seek_refs = self.selections(seek_preds)?;
                let seek_rows = filter_table(t, &seek_refs);
                self.work += self
                    .params
                    .index_scan(t.row_count() as f64, seek_rows.len() as f64);
                let residual_refs = self.selections(residual)?;
                let rows: Vec<usize> = seek_rows
                    .into_iter()
                    .filter(|&r| residual_refs.iter().all(|p| row_matches(t, r, p)))
                    .collect();
                Ok(Intermediate {
                    rels: vec![*rel],
                    tuples: rows.into_iter().map(|r| vec![r]).collect(),
                })
            }
            Operator::HashJoin { edges } => {
                let left = self.run(&node.children[0])?;
                let right = self.run(&node.children[1])?;
                let out = self.equi_join(&left, &right, edges)?;
                self.work += self.params.hash_join(
                    left.tuples.len() as f64,
                    right.tuples.len() as f64,
                    out.tuples.len() as f64,
                );
                Ok(out)
            }
            Operator::MergeJoin { edges } => {
                let left = self.run(&node.children[0])?;
                let right = self.run(&node.children[1])?;
                let out = self.equi_join(&left, &right, edges)?;
                self.work += self.params.merge_join(
                    left.tuples.len() as f64,
                    right.tuples.len() as f64,
                    out.tuples.len() as f64,
                );
                Ok(out)
            }
            Operator::NestedLoopJoin { edges } => {
                let left = self.run(&node.children[0])?;
                let right = self.run(&node.children[1])?;
                let out = if edges.is_empty() {
                    self.cartesian(&left, &right)
                } else {
                    self.equi_join(&left, &right, edges)?
                };
                // A nested-loop join re-walks the inner input once per outer
                // row; meter it that way even though we materialize.
                self.work += self.params.nested_loop(
                    left.tuples.len() as f64,
                    self.params.seq_row * right.tuples.len() as f64,
                    out.tuples.len() as f64,
                );
                Ok(out)
            }
            Operator::IndexNLJoin {
                edges,
                inner_rel,
                inner_table,
                inner_preds,
                ..
            } => {
                let outer = self.run(&node.children[0])?;
                let table = self.db.try_table(*inner_table)?;
                // Outer-side and inner-side key columns per crossing edge.
                let mut outer_keys: Vec<BoundColumn> = Vec::new();
                let mut inner_cols: Vec<usize> = Vec::new();
                for &e in edges {
                    let edge = self.edge(e)?;
                    for &(lc, rc) in &edge.pairs {
                        if edge.left_rel == *inner_rel {
                            inner_cols.push(lc);
                            outer_keys.push(BoundColumn::new(edge.right_rel, rc));
                        } else {
                            inner_cols.push(rc);
                            outer_keys.push(BoundColumn::new(edge.left_rel, lc));
                        }
                    }
                }
                let inner_pred_refs = self.selections(inner_preds)?;
                // The "index": inner rows keyed by the joined columns.
                let mut by_key: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
                for r in 0..table.row_count() {
                    let key: Vec<Value> = inner_cols.iter().map(|&c| table.value(r, c)).collect();
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    by_key.entry(key).or_default().push(r);
                }
                let mut rels = outer.rels.clone();
                rels.push(*inner_rel);
                let mut tuples = Vec::new();
                let mut fetched_total = 0usize;
                for tup in &outer.tuples {
                    let mut key = Vec::with_capacity(outer_keys.len());
                    for &c in &outer_keys {
                        key.push(self.value_of(&outer, tup, c)?);
                    }
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    if let Some(matches) = by_key.get(&key) {
                        fetched_total += matches.len();
                        for &r in matches {
                            if inner_pred_refs.iter().all(|p| row_matches(table, r, p)) {
                                let mut t = tup.clone();
                                t.push(r);
                                tuples.push(t);
                            }
                        }
                    }
                }
                // Metering mirrors the optimizer's model: one index descent
                // per outer tuple plus a random access per fetched row.
                self.work += outer.tuples.len() as f64 * self.params.index_lookup
                    + fetched_total as f64 * self.params.index_row
                    + self.params.join_output * tuples.len() as f64;
                Ok(Intermediate { rels, tuples })
            }
            Operator::HashAggregate { .. } | Operator::Sort { .. } => {
                // Aggregation and final ordering are handled at the top
                // level in execute_plan; running them standalone passes the
                // input through.
                match node.children.first() {
                    Some(child) => self.run(child),
                    None => Err(ExecError::MalformedPlan {
                        detail: "aggregate/sort node has no input".to_string(),
                    }),
                }
            }
        }
    }

    /// The (left col, right col) pairs of the given edge ordinals oriented so
    /// the first element belongs to `left`.
    fn oriented_keys(
        &self,
        left: &Intermediate,
        edges: &[usize],
    ) -> Result<(Vec<BoundColumn>, Vec<BoundColumn>), ExecError> {
        let mut lk = Vec::new();
        let mut rk = Vec::new();
        for &e in edges {
            let edge = self.edge(e)?;
            let left_has = left.rels.contains(&edge.left_rel);
            for &(lc, rc) in &edge.pairs {
                if left_has {
                    lk.push(BoundColumn::new(edge.left_rel, lc));
                    rk.push(BoundColumn::new(edge.right_rel, rc));
                } else {
                    lk.push(BoundColumn::new(edge.right_rel, rc));
                    rk.push(BoundColumn::new(edge.left_rel, lc));
                }
            }
        }
        Ok((lk, rk))
    }

    fn equi_join(
        &self,
        left: &Intermediate,
        right: &Intermediate,
        edges: &[usize],
    ) -> Result<Intermediate, ExecError> {
        let (lk, rk) = self.oriented_keys(left, edges)?;
        // Build on the right.
        let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (i, tuple) in right.tuples.iter().enumerate() {
            let mut key = Vec::with_capacity(rk.len());
            for &c in &rk {
                key.push(self.value_of(right, tuple, c)?);
            }
            if key.iter().any(Value::is_null) {
                continue; // NULL keys never join
            }
            table.entry(key).or_default().push(i);
        }
        let mut rels = left.rels.clone();
        rels.extend(&right.rels);
        let mut tuples = Vec::new();
        for ltuple in &left.tuples {
            let mut key = Vec::with_capacity(lk.len());
            for &c in &lk {
                key.push(self.value_of(left, ltuple, c)?);
            }
            if key.iter().any(Value::is_null) {
                continue;
            }
            if let Some(matches) = table.get(&key) {
                for &ri in matches {
                    let mut t = ltuple.clone();
                    t.extend(&right.tuples[ri]);
                    tuples.push(t);
                }
            }
        }
        Ok(Intermediate { rels, tuples })
    }

    fn cartesian(&self, left: &Intermediate, right: &Intermediate) -> Intermediate {
        let mut rels = left.rels.clone();
        rels.extend(&right.rels);
        let mut tuples = Vec::with_capacity(left.tuples.len() * right.tuples.len());
        for l in &left.tuples {
            for r in &right.tuples {
                let mut t = l.clone();
                t.extend(r);
                tuples.push(t);
            }
        }
        Intermediate { rels, tuples }
    }
}

fn agg_output(
    interp: &Interp<'_>,
    inter: &Intermediate,
    query: &BoundSelect,
    group_tuples: &[&Vec<usize>],
    key: &[Value],
) -> Result<Vec<Value>, ExecError> {
    let mut row: Vec<Value> = key.to_vec();
    for agg in &query.aggregates {
        let vals: Vec<Value> = match agg.input {
            None => Vec::new(),
            Some(col) => {
                let mut vals = Vec::with_capacity(group_tuples.len());
                for t in group_tuples {
                    let v = interp.value_of(inter, t, col)?;
                    if !v.is_null() {
                        vals.push(v);
                    }
                }
                vals
            }
        };
        let out = match agg.func {
            AggFunc::Count => Value::Int(match agg.input {
                None => group_tuples.len() as i64,
                Some(_) => vals.len() as i64,
            }),
            AggFunc::Min => vals.iter().min().cloned().unwrap_or(Value::Null),
            AggFunc::Max => vals.iter().max().cloned().unwrap_or(Value::Null),
            AggFunc::Sum | AggFunc::Avg => {
                if vals.is_empty() {
                    Value::Null
                } else {
                    let sum: f64 = vals.iter().map(Value::numeric_key).sum();
                    if agg.func == AggFunc::Sum {
                        Value::Float(sum)
                    } else {
                        Value::Float(sum / vals.len() as f64)
                    }
                }
            }
        };
        row.push(out);
    }
    Ok(row)
}

/// Execute a physical plan with the row-at-a-time reference interpreter.
///
/// Semantically identical to [`crate::exec::execute_plan`] — bit-identical
/// rows and work — just slower. See the module docs for why it is retained.
pub fn execute_plan_reference(
    db: &Database,
    query: &BoundSelect,
    plan: &PlanNode,
    params: &CostParams,
) -> Result<ExecOutput, ExecError> {
    let mut interp = Interp {
        db,
        query,
        params,
        work: 0.0,
    };

    let has_agg = !query.group_by.is_empty() || !query.aggregates.is_empty();
    let mut input = interp.run(plan)?;

    if has_agg {
        // Group by the grouping key values.
        let mut groups: HashMap<Vec<Value>, Vec<&Vec<usize>>> = HashMap::new();
        for tuple in &input.tuples {
            let mut key = Vec::with_capacity(query.group_by.len());
            for &g in &query.group_by {
                key.push(interp.value_of(&input, tuple, g)?);
            }
            groups.entry(key).or_default().push(tuple);
        }
        interp.work += interp
            .params
            .hash_aggregate(input.tuples.len() as f64, groups.len() as f64);
        let mut keys: Vec<&Vec<Value>> = groups.keys().collect();
        keys.sort();
        let mut rows = Vec::with_capacity(keys.len());
        for k in keys {
            rows.push(agg_output(&interp, &input, query, &groups[k], k)?);
        }
        // ORDER BY over aggregate output: keys must be grouping columns;
        // their output position is their position in the GROUP BY list.
        if !query.order_by.is_empty() {
            interp.work += interp.params.sort(rows.len() as f64);
            let positions: Vec<(usize, bool)> = query
                .order_by
                .iter()
                .filter_map(|&(col, desc)| {
                    query
                        .group_by
                        .iter()
                        .position(|&g| g == col)
                        .map(|p| (p, desc))
                })
                .collect();
            rows.sort_by(|a, b| {
                for &(p, desc) in &positions {
                    let ord = a[p].total_cmp(&b[p]);
                    if ord != std::cmp::Ordering::Equal {
                        return if desc { ord.reverse() } else { ord };
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        return Ok(ExecOutput {
            rows,
            work: interp.work,
        });
    }

    // ORDER BY on plain queries sorts the tuples before projection (the sort
    // key need not be projected).
    if !query.order_by.is_empty() {
        interp.work += interp.params.sort(input.tuples.len() as f64);
        let mut keyed: Vec<(Vec<Value>, Vec<usize>)> = Vec::with_capacity(input.tuples.len());
        for t in &input.tuples {
            let mut k = Vec::with_capacity(query.order_by.len());
            for &(col, _) in &query.order_by {
                k.push(interp.value_of(&input, t, col)?);
            }
            keyed.push((k, t.clone()));
        }
        let descs: Vec<bool> = query.order_by.iter().map(|&(_, d)| d).collect();
        keyed.sort_by(|a, b| {
            for (i, (x, y)) in a.0.iter().zip(&b.0).enumerate() {
                let ord = x.total_cmp(y);
                if ord != std::cmp::Ordering::Equal {
                    return if descs[i] { ord.reverse() } else { ord };
                }
            }
            std::cmp::Ordering::Equal
        });
        input.tuples = keyed.into_iter().map(|(_, t)| t).collect();
    }

    // Plain projection.
    let cols: Vec<BoundColumn> = match &query.projection {
        Projection::Columns(cols) => cols.clone(),
        Projection::Star => {
            let mut all = Vec::new();
            for (rel, (tid, _)) in query.relations.iter().enumerate() {
                for c in 0..db.try_table(*tid)?.schema().len() {
                    all.push(BoundColumn::new(rel, c));
                }
            }
            all
        }
    };
    let mut rows = Vec::with_capacity(input.tuples.len());
    for t in &input.tuples {
        let mut row = Vec::with_capacity(cols.len());
        for &c in &cols {
            row.push(interp.value_of(&input, t, c)?);
        }
        rows.push(row);
    }
    Ok(ExecOutput {
        rows,
        work: interp.work,
    })
}
