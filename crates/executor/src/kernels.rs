//! Branch-free selection-vector kernels.
//!
//! Every comparison the columnar engine supports against a constant reduces
//! to an inclusive **range test over totally ordered `i64` keys** (optionally
//! negated, for `Ne`):
//!
//! * `Int`/`Date` payloads are their own keys (`x.cmp(&k)` is plain integer
//!   order).
//! * `Float` payloads map through [`f64_total_key`], the sign-magnitude bit
//!   flip `f64::total_cmp` itself is specified by — so `a.total_cmp(&b)`
//!   equals `key(a).cmp(&key(b))` for every bit pattern, NaNs and `-0.0`
//!   included.
//! * `Int`-vs-`Float` comparisons widen per row (`x as f64`) before keying,
//!   mirroring `Value::total_cmp`'s `(Int, Float)` arm exactly.
//!
//! The kernels then evaluate `keep = valid & ((key >= lo) & (key <= hi) ^
//! negate)` per row and append surviving row ids with a data-independent
//! store (`out[w] = row; w += keep`). No branch in the loop body depends on
//! row data, so rustc/LLVM autovectorizes the compare+mask computation and
//! the store never mispredicts. The null mask is handled per chunk: columns
//! known to be NULL-free (and NULL-free chunks of mixed columns) run a loop
//! that never loads validity at all.

use std::ops::Range;

/// Rows per chunk for the per-chunk null-mask specialization. Also the unit
/// at which a mixed column's validity is summarized before the inner loop.
const CHUNK: usize = 512;

/// The totally ordered `i64` key of an `f64`: flips the low 63 bits on
/// negatives so that the integer order of keys is exactly `f64::total_cmp`
/// (negative NaNs < -inf < ... < -0.0 < +0.0 < ... < +inf < positive NaNs).
#[inline(always)]
pub(crate) fn f64_total_key(x: f64) -> i64 {
    let bits = x.to_bits() as i64;
    bits ^ (((bits >> 63) as u64) >> 1) as i64
}

/// An inclusive key range with optional negation — the compiled form of one
/// comparison. An empty range (`lo > hi`) with `negate = false` matches
/// nothing; with `negate = true` it matches every non-NULL row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct KeyRange {
    pub lo: i64,
    pub hi: i64,
    pub negate: bool,
}

impl KeyRange {
    #[inline(always)]
    pub fn hit(&self, key: i64) -> bool {
        ((key >= self.lo) & (key <= self.hi)) ^ self.negate
    }
}

/// Append `base + i` for every `i` with `valid[i] && range.hit(key(xs[i]))`.
///
/// `all_valid` is the column-level summary (callers compute it once per
/// operator); when false, validity is re-summarized per [`CHUNK`] so long
/// NULL-free stretches of a mixed column still take the unmasked loop.
#[inline]
pub(crate) fn select_keys<T: Copy>(
    xs: &[T],
    valid: &[bool],
    all_valid: bool,
    key: impl Fn(T) -> i64,
    range: KeyRange,
    base: usize,
    out: &mut Vec<usize>,
) {
    let n = xs.len();
    let start = out.len();
    out.resize(start + n, 0);
    let mut w = start;
    if all_valid {
        for (i, &x) in xs.iter().enumerate() {
            let keep = range.hit(key(x));
            out[w] = base + i;
            w += keep as usize;
        }
    } else {
        debug_assert_eq!(valid.len(), n);
        let mut at = 0;
        while at < n {
            let end = (at + CHUNK).min(n);
            let chunk_valid = &valid[at..end];
            if chunk_valid.iter().all(|&v| v) {
                for (i, &x) in xs[at..end].iter().enumerate() {
                    let keep = range.hit(key(x));
                    out[w] = base + at + i;
                    w += keep as usize;
                }
            } else {
                for (i, (&x, &v)) in xs[at..end].iter().zip(chunk_valid).enumerate() {
                    let keep = v & range.hit(key(x));
                    out[w] = base + at + i;
                    w += keep as usize;
                }
            }
            at = end;
        }
    }
    out.truncate(w);
}

/// Append `base + i` for every `i` in `span` where `hit(base + i)` — the
/// row-wise fallback (strings, cross-type comparisons) with the same
/// branch-free store as the typed kernels. `hit` must include the validity
/// check.
#[inline]
pub(crate) fn select_rowwise(
    span: Range<usize>,
    hit: impl Fn(usize) -> bool,
    out: &mut Vec<usize>,
) {
    let n = span.len();
    let start = out.len();
    out.resize(start + n, 0);
    let mut w = start;
    for r in span {
        let keep = hit(r);
        out[w] = r;
        w += keep as usize;
    }
    out.truncate(w);
}

/// Narrow a selection vector in place to the rows with
/// `valid[r] && range.hit(key(xs[r]))`, preserving order. Gathered loads
/// don't vectorize, but the compaction store stays data-independent.
#[inline]
pub(crate) fn refine_keys<T: Copy>(
    xs: &[T],
    valid: &[bool],
    key: impl Fn(T) -> i64,
    range: KeyRange,
    sel: &mut Vec<usize>,
) {
    let mut w = 0;
    for i in 0..sel.len() {
        let r = sel[i];
        let keep = valid[r] & range.hit(key(xs[r]));
        sel[w] = r;
        w += keep as usize;
    }
    sel.truncate(w);
}

/// Row-wise in-place narrowing; `hit` must include the validity check.
#[inline]
pub(crate) fn refine_rowwise(hit: impl Fn(usize) -> bool, sel: &mut Vec<usize>) {
    let mut w = 0;
    for i in 0..sel.len() {
        let r = sel[i];
        let keep = hit(r);
        sel[w] = r;
        w += keep as usize;
    }
    sel.truncate(w);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_key_orders_like_total_cmp() {
        let samples = [
            f64::NEG_INFINITY,
            -1.5,
            -0.0,
            0.0,
            1.0e-300,
            2.5,
            f64::INFINITY,
            f64::NAN,
            -f64::NAN,
            f64::MIN_POSITIVE,
        ];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(
                    f64_total_key(a).cmp(&f64_total_key(b)),
                    a.total_cmp(&b),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn select_matches_naive_with_nulls() {
        let xs: Vec<i64> = (0..1300).map(|i| (i * 7) % 97).collect();
        let valid: Vec<bool> = (0..1300).map(|i| i % 11 != 0).collect();
        let range = KeyRange {
            lo: 10,
            hi: 50,
            negate: false,
        };
        let mut out = vec![999usize]; // kernels append after existing content
        select_keys(&xs, &valid, false, |x| x, range, 100, &mut out);
        let naive: Vec<usize> = (0..1300)
            .filter(|&i| valid[i] && (10..=50).contains(&xs[i]))
            .map(|i| i + 100)
            .collect();
        assert_eq!(out[0], 999);
        assert_eq!(&out[1..], &naive[..]);
    }

    #[test]
    fn negated_range_excludes_nulls() {
        let xs = [1i64, 2, 3, 2, 5];
        let valid = [true, false, true, true, true];
        let range = KeyRange {
            lo: 2,
            hi: 2,
            negate: true,
        };
        let mut out = Vec::new();
        select_keys(&xs, &valid, false, |x| x, range, 0, &mut out);
        // row 1 has value 2 but is NULL → excluded; row 3 matches the range
        // so the negation drops it.
        assert_eq!(out, vec![0, 2, 4]);
        let mut sel: Vec<usize> = (0..5).collect();
        refine_keys(&xs, &valid, |x| x, range, &mut sel);
        assert_eq!(sel, vec![0, 2, 4]);
    }

    #[test]
    fn empty_range_with_negate_matches_all_valid() {
        let xs = [7i64, 8];
        let valid = [true, true];
        let range = KeyRange {
            lo: 1,
            hi: 0,
            negate: true,
        };
        let mut out = Vec::new();
        select_keys(&xs, &valid, true, |x| x, range, 0, &mut out);
        assert_eq!(out, vec![0, 1]);
    }
}
