//! Shared predicate evaluation over stored values.

use query::{CmpOp, PredOp, SelectionPredicate};
use std::cmp::Ordering;
use storage::{Table, Value};

/// SQL three-valued comparison collapsed to a boolean (NULL comparisons are
/// false, as in a WHERE clause).
pub fn cmp_matches(op: CmpOp, lhs: &Value, rhs: &Value) -> bool {
    let Some(ord) = lhs.sql_cmp(rhs) else {
        return false;
    };
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    }
}

/// Evaluate one selection predicate against a concrete value.
pub fn pred_matches(op: &PredOp, value: &Value) -> bool {
    match op {
        PredOp::Cmp(c, rhs) => cmp_matches(*c, value, rhs),
        PredOp::Between(lo, hi) => {
            cmp_matches(CmpOp::Ge, value, lo) && cmp_matches(CmpOp::Le, value, hi)
        }
    }
}

/// Evaluate a predicate against row `row` of `table` (the predicate's column
/// ordinal is interpreted against that table).
pub fn row_matches(table: &Table, row: usize, pred: &SelectionPredicate) -> bool {
    pred_matches(&pred.op, &table.value(row, pred.column.column))
}

/// Row indices of `table` matching all `preds`.
pub fn filter_table(table: &Table, preds: &[&SelectionPredicate]) -> Vec<usize> {
    (0..table.row_count())
        .filter(|&r| preds.iter().all(|p| row_matches(table, r, p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use query::BoundColumn;
    use storage::{ColumnDef, DataType, Schema};

    #[test]
    fn cmp_semantics() {
        assert!(cmp_matches(CmpOp::Lt, &Value::Int(1), &Value::Int(2)));
        assert!(cmp_matches(CmpOp::Ge, &Value::Int(2), &Value::Int(2)));
        assert!(cmp_matches(
            CmpOp::Ne,
            &Value::Str("a".into()),
            &Value::Str("b".into())
        ));
        assert!(
            !cmp_matches(CmpOp::Eq, &Value::Null, &Value::Null),
            "NULL = NULL is false"
        );
        assert!(!cmp_matches(CmpOp::Le, &Value::Null, &Value::Int(5)));
    }

    #[test]
    fn between_inclusive() {
        let op = PredOp::Between(Value::Int(2), Value::Int(4));
        assert!(pred_matches(&op, &Value::Int(2)));
        assert!(pred_matches(&op, &Value::Int(4)));
        assert!(!pred_matches(&op, &Value::Int(5)));
        assert!(!pred_matches(&op, &Value::Null));
    }

    #[test]
    fn filter_table_conjunction() {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("b", DataType::Int),
            ]),
        );
        for i in 0..10i64 {
            t.insert(vec![Value::Int(i), Value::Int(i % 3)]).unwrap();
        }
        let p1 = SelectionPredicate {
            column: BoundColumn::new(0, 0),
            op: PredOp::Cmp(CmpOp::Ge, Value::Int(4)),
        };
        let p2 = SelectionPredicate {
            column: BoundColumn::new(0, 1),
            op: PredOp::Cmp(CmpOp::Eq, Value::Int(0)),
        };
        assert_eq!(filter_table(&t, &[&p1, &p2]), vec![6, 9]);
    }
}
