//! Shared predicate evaluation over stored values.
//!
//! Two evaluation paths coexist. The row-at-a-time functions
//! ([`row_matches`], [`filter_table`]) materialize one [`Value`] per probe
//! and serve the reference interpreter. The columnar path compiles each
//! predicate once against its column — constant pre-converted to the
//! column's native representation, payload slice borrowed directly — and
//! then evaluates by selection vector ([`filter_table_columnar`]), which is
//! what the batch executor uses. Both return exactly the same row sets.
//!
//! Numeric comparisons additionally compile down to the branch-free range
//! kernels in [`crate::kernels`]: each `Cmp`/`Between` over an `Int`/`Date`/
//! `Float` column canonicalizes to an inclusive range test over totally
//! ordered `i64` keys (with a negate flag for `Ne`), which the kernels
//! evaluate without data-dependent branches so rustc autovectorizes the
//! loop. Strings and cross-type oddities keep the row-wise `ord` path.

use crate::kernels::{self, f64_total_key, KeyRange};
use query::{CmpOp, PredOp, SelectionPredicate};
use std::cmp::Ordering;
use std::ops::Range;
use storage::{ColumnData, DataType, Table, Value};

/// SQL three-valued comparison collapsed to a boolean (NULL comparisons are
/// false, as in a WHERE clause).
pub fn cmp_matches(op: CmpOp, lhs: &Value, rhs: &Value) -> bool {
    let Some(ord) = lhs.sql_cmp(rhs) else {
        return false;
    };
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    }
}

/// Evaluate one selection predicate against a concrete value.
pub fn pred_matches(op: &PredOp, value: &Value) -> bool {
    match op {
        PredOp::Cmp(c, rhs) => cmp_matches(*c, value, rhs),
        PredOp::Between(lo, hi) => {
            cmp_matches(CmpOp::Ge, value, lo) && cmp_matches(CmpOp::Le, value, hi)
        }
    }
}

/// Evaluate a predicate against row `row` of `table` (the predicate's column
/// ordinal is interpreted against that table).
pub fn row_matches(table: &Table, row: usize, pred: &SelectionPredicate) -> bool {
    pred_matches(&pred.op, &table.value(row, pred.column.column))
}

/// Row indices of `table` matching all `preds`.
pub fn filter_table(table: &Table, preds: &[&SelectionPredicate]) -> Vec<usize> {
    (0..table.row_count())
        .filter(|&r| preds.iter().all(|p| row_matches(table, r, p)))
        .collect()
}

/// One comparison against a column, compiled: the payload slice is borrowed
/// once and the constant is pre-converted into the column's native domain,
/// so the per-row check is a primitive compare with no `Value`
/// materialization. Each variant reproduces the corresponding
/// [`Value::total_cmp`] arm exactly (including the `numeric_key` fallback
/// for Date/Float cross-type comparisons).
enum ColCmp<'a> {
    /// Int/Date payload vs Int/Date constant: plain `i64` order.
    IntInt(&'a [i64], i64),
    /// Int/Date payload vs Float constant: widen then `f64::total_cmp`.
    IntFloat(&'a [i64], f64),
    /// Float payload vs numeric constant: `f64::total_cmp`.
    FloatFloat(&'a [f64], f64),
    /// Str payload vs Str constant: lexicographic.
    StrStr(&'a [String], &'a str),
    /// Cross-type oddities (e.g. Str column vs numeric constant) fall back
    /// to the generic `ValueRef` comparison.
    Generic(&'a ColumnData, &'a Value),
}

impl ColCmp<'_> {
    fn compile<'a>(col: &'a ColumnData, rhs: &'a Value) -> Option<ColCmp<'a>> {
        // NULL constants never match under SQL comparison; `None` encodes
        // "always false".
        let dt = col.data_type();
        Some(match (dt, rhs) {
            (_, Value::Null) => return None,
            (DataType::Int | DataType::Date, Value::Int(k)) => ColCmp::IntInt(int_payload(col), *k),
            (DataType::Int | DataType::Date, Value::Date(k)) => {
                ColCmp::IntInt(int_payload(col), *k as i64)
            }
            (DataType::Int | DataType::Date, Value::Float(k)) => {
                ColCmp::IntFloat(int_payload(col), *k)
            }
            (DataType::Float, Value::Int(k)) => ColCmp::FloatFloat(float_payload(col), *k as f64),
            (DataType::Float, Value::Float(k)) => ColCmp::FloatFloat(float_payload(col), *k),
            (DataType::Float, Value::Date(k)) => ColCmp::FloatFloat(float_payload(col), *k as f64),
            (DataType::Str, Value::Str(k)) => ColCmp::StrStr(str_payload(col), k),
            _ => ColCmp::Generic(col, rhs),
        })
    }

    /// Ordering of the (non-NULL) value at `row` relative to the constant.
    #[inline]
    fn ord(&self, row: usize) -> Ordering {
        match self {
            ColCmp::IntInt(xs, k) => xs[row].cmp(k),
            ColCmp::IntFloat(xs, k) => (xs[row] as f64).total_cmp(k),
            ColCmp::FloatFloat(xs, k) => xs[row].total_cmp(k),
            ColCmp::StrStr(xs, k) => xs[row].as_str().cmp(k),
            ColCmp::Generic(col, rhs) => col.get_ref(row).total_cmp(&rhs.as_ref()),
        }
    }
}

/// Payload accessors: the data type was already matched, so a missing slice
/// means `ColumnData` broke its own type invariant — fail closed with an
/// empty slice (every row access would then panic just as an internal
/// indexing bug would, rather than silently matching).
fn int_payload(col: &ColumnData) -> &[i64] {
    col.int_slice().unwrap_or(&[])
}

fn float_payload(col: &ColumnData) -> &[f64] {
    col.float_slice().unwrap_or(&[])
}

fn str_payload(col: &ColumnData) -> &[String] {
    col.str_slice().unwrap_or(&[])
}

#[inline]
fn ord_matches(op: CmpOp, ord: Ordering) -> bool {
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    }
}

enum CompiledOp<'a> {
    /// A NULL constant somewhere: no row can match.
    Never,
    Cmp(CmpOp, ColCmp<'a>),
    Between(ColCmp<'a>, ColCmp<'a>),
}

/// The vectorizable form of a compiled predicate: an inclusive key-range
/// test over the column's payload slice, or a marker that the row-wise
/// `ord` path must be used.
enum Kernel<'a> {
    /// No row can match (NULL constant, or a range that canonicalized to
    /// empty at the domain boundary, e.g. `x < i64::MIN`).
    Never,
    /// Int/Date payload: the value is its own key.
    Int(&'a [i64], KeyRange),
    /// Int/Date payload vs Float constant: widen per row, then key.
    IntAsFloat(&'a [i64], KeyRange),
    /// Float payload: key via [`f64_total_key`].
    Float(&'a [f64], KeyRange),
    /// Strings, cross-type comparisons, mixed-variant BETWEEN: evaluate
    /// row-wise through [`CompiledPred::matches`].
    RowWise,
}

/// The inclusive key range equivalent to `value <c> key` (keys already in
/// the totally ordered domain). `None` when the range is empty because the
/// constant sits at the domain boundary (`< MIN`, `> MAX`).
fn range_for(c: CmpOp, key: i64) -> Option<KeyRange> {
    Some(match c {
        CmpOp::Eq => KeyRange {
            lo: key,
            hi: key,
            negate: false,
        },
        CmpOp::Ne => KeyRange {
            lo: key,
            hi: key,
            negate: true,
        },
        CmpOp::Lt => KeyRange {
            lo: i64::MIN,
            hi: key.checked_sub(1)?,
            negate: false,
        },
        CmpOp::Le => KeyRange {
            lo: i64::MIN,
            hi: key,
            negate: false,
        },
        CmpOp::Gt => KeyRange {
            lo: key.checked_add(1)?,
            hi: i64::MAX,
            negate: false,
        },
        CmpOp::Ge => KeyRange {
            lo: key,
            hi: i64::MAX,
            negate: false,
        },
    })
}

fn kernel_of<'a>(op: &CompiledOp<'a>) -> Kernel<'a> {
    match op {
        CompiledOp::Never => Kernel::Never,
        CompiledOp::Cmp(c, cmp) => match cmp {
            ColCmp::IntInt(xs, k) => match range_for(*c, *k) {
                Some(r) => Kernel::Int(xs, r),
                None => Kernel::Never,
            },
            ColCmp::IntFloat(xs, k) => match range_for(*c, f64_total_key(*k)) {
                Some(r) => Kernel::IntAsFloat(xs, r),
                None => Kernel::Never,
            },
            ColCmp::FloatFloat(xs, k) => match range_for(*c, f64_total_key(*k)) {
                Some(r) => Kernel::Float(xs, r),
                None => Kernel::Never,
            },
            ColCmp::StrStr(..) | ColCmp::Generic(..) => Kernel::RowWise,
        },
        // BETWEEN is `x >= lo && x <= hi`; when both bounds compile to the
        // same typed variant that is one inclusive key range. Mixed variants
        // (e.g. Int lo, Float hi) compare in different domains per bound and
        // stay row-wise.
        CompiledOp::Between(lo, hi) => match (lo, hi) {
            (ColCmp::IntInt(xs, l), ColCmp::IntInt(_, h)) => Kernel::Int(
                xs,
                KeyRange {
                    lo: *l,
                    hi: *h,
                    negate: false,
                },
            ),
            (ColCmp::IntFloat(xs, l), ColCmp::IntFloat(_, h)) => Kernel::IntAsFloat(
                xs,
                KeyRange {
                    lo: f64_total_key(*l),
                    hi: f64_total_key(*h),
                    negate: false,
                },
            ),
            (ColCmp::FloatFloat(xs, l), ColCmp::FloatFloat(_, h)) => Kernel::Float(
                xs,
                KeyRange {
                    lo: f64_total_key(*l),
                    hi: f64_total_key(*h),
                    negate: false,
                },
            ),
            _ => Kernel::RowWise,
        },
    }
}

/// A selection predicate compiled against its column: resolve once, probe
/// per row with primitive compares ([`matches`](Self::matches)) or sweep
/// whole row spans through the branch-free kernels
/// ([`select_into`](Self::select_into) / [`refine`](Self::refine)).
pub struct CompiledPred<'a> {
    validity: &'a [bool],
    all_valid: bool,
    op: CompiledOp<'a>,
    kernel: Kernel<'a>,
}

impl<'a> CompiledPred<'a> {
    /// Compile `pred` against `table` (the predicate's column ordinal is
    /// interpreted against that table, as in [`row_matches`]).
    pub fn new(table: &'a Table, pred: &'a SelectionPredicate) -> CompiledPred<'a> {
        let col = table.column(pred.column.column);
        let op = match &pred.op {
            PredOp::Cmp(c, rhs) => match ColCmp::compile(col, rhs) {
                Some(cc) => CompiledOp::Cmp(*c, cc),
                None => CompiledOp::Never,
            },
            PredOp::Between(lo, hi) => match (ColCmp::compile(col, lo), ColCmp::compile(col, hi)) {
                (Some(l), Some(h)) => CompiledOp::Between(l, h),
                _ => CompiledOp::Never,
            },
        };
        let kernel = kernel_of(&op);
        CompiledPred {
            validity: col.validity(),
            all_valid: col.all_valid(),
            op,
            kernel,
        }
    }

    /// True when the (compiled) predicate holds at `row`; NULL entries never
    /// match, as in a WHERE clause.
    #[inline]
    pub fn matches(&self, row: usize) -> bool {
        if !self.validity[row] {
            return false;
        }
        match &self.op {
            CompiledOp::Never => false,
            CompiledOp::Cmp(c, cmp) => ord_matches(*c, cmp.ord(row)),
            CompiledOp::Between(lo, hi) => {
                lo.ord(row) != Ordering::Less && hi.ord(row) != Ordering::Greater
            }
        }
    }

    /// Append the matching row ids within `span` to `out`, in ascending
    /// order — the scan entry point of the kernel path. Equivalent to
    /// `out.extend(span.filter(|&r| self.matches(r)))`.
    pub fn select_into(&self, span: Range<usize>, out: &mut Vec<usize>) {
        match &self.kernel {
            Kernel::Never => {}
            Kernel::Int(xs, r) => kernels::select_keys(
                &xs[span.clone()],
                &self.validity[span.clone()],
                self.all_valid,
                |x| x,
                *r,
                span.start,
                out,
            ),
            Kernel::IntAsFloat(xs, r) => kernels::select_keys(
                &xs[span.clone()],
                &self.validity[span.clone()],
                self.all_valid,
                |x| f64_total_key(x as f64),
                *r,
                span.start,
                out,
            ),
            Kernel::Float(xs, r) => kernels::select_keys(
                &xs[span.clone()],
                &self.validity[span.clone()],
                self.all_valid,
                f64_total_key,
                *r,
                span.start,
                out,
            ),
            Kernel::RowWise => kernels::select_rowwise(span, |row| self.matches(row), out),
        }
    }

    /// Narrow a selection vector in place to the rows that also satisfy this
    /// predicate, preserving order. Equivalent to
    /// `sel.retain(|&r| self.matches(r))`.
    pub fn refine(&self, sel: &mut Vec<usize>) {
        match &self.kernel {
            Kernel::Never => sel.clear(),
            Kernel::Int(xs, r) => kernels::refine_keys(xs, self.validity, |x| x, *r, sel),
            Kernel::IntAsFloat(xs, r) => {
                kernels::refine_keys(xs, self.validity, |x| f64_total_key(x as f64), *r, sel)
            }
            Kernel::Float(xs, r) => kernels::refine_keys(xs, self.validity, f64_total_key, *r, sel),
            Kernel::RowWise => kernels::refine_rowwise(|row| self.matches(row), sel),
        }
    }
}

/// Row indices of `table` matching all `preds`, computed by selection
/// vector: the first predicate sweeps the column through its branch-free
/// kernel, later ones narrow the surviving vector in place. Returns exactly
/// [`filter_table`]'s result.
pub fn filter_table_columnar(table: &Table, preds: &[&SelectionPredicate]) -> Vec<usize> {
    let n = table.row_count();
    if preds.is_empty() || n == 0 {
        return (0..n).collect();
    }
    let compiled: Vec<CompiledPred<'_>> =
        preds.iter().map(|p| CompiledPred::new(table, p)).collect();
    let mut sel: Vec<usize> = Vec::new();
    if let Some((first, rest)) = compiled.split_first() {
        first.select_into(0..n, &mut sel);
        for p in rest {
            p.refine(&mut sel);
        }
    }
    sel
}

#[cfg(test)]
mod tests {
    use super::*;
    use query::BoundColumn;
    use storage::{ColumnDef, DataType, Schema};

    #[test]
    fn cmp_semantics() {
        assert!(cmp_matches(CmpOp::Lt, &Value::Int(1), &Value::Int(2)));
        assert!(cmp_matches(CmpOp::Ge, &Value::Int(2), &Value::Int(2)));
        assert!(cmp_matches(
            CmpOp::Ne,
            &Value::Str("a".into()),
            &Value::Str("b".into())
        ));
        assert!(
            !cmp_matches(CmpOp::Eq, &Value::Null, &Value::Null),
            "NULL = NULL is false"
        );
        assert!(!cmp_matches(CmpOp::Le, &Value::Null, &Value::Int(5)));
    }

    #[test]
    fn between_inclusive() {
        let op = PredOp::Between(Value::Int(2), Value::Int(4));
        assert!(pred_matches(&op, &Value::Int(2)));
        assert!(pred_matches(&op, &Value::Int(4)));
        assert!(!pred_matches(&op, &Value::Int(5)));
        assert!(!pred_matches(&op, &Value::Null));
    }

    #[test]
    fn filter_table_conjunction() {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("b", DataType::Int),
            ]),
        );
        for i in 0..10i64 {
            t.insert(vec![Value::Int(i), Value::Int(i % 3)]).unwrap();
        }
        let p1 = SelectionPredicate {
            column: BoundColumn::new(0, 0),
            op: PredOp::Cmp(CmpOp::Ge, Value::Int(4)),
        };
        let p2 = SelectionPredicate {
            column: BoundColumn::new(0, 1),
            op: PredOp::Cmp(CmpOp::Eq, Value::Int(0)),
        };
        assert_eq!(filter_table(&t, &[&p1, &p2]), vec![6, 9]);
    }
}
