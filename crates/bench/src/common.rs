//! Shared experiment plumbing.

use executor::WorkloadRunner;
use query::{bind_statement, BoundSelect, BoundStatement, Statement};
use serde::{Deserialize, Serialize};
use stats::{StatDescriptor, StatsCatalog};
use storage::Database;

/// How big an experiment run is. Results are ratios, so the default small
/// scale reproduces the paper's *shape*; `full()` runs larger databases for
/// tighter numbers.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    /// TPC-D scale factor for generated databases.
    pub scale: f64,
    /// Statements per Rags workload.
    pub workload_len: usize,
    pub seed: u64,
}

impl ExperimentScale {
    /// Tiny scale for unit tests of the harness itself.
    pub fn tiny() -> Self {
        ExperimentScale {
            scale: 0.001,
            workload_len: 12,
            seed: 7,
        }
    }

    /// Default experiment scale (seconds per experiment).
    pub fn default_run() -> Self {
        ExperimentScale {
            scale: 0.004,
            workload_len: 60,
            seed: 7,
        }
    }

    /// Larger run for the recorded EXPERIMENTS.md numbers.
    pub fn full() -> Self {
        ExperimentScale {
            scale: 0.01,
            workload_len: 100,
            seed: 7,
        }
    }
}

/// One reported measurement, with the paper's band alongside.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    pub experiment: String,
    pub database: String,
    pub workload: String,
    pub metric: String,
    pub measured: f64,
    pub paper_band: String,
}

impl Row {
    pub fn print(&self) {
        println!(
            "{:<12} {:<10} {:<12} {:<42} measured={:>9.2}  paper: {}",
            self.experiment, self.database, self.workload, self.metric, self.measured,
            self.paper_band
        );
    }
}

/// Print a table of rows and optionally write them as JSON lines.
pub fn report(rows: &[Row], json_path: Option<&str>) {
    for r in rows {
        r.print();
    }
    if let Some(path) = json_path {
        let mut out = String::new();
        for r in rows {
            out.push_str(&serde_json::to_string(r).expect("row serializes"));
            out.push('\n');
        }
        if let Some(parent) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(path, out).expect("write results file");
        println!("results written to {path}");
    }
}

/// Bind a workload of parsed statements, panicking on generator bugs.
pub fn bind_all(db: &Database, stmts: &[Statement]) -> Vec<BoundStatement> {
    stmts
        .iter()
        .map(|s| bind_statement(db, s).expect("generated workload binds"))
        .collect()
}

/// The SELECT statements of a bound workload.
pub fn queries_of(bound: &[BoundStatement]) -> Vec<BoundSelect> {
    bound
        .iter()
        .filter_map(|s| s.as_select().cloned())
        .collect()
}

/// Execute a workload against a *clone* of the database (so repeated
/// measurements start from identical state) under the given statistics
/// catalog. Returns total deterministic execution work.
pub fn execute_workload(db: &Database, catalog: &StatsCatalog, workload: &[BoundStatement]) -> f64 {
    let mut db = db.clone();
    let runner = WorkloadRunner::default();
    runner.run(&mut db, catalog.full_view(), workload).total_work
}

/// Create every descriptor in `descriptors` (deduplicating against the
/// catalog) and return the creation work spent.
pub fn create_all(
    db: &Database,
    catalog: &mut StatsCatalog,
    descriptors: impl IntoIterator<Item = StatDescriptor>,
) -> f64 {
    let before = catalog.creation_work();
    for d in descriptors {
        catalog.create_statistic(db, d);
    }
    catalog.creation_work() - before
}

/// Percentage change from `base` to `variant` (positive = variant larger).
pub fn pct_change(base: f64, variant: f64) -> f64 {
    if base <= 0.0 {
        return 0.0;
    }
    (variant - base) / base * 100.0
}

/// Percentage reduction from `base` to `variant` (positive = variant smaller).
pub fn pct_reduction(base: f64, variant: f64) -> f64 {
    -pct_change(base, variant)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_helpers() {
        assert_eq!(pct_change(100.0, 120.0), 20.0);
        assert_eq!(pct_reduction(100.0, 60.0), 40.0);
        assert_eq!(pct_change(0.0, 50.0), 0.0);
    }

    #[test]
    fn scales_ordered() {
        assert!(ExperimentScale::tiny().scale < ExperimentScale::default_run().scale);
        assert!(ExperimentScale::default_run().scale <= ExperimentScale::full().scale);
    }
}
