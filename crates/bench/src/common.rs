//! Shared experiment plumbing.

use executor::{execute_plan, WorkloadRunner};
use optimizer::{OptimizeCache, OptimizeOptions, Optimizer};
use parking_lot::Mutex;
use query::{bind_statement, BoundSelect, BoundStatement, Statement};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use stats::{StatDescriptor, StatsCatalog};
use std::sync::{Arc, OnceLock};
use storage::Database;

/// How big an experiment run is. Results are ratios, so the default small
/// scale reproduces the paper's *shape*; `full()` runs larger databases for
/// tighter numbers.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    /// TPC-D scale factor for generated databases.
    pub scale: f64,
    /// Statements per Rags workload.
    pub workload_len: usize,
    pub seed: u64,
}

impl ExperimentScale {
    /// Tiny scale for unit tests of the harness itself.
    pub fn tiny() -> Self {
        ExperimentScale {
            scale: 0.001,
            workload_len: 12,
            seed: 7,
        }
    }

    /// Default experiment scale (seconds per experiment).
    pub fn default_run() -> Self {
        ExperimentScale {
            scale: 0.004,
            workload_len: 60,
            seed: 7,
        }
    }

    /// Larger run for the recorded EXPERIMENTS.md numbers.
    pub fn full() -> Self {
        ExperimentScale {
            scale: 0.01,
            workload_len: 100,
            seed: 7,
        }
    }
}

/// One reported measurement, with the paper's band alongside.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    pub experiment: String,
    pub database: String,
    pub workload: String,
    pub metric: String,
    pub measured: f64,
    pub paper_band: String,
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Row {
    /// Hand-rolled JSON (no serde_json offline). Fields are flat strings
    /// plus one number, so this stays trivially correct.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"experiment\":\"{}\",\"database\":\"{}\",\"workload\":\"{}\",\"metric\":\"{}\",\"measured\":{},\"paper_band\":\"{}\"}}",
            json_escape(&self.experiment),
            json_escape(&self.database),
            json_escape(&self.workload),
            json_escape(&self.metric),
            if self.measured.is_finite() {
                format!("{}", self.measured)
            } else {
                "null".to_string()
            },
            json_escape(&self.paper_band),
        )
    }

    pub fn print(&self) {
        println!(
            "{:<12} {:<10} {:<12} {:<42} measured={:>9.2}  paper: {}",
            self.experiment,
            self.database,
            self.workload,
            self.metric,
            self.measured,
            self.paper_band
        );
    }
}

/// Print a table of rows and optionally write them as JSON lines.
pub fn report(rows: &[Row], json_path: Option<&str>) {
    for r in rows {
        r.print();
    }
    if let Some(path) = json_path {
        let mut out = String::new();
        for r in rows {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        if let Some(parent) = std::path::Path::new(path).parent() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!(
                    "error: cannot create results directory {}: {e}",
                    parent.display()
                );
                return;
            }
        }
        match std::fs::write(path, out) {
            Ok(()) => println!("results written to {path}"),
            Err(e) => eprintln!("error: cannot write results file {path}: {e}"),
        }
    }
}

/// Parse a `--threads N` flag from CLI args; defaults to 1 (serial).
pub fn parse_threads(args: &[String]) -> usize {
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// The value of a `--flag VALUE` pair, if present.
pub fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Observability plumbing shared by the experiment drivers.
///
/// Parses `--trace-out PATH`, `--metrics-out PATH`, and `--journal-out PATH`
/// and hands out one [`obsv::Obs`] for the whole run. Metrics counters are
/// always collected (cheap atomics into the run's registry); span tracing is
/// enabled only when `--trace-out` is given, keeping the default path on the
/// disabled-tracer fast path. [`BenchObs::finish`] exports everything and
/// prints the uniform end-of-run metrics summary every driver shares.
pub struct BenchObs {
    pub obs: obsv::Obs,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    journal_out: Option<String>,
}

fn write_artifact(path: &str, what: &str, contents: &str) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("error: cannot create {}: {e}", parent.display());
                return;
            }
        }
    }
    match std::fs::write(path, contents) {
        Ok(()) => println!("{what} written to {path}"),
        Err(e) => eprintln!("error: cannot write {what} {path}: {e}"),
    }
}

impl BenchObs {
    pub fn from_args(args: &[String]) -> Self {
        let trace_out = flag_value(args, "--trace-out");
        let obs = if trace_out.is_some() {
            obsv::Obs::enabled()
        } else {
            obsv::Obs::disabled()
        };
        BenchObs {
            obs,
            trace_out,
            metrics_out: flag_value(args, "--metrics-out"),
            journal_out: flag_value(args, "--journal-out"),
        }
    }

    /// Flush + export the trace (Chrome `trace_event` format unless the path
    /// ends in `.jsonl`), dump the metrics snapshot and the tuning-session
    /// journal if requested, and print the end-of-run metrics summary.
    pub fn finish(&self, journal: Option<&autostats::SessionReport>) {
        if let Some(path) = &self.trace_out {
            let events = self.obs.tracer.flush();
            for defect in obsv::trace::validate(&events) {
                eprintln!("warning: trace defect: {defect:?}");
            }
            let text = if path.ends_with(".jsonl") {
                obsv::export::to_jsonl(&events)
            } else {
                obsv::export::to_chrome(&events)
            };
            write_artifact(path, &format!("trace ({} events)", events.len()), &text);
        }
        if let Some(path) = &self.metrics_out {
            write_artifact(path, "metrics", &self.obs.metrics.snapshot().render_json());
        }
        if let Some(journal) = journal {
            if !journal.queries.is_empty() {
                println!("\n== tuning-session journal ==");
                print!("{}", journal.render_text());
            }
            if let Some(path) = &self.journal_out {
                write_artifact(path, "journal", &journal.to_json());
            }
        }
        let snapshot = self.obs.metrics.snapshot();
        if !snapshot.entries.is_empty() {
            println!("\n== metrics (registry snapshot) ==");
            print!("{}", snapshot.render_text());
        }
    }
}

/// Bind a workload of parsed statements, panicking on generator bugs.
pub fn bind_all(db: &Database, stmts: &[Statement]) -> Vec<BoundStatement> {
    stmts
        .iter()
        .map(|s| bind_statement(db, s).expect("generated workload binds"))
        .collect()
}

/// The SELECT statements of a bound workload.
pub fn queries_of(bound: &[BoundStatement]) -> Vec<BoundSelect> {
    bound
        .iter()
        .filter_map(|s| s.as_select().cloned())
        .collect()
}

/// Execute a workload against a *clone* of the database (so repeated
/// measurements start from identical state) under the given statistics
/// catalog. Returns total deterministic execution work.
pub fn execute_workload(db: &Database, catalog: &StatsCatalog, workload: &[BoundStatement]) -> f64 {
    execute_workload_obs(db, catalog, workload, &obsv::Obs::disabled())
}

/// [`execute_workload`] under an observability context: statements run with
/// `exec.query` / `exec.dml` span trees and the total work is mirrored into
/// the `exec.work` meter. Returns exactly what `execute_workload` returns.
pub fn execute_workload_obs(
    db: &Database,
    catalog: &StatsCatalog,
    workload: &[BoundStatement],
    obs: &obsv::Obs,
) -> f64 {
    let mut db = db.clone();
    let runner = WorkloadRunner {
        tracer: obs.tracer.clone(),
        ..Default::default()
    };
    let work = runner
        .run(&mut db, catalog.full_view(), workload)
        .expect("bench workload executes")
        .total_work;
    obs.metrics.float_counter("exec.work").add(work);
    work
}

/// Memo of per-statement execution work, shared across the repeated
/// workload executions of a parameter sweep.
///
/// For a read-only statement, deterministic execution work is a pure
/// function of (database contents, statement, chosen operator tree) — the
/// interpreter never reads the plan's cardinality/cost *estimates* — so the
/// key is `(statement index, plan structural fingerprint)`. Two sweep points
/// whose catalogs lead the optimizer to the same tree for a statement share
/// one execution, no matter how their estimates differ. One memo is scoped
/// to exactly one (database, workload) pair: the statement index only
/// identifies a statement within that workload.
///
/// Entries are [`OnceLock`] cells, giving *single-flight* semantics: when
/// several worker threads reach the same cold key at once (the first wave of
/// a fanned-out sweep), one executes and the rest block on the cell instead
/// of redundantly executing the same statement.
/// Single-flight cell: computed once, concurrent readers block until ready.
type WorkCell = Arc<OnceLock<f64>>;

#[derive(Default)]
pub struct ExecWorkMemo {
    per_statement: Mutex<FxHashMap<(usize, u64), WorkCell>>,
}

impl ExecWorkMemo {
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`execute_workload`] with plan-level memoization of execution work.
///
/// Returns exactly what `execute_workload` returns (same optimizer, same
/// options, statements executed in order against unmutated data), but serves
/// repeated (statement, plan-tree) pairs from `memo` and repeated
/// optimizations from `cache`. Workloads containing DML fall back to the
/// plain path: a mutating statement changes the data later statements see,
/// so their work is no longer a function of the plan alone.
pub fn execute_workload_memo(
    db: &Database,
    catalog: &StatsCatalog,
    workload: &[BoundStatement],
    cache: &OptimizeCache,
    memo: &ExecWorkMemo,
    obs: &obsv::Obs,
) -> f64 {
    if workload
        .iter()
        .any(|s| !matches!(s, BoundStatement::Select(_)))
    {
        return execute_workload_obs(db, catalog, workload, obs);
    }
    let optimizer = Optimizer::default();
    let options = OptimizeOptions::default();
    let mut total = 0.0;
    for (i, stmt) in workload.iter().enumerate() {
        let BoundStatement::Select(q) = stmt else {
            unreachable!("checked above")
        };
        let optimized = optimizer
            .optimize_cached(db, q, catalog.full_view(), &options, cache)
            .expect("bench workload optimizes");
        let key = (i, optimized.plan.structural_fingerprint());
        let cell = Arc::clone(memo.per_statement.lock().entry(key).or_default());
        total += *cell.get_or_init(|| {
            // Only cold cells execute, so `exec.work` meters *physical*
            // work: the whole point of the memo is that warm cells add none.
            let work = execute_plan(db, q, &optimized.plan, &optimizer.params)
                .expect("bench workload executes")
                .work;
            obs.metrics.float_counter("exec.work").add(work);
            work
        });
    }
    total
}

/// Create every descriptor in `descriptors` (deduplicating against the
/// catalog) and return the creation work spent.
pub fn create_all(
    db: &Database,
    catalog: &mut StatsCatalog,
    descriptors: impl IntoIterator<Item = StatDescriptor>,
) -> f64 {
    let before = catalog.creation_work();
    for d in descriptors {
        catalog
            .create_statistic(db, d)
            .expect("bench statistic builds");
    }
    catalog.creation_work() - before
}

/// Percentage change from `base` to `variant` (positive = variant larger).
pub fn pct_change(base: f64, variant: f64) -> f64 {
    if base <= 0.0 {
        return 0.0;
    }
    (variant - base) / base * 100.0
}

/// Percentage reduction from `base` to `variant` (positive = variant smaller).
pub fn pct_reduction(base: f64, variant: f64) -> f64 {
    -pct_change(base, variant)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_helpers() {
        assert_eq!(pct_change(100.0, 120.0), 20.0);
        assert_eq!(pct_reduction(100.0, 60.0), 40.0);
        assert_eq!(pct_change(0.0, 50.0), 0.0);
    }

    #[test]
    fn scales_ordered() {
        assert!(ExperimentScale::tiny().scale < ExperimentScale::default_run().scale);
        assert!(ExperimentScale::default_run().scale <= ExperimentScale::full().scale);
    }
}
