//! Experiment harness for the reproduction.
//!
//! One module per table/figure of the paper's evaluation (§8), each exposing
//! a `run(...) -> Vec<Row>` function that the corresponding `exp_*` binary
//! wraps. Every experiment prints a human-readable table, states the paper's
//! reported band next to the measured value, and can emit machine-readable
//! JSON (consumed when updating `EXPERIMENTS.md`).
//!
//! | Binary       | Paper result                                            |
//! |--------------|---------------------------------------------------------|
//! | `exp_intro`  | §1 intro experiment — plans change for all but 2 of 17  |
//! | `exp_fig3`   | Figure 3 — candidate algorithm vs Exhaustive            |
//! | `exp_fig4`   | Figure 4 — MNSA vs create-all-candidates                |
//! | `exp_table1` | Table 1 — MNSA/D vs MNSA update cost                    |
//! | `exp_tsweep` | §3.2/§8.2 — sensitivity to the t and ε parameters       |
//! | `exp_shrink` | §5.2 — Shrinking Set essential sets                     |
//! | `exp_all`    | everything above, at the default scale                  |
//! | `exp_online` | online lifecycle daemon — convergence vs offline tuning |

pub mod common;
pub mod experiments;

pub use common::{ExperimentScale, Row};
