//! Runs every experiment at the default scale and collects all rows.
//!
//! Usage: `cargo run -p bench --bin exp_all [--full] [--threads N]
//!         [--trace-out PATH] [--metrics-out PATH] [--journal-out PATH]`

use bench::common::{parse_threads, report, BenchObs, ExperimentScale, Row};
use bench::experiments::{aging, fig3, fig4, intro, shrink, table1, tsweep};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let threads = parse_threads(&args);
    let scale = if full {
        ExperimentScale::full()
    } else {
        ExperimentScale::default_run()
    };
    let bench_obs = BenchObs::from_args(&args);
    let obs = &bench_obs.obs;
    let mut rows: Vec<Row> = Vec::new();
    println!("[1/7] intro");
    rows.extend(intro::rows(&intro::run(&scale)));
    println!("[2/7] figure 3");
    rows.extend(fig3::rows(&fig3::run_obs(&scale, threads, obs)));
    println!("[3/7] figure 4");
    rows.extend(fig4::rows(&fig4::run(&scale)));
    println!("[4/7] table 1");
    rows.extend(table1::rows(&table1::run(&scale)));
    println!("[5/7] t/eps sweep");
    let (sweep, journal) = tsweep::run_obs(&scale, threads, obs);
    rows.extend(tsweep::rows(&sweep));
    println!("[6/7] shrinking set");
    let (shrunk, _) = shrink::run_obs(&scale, obs);
    rows.extend(shrink::rows(&shrunk));
    println!("[7/7] aging");
    rows.extend(aging::rows(&aging::run(&scale)));
    println!();
    report(&rows, Some("results/all.jsonl"));
    bench_obs.finish(Some(&journal));
}
