//! Regenerates Table 1 (see `bench::experiments::table1`).
//!
//! Usage: `cargo run -p bench --bin exp_table1 [--full]`

use bench::common::{report, ExperimentScale};
use bench::experiments::table1;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scale = if full {
        ExperimentScale::full()
    } else {
        ExperimentScale::default_run()
    };
    println!("== Table 1: MNSA/D update-cost reduction vs MNSA (U25-C-100) ==");
    let results = table1::run(&scale);
    for r in &results {
        println!(
            "{:<9} stats MNSA={:>3} MNSA/D-active={:>3}",
            r.database, r.mnsa_stats, r.mnsad_active_stats
        );
    }
    report(&table1::rows(&results), Some("results/table1.jsonl"));
}
