//! Performance baseline: columnar executor and shared-scan statistics builds
//! vs their retained pre-tentpole implementations (see
//! `bench::experiments::perfbase`).
//!
//! Usage: `cargo run --release -p bench --bin exp_perfbase
//!         [--full | --tiny] [--reps N] [--threads N] [--out PATH]
//!         [--trace-out PATH] [--check]`
//!
//! Writes `BENCH_exec.json` at the repository root by default (`--out`
//! overrides, which the CI smoke run uses to avoid clobbering the recorded
//! numbers). `--threads N` additionally times the morsel-parallel engine at
//! every power of two up to `N` (and `N` itself), each sample taken only
//! after asserting rows, work bits, span trees, and feedback streams are
//! identical to the serial engine. `--check` first reloads the previous
//! file at the output path, if any, and warns when a deterministic work
//! counter — overall or per thread count — regressed by more than 25%,
//! making perf drift visible in CI logs before the overwrite. `--trace-out
//! PATH` exports the serial verification pass's span events as a Chrome
//! trace, which CI feeds through `obsv_check`.

use bench::common::ExperimentScale;
use bench::experiments::perfbase;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--full") {
        ExperimentScale::full()
    } else if args.iter().any(|a| a == "--tiny") {
        ExperimentScale::tiny()
    } else {
        ExperimentScale::default_run()
    };
    let reps: usize = args
        .iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(5);
    let max_threads: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4);
    // Powers of two up to the maximum, plus the maximum itself: 6 ->
    // [1, 2, 4, 6].
    let mut thread_counts: Vec<usize> = (0..)
        .map(|p| 1usize << p)
        .take_while(|&t| t < max_threads)
        .collect();
    thread_counts.push(max_threads);
    let out: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // Repo root, independent of the invocation directory.
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_exec.json")
        });

    println!("== Perf baseline: columnar execution + shared-scan builds ==");
    let result = perfbase::run(&scale, reps, &thread_counts);
    result.print();

    if args.iter().any(|a| a == "--check") {
        match std::fs::read_to_string(&out) {
            Ok(previous) => match perfbase::check_against(&previous, &result) {
                Ok(warnings) if warnings.is_empty() => {
                    println!(
                        "perf check: work counters within budget of {}",
                        out.display()
                    );
                }
                Ok(warnings) => {
                    for w in &warnings {
                        eprintln!("warning: perf check: {w}");
                    }
                }
                Err(why) => println!("perf check skipped: {why}"),
            },
            Err(_) => println!(
                "perf check skipped: no previous baseline at {}",
                out.display()
            ),
        }
    }

    if let Some(trace_out) = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
    {
        let chrome = obsv::export::to_chrome(&result.trace_events);
        match std::fs::write(trace_out, chrome) {
            Ok(()) => println!("trace written to {trace_out}"),
            Err(e) => {
                eprintln!("error: cannot write {trace_out}: {e}");
                std::process::exit(1);
            }
        }
    }

    match std::fs::write(&out, result.to_json()) {
        Ok(()) => println!("results written to {}", out.display()),
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
}
