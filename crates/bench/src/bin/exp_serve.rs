//! Sharded serving layer under sustained load (see
//! `bench::experiments::serve`): a seeded TPC-D query+update stream routed
//! across N shards by [`serve::ServeCluster`], the largest table
//! hash-partitioned, tuning funded by the shared budget arbiter. Measures
//! steady-state throughput (QPS + cluster-merged p50/p99/p999), per-shard
//! tuning convergence under load, the 1-shard == unsharded bit-identity,
//! and a seed-fixed bit-identical replay at the requested shard count.
//!
//! Usage: `cargo run --release -p bench --bin exp_serve
//!         [--full | --tiny] [--shards N] [--ticks N] [--threads N]
//!         [--rounds N] [--budget W] [--out PATH]
//!         [--windows-out PATH] [--health-out PATH]`
//!
//! Writes `BENCH_serve.json` at the repository root by default (`--out`
//! overrides, which the CI smoke run uses). `--health-out` exports the
//! interleaved per-shard health stream (`obsv_check --health` validates it;
//! `obsv_top` renders the multi-shard dashboard); `--windows-out` exports
//! shard 0's per-tick windowed metric deltas (`obsv_check --windows`).

use bench::common::{flag_value, parse_threads, ExperimentScale};
use bench::experiments::serve;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--full") {
        ExperimentScale::full()
    } else if args.iter().any(|a| a == "--tiny") {
        ExperimentScale::tiny()
    } else {
        ExperimentScale::default_run()
    };
    let shards: usize = flag_value(&args, "--shards")
        .and_then(|n| n.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2);
    let ticks: u64 = flag_value(&args, "--ticks")
        .and_then(|n| n.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(6);
    let rounds: usize = flag_value(&args, "--rounds")
        .and_then(|n| n.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(3);
    let budget: f64 = flag_value(&args, "--budget")
        .and_then(|n| n.parse().ok())
        .filter(|&b| b > 0.0)
        .unwrap_or(500_000.0);
    let threads = parse_threads(&args).max(2);
    let out: PathBuf = flag_value(&args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // Repo root, independent of the invocation directory.
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json")
        });

    println!("== Sharded serving: router -> budget arbiter -> per-shard daemons ==");
    let (result, telemetry) = serve::run(&scale, shards, ticks, threads, rounds, budget);
    result.print();

    if !result.replay_identical {
        eprintln!("error: seed-fixed sharded replay was not bit-identical");
        std::process::exit(1);
    }
    if !result.one_shard_identical {
        eprintln!("error: 1-shard cluster diverged from the unsharded service");
        std::process::exit(1);
    }

    match std::fs::write(&out, result.to_json()) {
        Ok(()) => println!("results written to {}", out.display()),
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
    for (flag, contents, what) in [
        ("--windows-out", &telemetry.windows_jsonl, "window deltas"),
        (
            "--health-out",
            &telemetry.health_jsonl,
            "per-shard health snapshots",
        ),
    ] {
        if let Some(path) = flag_value(&args, flag) {
            match std::fs::write(&path, contents) {
                Ok(()) => println!("{what} written to {path}"),
                Err(e) => {
                    eprintln!("error: cannot write {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}
