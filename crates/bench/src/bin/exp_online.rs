//! Online lifecycle daemon end to end (see `bench::experiments::online`):
//! a seeded TPC-D query+update stream through [`autod::OnlineService`],
//! deterministic virtual-time ticks, a mid-run bulk update that triggers
//! staleness refreshes, convergence vs the offline tuner, and a seed-fixed
//! bit-identical rerun.
//!
//! Usage: `cargo run --release -p bench --bin exp_online
//!         [--full | --tiny] [--ticks N] [--threads N] [--budget W]
//!         [--out PATH] [--trace-out PATH] [--metrics-out PATH]
//!         [--journal-out PATH] [--windows-out PATH] [--health-out PATH]
//!         [--slowlog-out PATH]`
//!
//! Writes `BENCH_online.json` at the repository root by default (`--out`
//! overrides, which the CI smoke run uses). `--threads N` (N > 1) adds a
//! wall-clock pass with N query threads racing the daemon.
//!
//! The telemetry flags export the instrumented drive's production streams:
//! per-tick windowed metric deltas (`--windows-out`, `obsv_check
//! --windows`), per-tick health snapshots (`--health-out`, `obsv_check
//! --health`, rendered by `obsv_top`), and the slow-query reservoir's span
//! trees (`--slowlog-out`, `obsv_check --jsonl`).

use bench::common::{flag_value, parse_threads, BenchObs, ExperimentScale};
use bench::experiments::online;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--full") {
        ExperimentScale::full()
    } else if args.iter().any(|a| a == "--tiny") {
        ExperimentScale::tiny()
    } else {
        ExperimentScale::default_run()
    };
    let ticks: u64 = flag_value(&args, "--ticks")
        .and_then(|n| n.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(6);
    let budget: f64 = flag_value(&args, "--budget")
        .and_then(|n| n.parse().ok())
        .filter(|&b| b > 0.0)
        .unwrap_or(500_000.0);
    let threads = parse_threads(&args);
    let out: PathBuf = flag_value(&args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // Repo root, independent of the invocation directory.
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_online.json")
        });
    let bench_obs = BenchObs::from_args(&args);

    println!("== Online lifecycle: monitor -> staleness -> incremental MNSA ==");
    let (result, journal, telemetry) =
        online::run(&scale, ticks, threads, budget, bench_obs.obs.clone());
    result.print();

    if !result.rerun_identical {
        eprintln!("error: seed-fixed single-threaded rerun was not bit-identical");
        std::process::exit(1);
    }

    match std::fs::write(&out, result.to_json()) {
        Ok(()) => println!("results written to {}", out.display()),
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
    for (flag, contents, what) in [
        ("--windows-out", &telemetry.windows_jsonl, "window deltas"),
        ("--health-out", &telemetry.health_jsonl, "health snapshots"),
        (
            "--slowlog-out",
            &telemetry.slowlog_jsonl,
            "slow-query trace",
        ),
    ] {
        if let Some(path) = flag_value(&args, flag) {
            match std::fs::write(&path, contents) {
                Ok(()) => println!("{what} written to {path}"),
                Err(e) => {
                    eprintln!("error: cannot write {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    bench_obs.finish(Some(&journal));
}
