//! Regenerates Figure 3 (see `bench::experiments::fig3`).
//!
//! Usage: `cargo run -p bench --bin exp_fig3 [--full]`

use bench::common::{report, ExperimentScale};
use bench::experiments::fig3;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scale = if full {
        ExperimentScale::full()
    } else {
        ExperimentScale::default_run()
    };
    println!("== Figure 3: Candidate Statistics algorithm vs Exhaustive ==");
    let results = fig3::run(&scale);
    report(&fig3::rows(&results), Some("results/fig3.jsonl"));
}
