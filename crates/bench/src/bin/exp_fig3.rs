//! Regenerates Figure 3 (see `bench::experiments::fig3`).
//!
//! Usage: `cargo run -p bench --bin exp_fig3 [--full] [--threads N]`

use bench::common::{parse_threads, report, ExperimentScale};
use bench::experiments::fig3;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let threads = parse_threads(&args);
    let scale = if full {
        ExperimentScale::full()
    } else {
        ExperimentScale::default_run()
    };
    println!("== Figure 3: Candidate Statistics algorithm vs Exhaustive ==");
    let results = fig3::run(&scale, threads);
    report(&fig3::rows(&results), Some("results/fig3.jsonl"));
}
