//! Regenerates Figure 3 (see `bench::experiments::fig3`).
//!
//! Usage: `cargo run -p bench --bin exp_fig3 [--full | --tiny] [--threads N]
//!         [--trace-out PATH] [--metrics-out PATH]`

use bench::common::{parse_threads, report, BenchObs, ExperimentScale};
use bench::experiments::fig3;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = parse_threads(&args);
    let scale = if args.iter().any(|a| a == "--full") {
        ExperimentScale::full()
    } else if args.iter().any(|a| a == "--tiny") {
        ExperimentScale::tiny()
    } else {
        ExperimentScale::default_run()
    };
    let bench_obs = BenchObs::from_args(&args);
    println!("== Figure 3: Candidate Statistics algorithm vs Exhaustive ==");
    let results = fig3::run_obs(&scale, threads, &bench_obs.obs);
    report(&fig3::rows(&results), Some("results/fig3.jsonl"));
    bench_obs.finish(None);
}
