//! Estimation-quality benchmark: per-operator q-error quantiles and
//! plan-cost regret on the four adversarial workload regimes (uniform /
//! zipf / correlated / star), each under bare, heuristic, and MNSA-tuned
//! statistics catalogs (see `bench::experiments::cardbench`).
//!
//! Usage: `cargo run --release -p bench --bin exp_cardbench
//!         [--full | --tiny] [--out PATH]
//!         [--trace-out PATH] [--metrics-out PATH]`
//!
//! Writes `BENCH_cardbench.json` at the repository root by default (`--out`
//! overrides, which the CI smoke run uses to avoid clobbering the recorded
//! numbers). The run is deterministic under the built-in seed and audits
//! itself: a re-run of one regime must reproduce its cells bit-identically,
//! and the process exits non-zero if it does not.

use bench::common::BenchObs;
use bench::experiments::cardbench;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = cardbench::cli_scale(&args);
    let out: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // Repo root, independent of the invocation directory.
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_cardbench.json")
        });

    let bench_obs = BenchObs::from_args(&args);
    println!("== Estimation quality: q-error + plan-cost regret ==");
    let result = cardbench::run_with_obs(&scale, &bench_obs.obs);
    result.print();
    bench_obs.finish(None);

    match std::fs::write(&out, result.to_json()) {
        Ok(()) => println!("results written to {}", out.display()),
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
    if !result.deterministic {
        eprintln!("error: determinism audit failed: regime re-run changed the numbers");
        std::process::exit(1);
    }
}
