//! Aging policy evaluation (see `bench::experiments::aging`).
//!
//! Usage: `cargo run -p bench --bin exp_aging [--full]`

use bench::common::{report, ExperimentScale};
use bench::experiments::aging;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scale = if full {
        ExperimentScale::full()
    } else {
        ExperimentScale::default_run()
    };
    println!("== Aging: dampened re-creation of recently dropped statistics ==");
    let results = aging::run(&scale);
    for r in &results {
        println!(
            "{:<16} recreations per epoch {:?}",
            r.policy, r.recreations_per_epoch
        );
    }
    report(&aging::rows(&results), Some("results/aging.jsonl"));
}
