//! Regenerates the §1 intro experiment (see `bench::experiments::intro`).
//!
//! Usage: `cargo run -p bench --bin exp_intro [--full]`

use bench::common::{report, ExperimentScale};
use bench::experiments::intro;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scale = if full {
        ExperimentScale::full()
    } else {
        ExperimentScale::default_run()
    };
    println!("== Intro experiment: do statistics change TPC-D plans? ==");
    let results = intro::run(&scale);
    for r in &results {
        println!(
            "Q{:<2} tree_changed={:<5} estimate_shifted={:<5} est cost {:>12.1} -> {:>12.1}",
            r.query, r.plan_changed, r.estimate_shifted, r.cost_before, r.cost_after
        );
    }
    report(&intro::rows(&results), Some("results/intro.jsonl"));
}
