//! Regenerates Figure 4 (see `bench::experiments::fig4`).
//!
//! Usage: `cargo run -p bench --bin exp_fig4 [--full]`

use bench::common::{report, ExperimentScale};
use bench::experiments::fig4;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let ablation = std::env::args().any(|a| a == "--ablation");
    let scale = if full {
        ExperimentScale::full()
    } else {
        ExperimentScale::default_run()
    };
    if ablation {
        println!("== Figure 4 ablation: FindNextStatToBuild node order ==");
        let results = fig4::run_ablation(&scale);
        report(
            &fig4::ablation_rows(&results),
            Some("results/fig4_ablation.jsonl"),
        );
        return;
    }
    println!("== Figure 4: MNSA vs create-all-candidates (t = 20%) ==");
    let results = fig4::run(&scale);
    for r in &results {
        println!(
            "{:<9} {:<12} [{:<13}] stats {:>3} -> {:>3}",
            r.database, r.workload, r.mode, r.all_stats_built, r.mnsa_stats_built
        );
    }
    report(&fig4::rows(&results), Some("results/fig4.jsonl"));
}
