//! Shrinking Set evaluation (see `bench::experiments::shrink`).
//!
//! Usage: `cargo run -p bench --bin exp_shrink [--full | --tiny]
//!         [--trace-out PATH] [--metrics-out PATH] [--journal-out PATH]`

use bench::common::{report, BenchObs, ExperimentScale};
use bench::experiments::shrink;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--full") {
        ExperimentScale::full()
    } else if args.iter().any(|a| a == "--tiny") {
        ExperimentScale::tiny()
    } else {
        ExperimentScale::default_run()
    };
    let bench_obs = BenchObs::from_args(&args);
    println!("== Shrinking Set: guaranteed essential sets ==");
    let (r, journal) = shrink::run_obs(&scale, &bench_obs.obs);
    println!(
        "optimizer calls spent by Shrinking Set: {}",
        r.shrink_optimizer_calls
    );
    report(&shrink::rows(&r), Some("results/shrink.jsonl"));
    bench_obs.finish(Some(&journal));
}
