//! Shrinking Set evaluation (see `bench::experiments::shrink`).
//!
//! Usage: `cargo run -p bench --bin exp_shrink [--full]`

use bench::common::{report, ExperimentScale};
use bench::experiments::shrink;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scale = if full {
        ExperimentScale::full()
    } else {
        ExperimentScale::default_run()
    };
    println!("== Shrinking Set: guaranteed essential sets ==");
    let r = shrink::run(&scale);
    println!(
        "optimizer calls spent by Shrinking Set: {}",
        r.shrink_optimizer_calls
    );
    report(&shrink::rows(&r), Some("results/shrink.jsonl"));
}
