//! t / ε parameter sweep (see `bench::experiments::tsweep`).
//!
//! Usage: `cargo run -p bench --bin exp_tsweep [--full | --tiny] [--threads N]
//!         [--trace-out PATH] [--metrics-out PATH] [--journal-out PATH]`

use bench::common::{parse_threads, report, BenchObs, ExperimentScale};
use bench::experiments::tsweep;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = parse_threads(&args);
    let scale = if args.iter().any(|a| a == "--full") {
        ExperimentScale::full()
    } else if args.iter().any(|a| a == "--tiny") {
        ExperimentScale::tiny()
    } else {
        ExperimentScale::default_run()
    };
    let bench_obs = BenchObs::from_args(&args);
    println!("== t-Optimizer-Cost threshold and epsilon sweep ==");
    let (results, journal) = tsweep::run_obs(&scale, threads, &bench_obs.obs);
    report(&tsweep::rows(&results), Some("results/tsweep.jsonl"));
    bench_obs.finish(Some(&journal));
}
