//! t / ε parameter sweep (see `bench::experiments::tsweep`).
//!
//! Usage: `cargo run -p bench --bin exp_tsweep [--full]`

use bench::common::{report, ExperimentScale};
use bench::experiments::tsweep;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scale = if full {
        ExperimentScale::full()
    } else {
        ExperimentScale::default_run()
    };
    println!("== t-Optimizer-Cost threshold and epsilon sweep ==");
    let results = tsweep::run(&scale);
    report(&tsweep::rows(&results), Some("results/tsweep.jsonl"));
}
