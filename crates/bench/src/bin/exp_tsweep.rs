//! t / ε parameter sweep (see `bench::experiments::tsweep`).
//!
//! Usage: `cargo run -p bench --bin exp_tsweep [--full] [--threads N]`

use bench::common::{parse_threads, report, ExperimentScale};
use bench::experiments::tsweep;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let threads = parse_threads(&args);
    let scale = if full {
        ExperimentScale::full()
    } else {
        ExperimentScale::default_run()
    };
    println!("== t-Optimizer-Cost threshold and epsilon sweep ==");
    let results = tsweep::run(&scale, threads);
    report(&tsweep::rows(&results), Some("results/tsweep.jsonl"));
}
