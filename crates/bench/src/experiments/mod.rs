//! One module per paper table/figure.

pub mod aging;
pub mod cardbench;
pub mod fig3;
pub mod fig4;
pub mod intro;
pub mod online;
pub mod perfbase;
pub mod serve;
pub mod shrink;
pub mod table1;
pub mod tsweep;
