//! Aging (§6) — "statistics with high creation/update cost that have been
//! dropped after being found non-essential for a workload should not be
//! recreated immediately if the same (or similar) workload repeats", while
//! "optimization of significantly expensive queries [is] not adversely
//! affected". The paper defers the evaluation to its journal version [5];
//! this experiment reproduces the intended behavior curve: re-creation work
//! across repeating epochs with aging off vs. on, and the execution-cost
//! price paid for the dampening.

use crate::common::{bind_all, execute_workload, queries_of, ExperimentScale, Row};
use autostats::{MnsaConfig, MnsaEngine};
use datagen::{build_tpcd, Complexity, RagsGenerator, TpcdConfig, WorkloadSpec, ZipfSpec};
use stats::{AgingPolicy, StatsCatalog};

/// One policy's trajectory over repeating epochs.
#[derive(Debug, Clone)]
pub struct AgingResult {
    pub policy: String,
    /// Statistics re-created per epoch (after the initial tuning epoch).
    pub recreations_per_epoch: Vec<usize>,
    /// Creation work per epoch.
    pub creation_work_per_epoch: Vec<f64>,
    /// Execution work of the final epoch's workload.
    pub final_exec_work: f64,
}

/// Repeat the same workload for `epochs` rounds; after each round every
/// statistic is physically dropped (simulating an aggressive update-driven
/// drop cycle), so the next round must decide whether to re-create.
pub fn run(scale: &ExperimentScale) -> Vec<AgingResult> {
    let db = build_tpcd(&TpcdConfig {
        scale: scale.scale,
        zipf: ZipfSpec::Mixed,
        seed: scale.seed,
    });
    let spec = WorkloadSpec::new(0, Complexity::Simple, scale.workload_len).with_seed(scale.seed);
    let stmts = RagsGenerator::generate(&db, &spec);
    let bound = bind_all(&db, &stmts);
    let queries = queries_of(&bound);
    let epochs = 4usize;

    let policies: Vec<(String, Option<AgingPolicy>)> = vec![
        ("no-aging".into(), None),
        (
            "aging(window=3)".into(),
            Some(AgingPolicy {
                window_epochs: 3,
                expensive_query_cost: f64::INFINITY,
            }),
        ),
    ];

    policies
        .into_iter()
        .map(|(name, aging)| {
            let engine = MnsaEngine::new(MnsaConfig {
                aging,
                ..Default::default()
            });
            let mut catalog = StatsCatalog::new();
            let mut recreations = Vec::new();
            let mut work = Vec::new();
            for _ in 0..epochs {
                let before_work = catalog.creation_work();
                let mut created = 0usize;
                for q in &queries {
                    created += engine
                        .run_query(&db, &mut catalog, q)
                        .expect("mnsa tunes")
                        .created
                        .len();
                }
                recreations.push(created);
                work.push(catalog.creation_work() - before_work);
                // Aggressive drop cycle: everything goes.
                for id in catalog.active_ids() {
                    catalog.physically_drop(id);
                }
                catalog.advance_epoch();
            }
            // Final epoch executed with whatever the policy left visible.
            let final_exec_work = execute_workload(&db, &catalog, &bound);
            AgingResult {
                policy: name,
                recreations_per_epoch: recreations,
                creation_work_per_epoch: work,
                final_exec_work,
            }
        })
        .collect()
}

/// Convert to report rows.
pub fn rows(results: &[AgingResult]) -> Vec<Row> {
    let base_exec = results
        .first()
        .map(|r| r.final_exec_work)
        .unwrap_or(1.0)
        .max(1.0);
    results
        .iter()
        .map(|r| {
            let after_first: f64 = r.creation_work_per_epoch[1..].iter().sum();
            Row {
                experiment: "aging".into(),
                database: "TPCD_MIX".into(),
                workload: r.policy.clone(),
                metric: format!(
                    "re-creation work after epoch 1 (recreations {:?}, exec +{:.1}%)",
                    r.recreations_per_epoch,
                    (r.final_exec_work - base_exec) / base_exec * 100.0
                ),
                measured: after_first,
                paper_band: "aging dampens re-creation (§6)".into(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aging_dampens_recreation_on_repeat_workloads() {
        let mut scale = ExperimentScale::tiny();
        scale.workload_len = 12;
        let results = run(&scale);
        let no_aging = results.iter().find(|r| r.policy == "no-aging").unwrap();
        let aging = results.iter().find(|r| r.policy != "no-aging").unwrap();
        // Without aging, every epoch re-creates from scratch; with aging,
        // epochs inside the window create strictly less.
        let na: usize = no_aging.recreations_per_epoch[1..].iter().sum();
        let ag: usize = aging.recreations_per_epoch[1..].iter().sum();
        assert!(
            ag < na || na == 0,
            "aging did not dampen re-creation: {ag} vs {na}"
        );
        // First epoch is identical under both policies.
        assert_eq!(
            no_aging.recreations_per_epoch[0],
            aging.recreations_per_epoch[0]
        );
    }
}
