//! Shrinking Set (§5.2) — the guaranteed-essential-set path.
//!
//! The paper defers the detailed Shrinking Set evaluation to its journal
//! version [5]; what it *does* state, we verify: MNSA followed by Shrinking
//! Set leaves an essential set (minimal, equivalent to the full set), and we
//! compare the residual statistics count / update cost against MNSA and
//! MNSA/D as the offline-policy pipeline of §6 suggests.

use crate::common::{bind_all, execute_workload_obs, pct_change, queries_of, ExperimentScale, Row};
use autostats::policy::optimizer_call_work;
use autostats::{shrinking_set_traced, Equivalence, MnsaConfig, MnsaEngine, SessionReport};
use datagen::{build_tpcd, Complexity, RagsGenerator, TpcdConfig, WorkloadSpec, ZipfSpec};
use optimizer::Optimizer;
use stats::StatsCatalog;

/// Result of the offline pipeline comparison.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    pub mnsa_stats: usize,
    pub mnsad_stats: usize,
    pub shrunk_stats: usize,
    pub mnsa_update_cost: f64,
    pub shrunk_update_cost: f64,
    pub exec_increase_pct: f64,
    pub shrink_optimizer_calls: usize,
}

/// Run the comparison on TPCD_MIX with a query-only complex workload.
pub fn run(scale: &ExperimentScale) -> ShrinkResult {
    run_obs(scale, &obsv::Obs::disabled()).0
}

/// [`run`] under an observability context. Also returns the tuning-session
/// journal of the MNSA pass plus the shrinking pass, built from the
/// per-query outcomes (bit-identical with tracing on or off).
pub fn run_obs(scale: &ExperimentScale, obs: &obsv::Obs) -> (ShrinkResult, SessionReport) {
    let db = build_tpcd(&TpcdConfig {
        scale: scale.scale,
        zipf: ZipfSpec::Mixed,
        seed: scale.seed,
    });
    let spec = WorkloadSpec::new(0, Complexity::Complex, scale.workload_len).with_seed(scale.seed);
    let stmts = RagsGenerator::generate(&db, &spec);
    let bound = bind_all(&db, &stmts);
    let queries = queries_of(&bound);
    let optimizer = Optimizer::default();
    let mut journal = SessionReport::default();

    // MNSA alone.
    let engine = MnsaEngine::new(MnsaConfig::default()).with_obs(obs.clone());
    let mut cat = StatsCatalog::new();
    cat.set_obs(obs);
    for q in &queries {
        let outcome = engine.run_query(&db, &mut cat, q).expect("mnsa tunes");
        journal.record_query(q.relations.len(), &outcome);
        journal.totals.optimizer_calls += outcome.optimizer_calls;
        journal.totals.statistics_created += outcome.created.len();
        journal.totals.statistics_drop_listed += outcome.drop_listed.len();
        journal.totals.overhead_work +=
            outcome.optimizer_calls as f64 * optimizer_call_work(q.relations.len());
    }
    journal.totals.creation_work = cat.creation_work();
    let mnsa_ids = cat.active_ids();
    let mnsa_update_cost = cat.update_cost_of(&db, mnsa_ids.iter().copied());
    let exec_before = execute_workload_obs(&db, &cat, &bound, obs);

    // MNSA/D for comparison (independent catalog).
    let mnsad = MnsaEngine::new(MnsaConfig::default().with_drop_detection()).with_obs(obs.clone());
    let mut cat_d = StatsCatalog::new();
    cat_d.set_obs(obs);
    for q in &queries {
        mnsad.run_query(&db, &mut cat_d, q).expect("mnsa tunes");
    }

    // Shrinking Set on top of the MNSA catalog.
    let out = shrinking_set_traced(
        &db,
        &mut cat,
        &optimizer,
        &queries,
        &mnsa_ids,
        Equivalence::paper_default(),
        true,
        obs,
    )
    .expect("shrinking set runs");
    let shrunk_update_cost = cat.update_cost_of(&db, out.essential.iter().copied());
    let exec_after = execute_workload_obs(&db, &cat, &bound, obs);
    journal.shrink_removed = mnsa_ids.len() - out.essential.len();
    journal.shrink_optimizer_calls = out.optimizer_calls;

    let result = ShrinkResult {
        mnsa_stats: mnsa_ids.len(),
        mnsad_stats: cat_d.active_count(),
        shrunk_stats: out.essential.len(),
        mnsa_update_cost,
        shrunk_update_cost,
        exec_increase_pct: pct_change(exec_before, exec_after),
        shrink_optimizer_calls: out.optimizer_calls,
    };
    (result, journal)
}

/// Convert to report rows.
pub fn rows(r: &ShrinkResult) -> Vec<Row> {
    vec![
        Row {
            experiment: "shrink".into(),
            database: "TPCD_MIX".into(),
            workload: "U0-C".into(),
            metric: format!(
                "statistics: MNSA={} MNSA/D={} ShrinkingSet={}",
                r.mnsa_stats, r.mnsad_stats, r.shrunk_stats
            ),
            measured: r.shrunk_stats as f64,
            paper_band: "essential set (minimal)".into(),
        },
        Row {
            experiment: "shrink".into(),
            database: "TPCD_MIX".into(),
            workload: "U0-C".into(),
            metric: "update-cost reduction vs MNSA (%)".into(),
            measured: crate::common::pct_reduction(r.mnsa_update_cost, r.shrunk_update_cost),
            paper_band: ">= MNSA/D's reduction".into(),
        },
        Row {
            experiment: "shrink".into(),
            database: "TPCD_MIX".into(),
            workload: "U0-C".into(),
            metric: "execution cost increase after shrink (%)".into(),
            measured: r.exec_increase_pct,
            paper_band: "small (t=20% equivalence)".into(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinking_never_keeps_more_than_mnsa() {
        let mut scale = ExperimentScale::tiny();
        scale.workload_len = 15;
        let r = run(&scale);
        assert!(r.shrunk_stats <= r.mnsa_stats);
        assert!(r.shrunk_update_cost <= r.mnsa_update_cost + 1e-9);
    }
}
