//! Figure 4 — effectiveness of MNSA.
//!
//! Compares (a) creating *all* statistics proposed by the candidate
//! algorithm against (b) MNSA over the same candidates, with MNSA's
//! optimizer-call overhead included in its creation time, t = 20%. The paper
//! reports 30–45% creation-time reduction with workload execution cost
//! increasing by no more than 2%; a single-column-only variant still saves
//! more than 30%.

use crate::common::{
    bind_all, create_all, execute_workload, pct_change, pct_reduction, queries_of, ExperimentScale,
    Row,
};
use autostats::policy::optimizer_call_work;
use autostats::{
    candidate_statistics, single_column_candidates, CandidateMode, MnsaConfig, MnsaEngine,
};
use datagen::{standard_databases, Complexity, RagsGenerator, WorkloadSpec};
use query::Statement;
use stats::StatsCatalog;
use storage::Database;

/// One (database, workload, mode) measurement.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    pub database: String,
    pub workload: String,
    /// "heuristic" or "single-column".
    pub mode: String,
    pub create_all_work: f64,
    pub mnsa_work: f64,
    pub mnsa_stats_built: usize,
    pub all_stats_built: usize,
    pub creation_reduction_pct: f64,
    pub exec_increase_pct: f64,
}

fn workloads(db: &Database, scale: &ExperimentScale) -> Vec<(String, Vec<Statement>)> {
    [
        WorkloadSpec::new(25, Complexity::Simple, scale.workload_len).with_seed(scale.seed),
        WorkloadSpec::new(0, Complexity::Complex, scale.workload_len).with_seed(scale.seed + 1),
        WorkloadSpec::new(50, Complexity::Simple, scale.workload_len).with_seed(scale.seed + 2),
    ]
    .into_iter()
    .map(|spec| (spec.to_string(), RagsGenerator::generate(db, &spec)))
    .collect()
}

/// Measure one (database, workload) pair under a candidate mode.
pub fn measure(
    db: &Database,
    name: &str,
    wl_name: &str,
    stmts: &[Statement],
    mode: CandidateMode,
) -> Fig4Result {
    let bound = bind_all(db, stmts);
    let queries = queries_of(&bound);

    // (a) create all candidates.
    let mut cat_all = StatsCatalog::new();
    let mut work_all = 0.0;
    for q in &queries {
        let cands = match mode {
            CandidateMode::SingleColumnOnly => single_column_candidates(q),
            _ => candidate_statistics(q),
        };
        work_all += create_all(db, &mut cat_all, cands);
    }

    // (b) MNSA, overhead included.
    let engine = MnsaEngine::new(MnsaConfig {
        candidate_mode: mode,
        ..Default::default()
    });
    let mut cat_mnsa = StatsCatalog::new();
    let mut mnsa_work = 0.0;
    let mut built = 0usize;
    for q in &queries {
        let before = cat_mnsa.creation_work();
        let outcome = engine.run_query(db, &mut cat_mnsa, q).expect("mnsa tunes");
        built += outcome.created.len();
        mnsa_work += (cat_mnsa.creation_work() - before)
            + outcome.optimizer_calls as f64 * optimizer_call_work(q.relations.len());
    }

    let exec_all = execute_workload(db, &cat_all, &bound);
    let exec_mnsa = execute_workload(db, &cat_mnsa, &bound);

    Fig4Result {
        database: name.to_string(),
        workload: wl_name.to_string(),
        mode: match mode {
            CandidateMode::SingleColumnOnly => "single-column".into(),
            _ => "heuristic".into(),
        },
        create_all_work: work_all,
        mnsa_work,
        mnsa_stats_built: built,
        all_stats_built: cat_all.active_count(),
        creation_reduction_pct: pct_reduction(work_all, mnsa_work),
        exec_increase_pct: pct_change(exec_all, exec_mnsa),
    }
}

/// Run Figure 4 across the standard databases (heuristic candidates), plus
/// the single-column variant on TPCD_MIX.
pub fn run(scale: &ExperimentScale) -> Vec<Fig4Result> {
    let mut out = Vec::new();
    for (name, db) in standard_databases(scale.scale, scale.seed) {
        for (wl_name, stmts) in workloads(&db, scale) {
            out.push(measure(
                &db,
                &name,
                &wl_name,
                &stmts,
                CandidateMode::Heuristic,
            ));
        }
        if name == "TPCD_MIX" {
            for (wl_name, stmts) in workloads(&db, scale) {
                out.push(measure(
                    &db,
                    &name,
                    &wl_name,
                    &stmts,
                    CandidateMode::SingleColumnOnly,
                ));
            }
        }
    }
    out
}

/// One ablation measurement: how the `FindNextStatToBuild` node order
/// affects MNSA's creation work (DESIGN.md §5 ablation).
#[derive(Debug, Clone)]
pub struct AblationResult {
    pub order: String,
    pub mnsa_work: f64,
    pub stats_built: usize,
    pub optimizer_calls: usize,
}

/// Compare the §4.2 most-expensive-node heuristic against syntactic and
/// cheapest-node orders on TPCD_MIX with a complex query-only workload.
pub fn run_ablation(scale: &ExperimentScale) -> Vec<AblationResult> {
    use autostats::NextStatOrder;
    use datagen::build_tpcd;
    use datagen::TpcdConfig;
    use datagen::ZipfSpec;

    let db = build_tpcd(&TpcdConfig {
        scale: scale.scale,
        zipf: ZipfSpec::Mixed,
        seed: scale.seed,
    });
    let spec = WorkloadSpec::new(0, Complexity::Complex, scale.workload_len).with_seed(scale.seed);
    let stmts = RagsGenerator::generate(&db, &spec);
    let bound = bind_all(&db, &stmts);
    let queries = queries_of(&bound);

    [
        ("most-expensive", NextStatOrder::MostExpensiveNode),
        ("syntactic", NextStatOrder::Syntactic),
        ("cheapest", NextStatOrder::CheapestNode),
    ]
    .into_iter()
    .map(|(name, order)| {
        let engine = MnsaEngine::new(MnsaConfig {
            next_stat_order: order,
            ..Default::default()
        });
        let mut cat = StatsCatalog::new();
        let mut work = 0.0;
        let mut calls = 0usize;
        for q in &queries {
            let before = cat.creation_work();
            let outcome = engine.run_query(&db, &mut cat, q).expect("mnsa tunes");
            calls += outcome.optimizer_calls;
            work += (cat.creation_work() - before)
                + outcome.optimizer_calls as f64 * optimizer_call_work(q.relations.len());
        }
        AblationResult {
            order: name.to_string(),
            mnsa_work: work,
            stats_built: cat.active_count(),
            optimizer_calls: calls,
        }
    })
    .collect()
}

/// Ablation rows.
pub fn ablation_rows(results: &[AblationResult]) -> Vec<Row> {
    results
        .iter()
        .map(|r| Row {
            experiment: "fig4-ablation".into(),
            database: "TPCD_MIX".into(),
            workload: format!("order={}", r.order),
            metric: format!(
                "MNSA total work (stats={}, optimizer calls={})",
                r.stats_built, r.optimizer_calls
            ),
            measured: r.mnsa_work,
            paper_band: "most-expensive should be cheapest-or-equal".into(),
        })
        .collect()
}

/// Convert to report rows.
pub fn rows(results: &[Fig4Result]) -> Vec<Row> {
    let mut rows = Vec::new();
    for r in results {
        let (band_red, band_exec) = if r.mode == "single-column" {
            ("> 30%", "small")
        } else {
            ("30-45%", "<= 2%")
        };
        rows.push(Row {
            experiment: "fig4".into(),
            database: r.database.clone(),
            workload: format!("{} [{}]", r.workload, r.mode),
            metric: "MNSA creation-time reduction (%)".into(),
            measured: r.creation_reduction_pct,
            paper_band: band_red.into(),
        });
        rows.push(Row {
            experiment: "fig4".into(),
            database: r.database.clone(),
            workload: format!("{} [{}]", r.workload, r.mode),
            metric: "workload execution cost increase (%)".into(),
            measured: r.exec_increase_pct,
            paper_band: band_exec.into(),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{build_tpcd, TpcdConfig, ZipfSpec};

    #[test]
    fn mnsa_saves_creation_work() {
        let scale = ExperimentScale::tiny();
        let db = build_tpcd(&TpcdConfig {
            scale: 0.003,
            zipf: ZipfSpec::Mixed,
            seed: scale.seed,
        });
        let (wl_name, stmts) = workloads(&db, &scale).remove(1); // complex
        let r = measure(&db, "TPCD_MIX", &wl_name, &stmts, CandidateMode::Heuristic);
        assert!(
            r.mnsa_stats_built <= r.all_stats_built,
            "MNSA built more statistics ({}) than create-all ({})",
            r.mnsa_stats_built,
            r.all_stats_built
        );
        assert!(
            r.creation_reduction_pct > 0.0,
            "MNSA did not reduce creation work: {:?}",
            r
        );
    }

    #[test]
    fn ablation_orders_all_terminate() {
        let mut scale = ExperimentScale::tiny();
        scale.workload_len = 10;
        let results = run_ablation(&scale);
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(r.mnsa_work > 0.0, "{}: no work recorded", r.order);
        }
        // The paper's heuristic should not do materially more work than the
        // adversarial cheapest-node order.
        let expensive = results
            .iter()
            .find(|r| r.order == "most-expensive")
            .unwrap();
        let cheapest = results.iter().find(|r| r.order == "cheapest").unwrap();
        assert!(expensive.mnsa_work <= cheapest.mnsa_work * 1.5);
    }

    #[test]
    fn single_column_variant_also_saves() {
        let scale = ExperimentScale::tiny();
        let db = build_tpcd(&TpcdConfig {
            scale: 0.003,
            zipf: ZipfSpec::Fixed(2.0),
            seed: scale.seed,
        });
        let (wl_name, stmts) = workloads(&db, &scale).remove(0);
        let r = measure(
            &db,
            "TPCD_2",
            &wl_name,
            &stmts,
            CandidateMode::SingleColumnOnly,
        );
        assert!(r.creation_reduction_pct >= 0.0);
    }
}
