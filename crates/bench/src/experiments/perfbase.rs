//! Performance baseline: columnar batch execution and shared-scan builds
//! against their retained pre-tentpole implementations.
//!
//! Unlike the paper-figure experiments, this one measures the *harness
//! itself*: how fast the deterministic interpreter executes a workload and
//! how fast the catalog builds a round of statistics. Both the old and the
//! new implementation are alive in the tree — the row-at-a-time reference
//! interpreter ([`executor::execute_plan_reference`]) and the serial
//! `create_statistic` loop — so the pre-/post-tentpole numbers are measured
//! live in one run and recorded side by side in `BENCH_exec.json`.
//!
//! Every timed pair is also verified on the spot: identical `ExecOutput`
//! rows and bit-identical `work` for the two executors, identical catalog
//! snapshots and bit-identical creation work for the two build paths. The
//! speedups are real only because the results are provably the same.

use crate::common::{bind_all, queries_of, ExperimentScale};
use autostats::candidate_statistics;
use datagen::{build_tpcd, Complexity, RagsGenerator, TpcdConfig, WorkloadSpec, ZipfSpec};
use executor::{execute_plan, execute_plan_opts, execute_plan_reference, ExecOptions};
use obsv::trace::canonical_signature;
use optimizer::{OptimizeOptions, Optimizer, PlanNode};
use query::BoundSelect;
use stats::{StatDescriptor, StatsCatalog};
use std::time::Instant;
use storage::{Database, TableId};

/// One morsel-parallel execution sample: the workload timed at a fixed
/// thread count, after proving the results identical to the serial engine.
#[derive(Debug, Clone)]
pub struct ThreadSample {
    pub threads: usize,
    /// Median wall-clock milliseconds for the columnar engine at this
    /// thread count.
    pub columnar_ms: f64,
    /// Total deterministic work at this thread count — asserted bit-equal
    /// to the serial engine's before timing, so any drift between recorded
    /// baselines is a real behavior change, never scheduling noise.
    pub work: f64,
}

/// The measured baseline, one struct per run.
#[derive(Debug, Clone)]
pub struct PerfbaseResult {
    pub scale: f64,
    pub queries: usize,
    pub reps: usize,
    /// Median wall-clock milliseconds to execute the workload row-at-a-time
    /// (pre-tentpole path).
    pub exec_reference_ms: f64,
    /// Median wall-clock milliseconds for the columnar batch engine.
    pub exec_columnar_ms: f64,
    /// Total deterministic execution work (identical for both engines,
    /// verified to the bit).
    pub exec_work: f64,
    pub build_tables: usize,
    pub build_statistics: usize,
    /// Median wall-clock milliseconds for one-at-a-time statistic creation
    /// (pre-tentpole path).
    pub build_serial_ms: f64,
    /// Median wall-clock milliseconds for shared-scan batched creation.
    pub build_batched_ms: f64,
    /// Total deterministic creation work (identical for both paths,
    /// verified to the bit).
    pub build_creation_work: f64,
    /// Morsel-parallel executor timings per thread count (empty when the
    /// run sampled no thread counts).
    pub thread_samples: Vec<ThreadSample>,
    /// Span events from the serial observed verification pass — exportable
    /// via `obsv::export::to_chrome` so the CI smoke run can schema-check
    /// the trace with `obsv_check`. Not part of the JSON baseline.
    pub trace_events: Vec<obsv::Event>,
}

impl PerfbaseResult {
    pub fn exec_speedup(&self) -> f64 {
        self.exec_reference_ms / self.exec_columnar_ms.max(1e-9)
    }

    pub fn build_speedup(&self) -> f64 {
        self.build_serial_ms / self.build_batched_ms.max(1e-9)
    }

    /// The whole result as one JSON object (hand-rolled; no serde_json
    /// offline).
    pub fn to_json(&self) -> String {
        let threads_json = self
            .thread_samples
            .iter()
            .map(|s| {
                format!(
                    "      {{ \"threads\": {}, \"columnar_ms\": {:.3}, \"speedup\": {:.2}, \"work\": {} }}",
                    s.threads,
                    s.columnar_ms,
                    self.exec_reference_ms / s.columnar_ms.max(1e-9),
                    s.work
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            concat!(
                "{{\n",
                "  \"experiment\": \"perfbase\",\n",
                "  \"scale\": {},\n",
                "  \"queries\": {},\n",
                "  \"reps\": {},\n",
                "  \"exec\": {{\n",
                "    \"reference_ms\": {:.3},\n",
                "    \"columnar_ms\": {:.3},\n",
                "    \"speedup\": {:.2},\n",
                "    \"work\": {},\n",
                "    \"threads\": [\n{}\n    ]\n",
                "  }},\n",
                "  \"build\": {{\n",
                "    \"tables\": {},\n",
                "    \"statistics\": {},\n",
                "    \"serial_ms\": {:.3},\n",
                "    \"batched_ms\": {:.3},\n",
                "    \"speedup\": {:.2},\n",
                "    \"creation_work\": {}\n",
                "  }}\n",
                "}}\n"
            ),
            self.scale,
            self.queries,
            self.reps,
            self.exec_reference_ms,
            self.exec_columnar_ms,
            self.exec_speedup(),
            self.exec_work,
            threads_json,
            self.build_tables,
            self.build_statistics,
            self.build_serial_ms,
            self.build_batched_ms,
            self.build_speedup(),
            self.build_creation_work,
        )
    }

    pub fn print(&self) {
        println!(
            "exec   ({} queries): reference {:>9.3} ms | columnar {:>9.3} ms | {:>5.2}x  (work {:.0})",
            self.queries,
            self.exec_reference_ms,
            self.exec_columnar_ms,
            self.exec_speedup(),
            self.exec_work
        );
        for s in &self.thread_samples {
            println!(
                "exec   threads={}: columnar {:>9.3} ms | {:>5.2}x over reference  (work verified bit-identical)",
                s.threads,
                s.columnar_ms,
                self.exec_reference_ms / s.columnar_ms.max(1e-9),
            );
        }
        println!(
            "build  ({} stats on {} tables): serial {:>9.3} ms | batched {:>9.3} ms | {:>5.2}x  (work {:.0})",
            self.build_statistics,
            self.build_tables,
            self.build_serial_ms,
            self.build_batched_ms,
            self.build_speedup(),
            self.build_creation_work
        );
    }
}

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Compare a fresh result against a previously recorded `BENCH_exec.json`,
/// returning one warning line per deterministic work counter that regressed
/// by more than 25%. Wall-clock medians are not compared — they move with
/// the machine; the work counters may not. `Err` explains why the comparison
/// was skipped (unparseable baseline, different scale or workload).
pub fn check_against(previous_json: &str, current: &PerfbaseResult) -> Result<Vec<String>, String> {
    let prev = obsv::json::parse(previous_json)
        .map_err(|e| format!("previous baseline unparseable: {e}"))?;
    let num = |path: &[&str]| -> Option<f64> {
        let mut v = &prev;
        for key in path {
            v = v.get(key)?;
        }
        v.as_f64()
    };
    let prev_scale =
        num(&["scale"]).ok_or_else(|| "previous baseline missing scale".to_string())?;
    let prev_queries =
        num(&["queries"]).ok_or_else(|| "previous baseline missing queries".to_string())?;
    if prev_scale != current.scale || prev_queries != current.queries as f64 {
        return Err(format!(
            "previous baseline is a different run (scale={prev_scale} queries={prev_queries} vs \
             scale={} queries={})",
            current.scale, current.queries
        ));
    }
    let mut warnings = Vec::new();
    for (what, previous, measured) in [
        ("exec work", num(&["exec", "work"]), current.exec_work),
        (
            "build creation work",
            num(&["build", "creation_work"]),
            current.build_creation_work,
        ),
    ] {
        let Some(previous) = previous else { continue };
        if previous > 0.0 && measured > previous * 1.25 {
            warnings.push(format!(
                "{what} regressed {previous:.0} -> {measured:.0} (+{:.1}%, budget 25%)",
                (measured / previous - 1.0) * 100.0
            ));
        }
    }
    // Per-thread-count samples: work at every thread count is verified
    // bit-identical to serial within a run, so across baselines it must
    // move exactly with `exec.work` — any *divergence between thread counts*
    // in the previous file, or between a previous sample and the current
    // one at the same thread count (beyond the shared budget), is flagged.
    if let Some(samples) = prev
        .get("exec")
        .and_then(|e| e.get("threads"))
        .and_then(|t| t.as_array())
    {
        for s in samples {
            let (Some(t), Some(prev_work)) = (
                s.get("threads").and_then(|v| v.as_f64()),
                s.get("work").and_then(|v| v.as_f64()),
            ) else {
                continue;
            };
            let Some(cur) = current
                .thread_samples
                .iter()
                .find(|c| c.threads as f64 == t)
            else {
                continue;
            };
            if prev_work > 0.0 && cur.work > prev_work * 1.25 {
                warnings.push(format!(
                    "exec work at {t} threads regressed {prev_work:.0} -> {:.0} (+{:.1}%, budget 25%)",
                    cur.work,
                    (cur.work / prev_work - 1.0) * 100.0
                ));
            }
            if cur.work.to_bits() != current.exec_work.to_bits() {
                warnings.push(format!(
                    "exec work at {t} threads ({:.0}) diverges from serial work ({:.0}) — \
                     thread-count determinism broken",
                    cur.work, current.exec_work
                ));
            }
        }
    }
    Ok(warnings)
}

/// Workload queries with their optimized plans (plan choice is fixed up
/// front so the timed loops measure execution only).
fn planned_workload(
    db: &Database,
    catalog: &StatsCatalog,
    scale: &ExperimentScale,
) -> Vec<(BoundSelect, PlanNode)> {
    let spec = WorkloadSpec::new(0, Complexity::Complex, scale.workload_len).with_seed(scale.seed);
    let bound = bind_all(db, &RagsGenerator::generate(db, &spec));
    let optimizer = Optimizer::default();
    queries_of(&bound)
        .into_iter()
        .filter_map(|q| {
            optimizer
                .optimize(db, &q, catalog.full_view(), &OptimizeOptions::default())
                .ok()
                .map(|o| (q, o.plan))
        })
        .collect()
}

/// Unique candidate descriptors of the workload, grouped per table — the
/// shape of a `CreateAll*` pass or a sequence of MNSA rounds.
fn build_round(queries: &[(BoundSelect, PlanNode)]) -> Vec<(TableId, Vec<StatDescriptor>)> {
    let mut by_table: Vec<(TableId, Vec<StatDescriptor>)> = Vec::new();
    for (q, _) in queries {
        for d in candidate_statistics(q) {
            match by_table.iter_mut().find(|(t, _)| *t == d.table) {
                Some((_, ds)) => {
                    if !ds.contains(&d) {
                        ds.push(d);
                    }
                }
                None => by_table.push((d.table, vec![d])),
            }
        }
    }
    by_table
}

/// Observed run of the whole workload at fixed [`ExecOptions`]: all rows,
/// summed work, the canonical span-tree signature, and the canonical
/// feedback byte stream — everything the executor's determinism contract
/// says may not depend on the thread count.
#[allow(clippy::type_complexity)]
fn observed_workload(
    db: &Database,
    planned: &[(BoundSelect, PlanNode)],
    params: &optimizer::CostParams,
    opts: ExecOptions,
) -> (
    Vec<Vec<Vec<storage::Value>>>,
    f64,
    Vec<obsv::Event>,
    Vec<u8>,
) {
    let tracer = obsv::Tracer::enabled();
    let feedback = obsv::FeedbackLog::enabled();
    let mut rows = Vec::with_capacity(planned.len());
    let mut work = 0.0;
    for (q, plan) in planned {
        let out = execute_plan_opts(db, q, plan, params, &tracer, &feedback, &opts)
            .expect("columnar executes");
        work += out.work;
        rows.push(out.rows);
    }
    let events = tracer.flush();
    let fb = feedback.canonical_bytes();
    (rows, work, events, fb)
}

/// Run the baseline at `scale`, timing `reps` repetitions of each side and
/// reporting medians. `thread_counts` additionally times the columnar
/// engine at each given thread count — after asserting that its rows, work
/// bits, span tree, and feedback stream are identical to the serial
/// engine's.
pub fn run(scale: &ExperimentScale, reps: usize, thread_counts: &[usize]) -> PerfbaseResult {
    let db = build_tpcd(&TpcdConfig {
        scale: scale.scale,
        zipf: ZipfSpec::Mixed,
        seed: scale.seed,
    });

    // Statistics-informed plans: build the workload's candidate set first so
    // the timed plans include index paths and informed join orders.
    let prep = planned_workload(&db, &StatsCatalog::new(), scale);
    let mut catalog = StatsCatalog::new();
    for (q, _) in &prep {
        for d in candidate_statistics(q) {
            let _ = catalog.create_statistic(&db, d);
        }
    }
    let planned = planned_workload(&db, &catalog, scale);
    let optimizer = Optimizer::default();

    // Verify once: identical rows, bit-identical work.
    let mut exec_work = 0.0;
    for (q, plan) in &planned {
        let b = execute_plan(&db, q, plan, &optimizer.params).expect("columnar executes");
        let r =
            execute_plan_reference(&db, q, plan, &optimizer.params).expect("reference executes");
        assert_eq!(b.rows, r.rows, "row divergence in bench workload");
        assert_eq!(b.work.to_bits(), r.work.to_bits(), "work divergence");
        exec_work += b.work;
    }

    let time_all = |f: &dyn Fn(&BoundSelect, &PlanNode)| -> f64 {
        let t0 = Instant::now();
        for (q, plan) in &planned {
            f(q, plan);
        }
        t0.elapsed().as_secs_f64() * 1e3
    };
    let mut ref_ms = Vec::with_capacity(reps);
    let mut col_ms = Vec::with_capacity(reps);
    for _ in 0..reps {
        ref_ms.push(time_all(&|q, plan| {
            execute_plan_reference(&db, q, plan, &optimizer.params).expect("reference executes");
        }));
        col_ms.push(time_all(&|q, plan| {
            execute_plan(&db, q, plan, &optimizer.params).expect("columnar executes");
        }));
    }
    let exec_reference_ms = median_ms(ref_ms);

    // Morsel-parallel samples: prove the determinism contract at each
    // thread count (rows, work bits, span tree, feedback bytes all equal to
    // serial), then time it.
    let mut thread_samples = Vec::with_capacity(thread_counts.len());
    let mut trace_events = Vec::new();
    if !thread_counts.is_empty() {
        let serial = observed_workload(&db, &planned, &optimizer.params, ExecOptions::default());
        let serial_sig = canonical_signature(&serial.2);
        for &t in thread_counts {
            let opts = ExecOptions::with_threads(t);
            let at_t = observed_workload(&db, &planned, &optimizer.params, opts);
            assert_eq!(serial.0, at_t.0, "row divergence at {t} threads");
            assert_eq!(
                serial.1.to_bits(),
                at_t.1.to_bits(),
                "work divergence at {t} threads"
            );
            assert_eq!(
                serial_sig,
                canonical_signature(&at_t.2),
                "span-tree divergence at {t} threads"
            );
            assert_eq!(serial.3, at_t.3, "feedback divergence at {t} threads");
            let mut ms = Vec::with_capacity(reps);
            for _ in 0..reps {
                ms.push(time_all(&|q, plan| {
                    execute_plan_opts(
                        &db,
                        q,
                        plan,
                        &optimizer.params,
                        &obsv::Tracer::disabled(),
                        &obsv::FeedbackLog::disabled(),
                        &opts,
                    )
                    .expect("columnar executes");
                }));
            }
            thread_samples.push(ThreadSample {
                threads: t,
                columnar_ms: median_ms(ms),
                work: at_t.1,
            });
        }
        trace_events = serial.2;
    }

    // Statistics build round: serial one-at-a-time vs shared-scan batches.
    let round = build_round(&planned);
    let n_stats: usize = round.iter().map(|(_, ds)| ds.len()).sum();
    let build_serial = || -> StatsCatalog {
        let mut cat = StatsCatalog::new();
        for (_, ds) in &round {
            for d in ds {
                cat.create_statistic(&db, d.clone()).expect("serial build");
            }
        }
        cat
    };
    let build_batched = || -> StatsCatalog {
        let mut cat = StatsCatalog::new();
        for (table, ds) in &round {
            cat.create_statistics_batch(&db, *table, ds)
                .expect("batched build");
        }
        cat
    };
    // Verify once: identical snapshots, bit-identical creation work.
    let serial_cat = build_serial();
    let batched_cat = build_batched();
    assert_eq!(
        serial_cat.snapshot(),
        batched_cat.snapshot(),
        "batched build diverged from serial"
    );
    assert_eq!(
        serial_cat.creation_work().to_bits(),
        batched_cat.creation_work().to_bits()
    );

    let mut serial_ms = Vec::with_capacity(reps);
    let mut batched_ms = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        let _ = build_serial();
        serial_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        let _ = build_batched();
        batched_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }

    PerfbaseResult {
        scale: scale.scale,
        queries: planned.len(),
        reps,
        exec_reference_ms,
        exec_columnar_ms: median_ms(col_ms),
        exec_work,
        build_tables: round.len(),
        build_statistics: n_stats,
        build_serial_ms: median_ms(serial_ms),
        build_batched_ms: median_ms(batched_ms),
        build_creation_work: serial_cat.creation_work(),
        thread_samples,
        trace_events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfbaseResult {
        PerfbaseResult {
            scale: 0.004,
            queries: 42,
            reps: 5,
            exec_reference_ms: 10.0,
            exec_columnar_ms: 5.0,
            exec_work: 1000.0,
            build_tables: 4,
            build_statistics: 20,
            build_serial_ms: 8.0,
            build_batched_ms: 4.0,
            build_creation_work: 500.0,
            thread_samples: vec![
                ThreadSample {
                    threads: 2,
                    columnar_ms: 3.0,
                    work: 1000.0,
                },
                ThreadSample {
                    threads: 4,
                    columnar_ms: 2.0,
                    work: 1000.0,
                },
            ],
            trace_events: Vec::new(),
        }
    }

    #[test]
    fn check_passes_against_own_json() {
        let r = sample();
        assert_eq!(check_against(&r.to_json(), &r), Ok(Vec::new()));
    }

    #[test]
    fn check_warns_on_work_regression() {
        let r = sample();
        let mut worse = r.clone();
        worse.exec_work = r.exec_work * 1.5; // +50%, over the 25% budget
        for s in &mut worse.thread_samples {
            s.work = worse.exec_work; // determinism contract intact
        }
        let warnings = check_against(&r.to_json(), &worse).expect("comparable runs");
        assert_eq!(warnings.len(), 3, "{warnings:?}"); // overall + each thread count
        assert!(warnings[0].contains("exec work"), "{warnings:?}");
        // Within budget: no warning.
        let mut ok = r.clone();
        ok.build_creation_work = r.build_creation_work * 1.2;
        assert_eq!(check_against(&r.to_json(), &ok), Ok(Vec::new()));
    }

    #[test]
    fn check_flags_per_thread_work_drift() {
        let r = sample();
        // Regression at one thread count only.
        let mut worse = r.clone();
        worse.thread_samples[1].work = 2000.0;
        let warnings = check_against(&r.to_json(), &worse).expect("comparable runs");
        assert!(
            warnings.iter().any(|w| w.contains("at 4 threads")),
            "{warnings:?}"
        );
        // A sample that disagrees with the run's own serial work is a broken
        // determinism contract, flagged even without budget overrun.
        let mut diverged = r.clone();
        diverged.thread_samples[0].work = 999.0;
        let warnings = check_against(&r.to_json(), &diverged).expect("comparable runs");
        assert!(
            warnings
                .iter()
                .any(|w| w.contains("thread-count determinism")),
            "{warnings:?}"
        );
    }

    #[test]
    fn check_skips_mismatched_runs() {
        let r = sample();
        let mut other = r.clone();
        other.scale = 0.01;
        assert!(check_against(&r.to_json(), &other).is_err());
        assert!(check_against("not json", &r).is_err());
    }
}
