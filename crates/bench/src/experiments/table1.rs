//! Table 1 — quality of MNSA/D.
//!
//! On the U25-C-100 workload the paper reports that MNSA/D reduces the
//! update cost of the statistics left behind by 30–34% compared to MNSA
//! (TPCD_0: 31%, TPCD_2: 34%, TPCD_4: 32%, TPCD_MIX: 30%), and that
//! re-running the workload after dropping the detected non-essential
//! statistics increases execution cost by at most 6% (worst at TPCD_4).

use crate::common::{
    bind_all, execute_workload, pct_change, pct_reduction, queries_of, ExperimentScale, Row,
};
use autostats::{MnsaConfig, MnsaEngine};
use datagen::{standard_databases, Complexity, RagsGenerator, WorkloadSpec};
use query::Statement;
use stats::StatsCatalog;
use storage::Database;

/// One database's Table 1 entry.
#[derive(Debug, Clone)]
pub struct Table1Result {
    pub database: String,
    pub workload: String,
    pub mnsa_update_cost: f64,
    pub mnsad_update_cost: f64,
    pub update_cost_reduction_pct: f64,
    pub rerun_exec_increase_pct: f64,
    pub mnsa_stats: usize,
    pub mnsad_active_stats: usize,
}

/// Measure one database with the given workload.
pub fn measure(db: &Database, name: &str, wl_name: &str, stmts: &[Statement]) -> Table1Result {
    let bound = bind_all(db, stmts);
    let queries = queries_of(&bound);

    // MNSA.
    let mnsa = MnsaEngine::new(MnsaConfig::default());
    let mut cat_mnsa = StatsCatalog::new();
    for q in &queries {
        mnsa.run_query(db, &mut cat_mnsa, q).expect("mnsa tunes");
    }
    let mnsa_ids = cat_mnsa.active_ids();
    let mnsa_update_cost = cat_mnsa.update_cost_of(db, mnsa_ids.iter().copied());

    // MNSA/D.
    let mnsad = MnsaEngine::new(MnsaConfig::default().with_drop_detection());
    let mut cat_mnsad = StatsCatalog::new();
    for q in &queries {
        mnsad.run_query(db, &mut cat_mnsad, q).expect("mnsa tunes");
    }
    let mnsad_ids = cat_mnsad.active_ids();
    let mnsad_update_cost = cat_mnsad.update_cost_of(db, mnsad_ids.iter().copied());

    // Re-run the workload with the statistics left behind by each algorithm.
    let exec_mnsa = execute_workload(db, &cat_mnsa, &bound);
    let exec_mnsad = execute_workload(db, &cat_mnsad, &bound);

    Table1Result {
        database: name.to_string(),
        workload: wl_name.to_string(),
        mnsa_update_cost,
        mnsad_update_cost,
        update_cost_reduction_pct: pct_reduction(mnsa_update_cost, mnsad_update_cost),
        rerun_exec_increase_pct: pct_change(exec_mnsa, exec_mnsad),
        mnsa_stats: mnsa_ids.len(),
        mnsad_active_stats: mnsad_ids.len(),
    }
}

/// Run Table 1 across the standard databases on U25-C-100.
pub fn run(scale: &ExperimentScale) -> Vec<Table1Result> {
    let spec = WorkloadSpec::new(25, Complexity::Complex, scale.workload_len.max(100))
        .with_seed(scale.seed);
    standard_databases(scale.scale, scale.seed)
        .into_iter()
        .map(|(name, db)| {
            let stmts = RagsGenerator::generate(&db, &spec);
            measure(&db, &name, &spec.to_string(), &stmts)
        })
        .collect()
}

/// Convert to report rows.
pub fn rows(results: &[Table1Result]) -> Vec<Row> {
    let paper = |db: &str| match db {
        "TPCD_0" => "31%",
        "TPCD_2" => "34%",
        "TPCD_4" => "32%",
        "TPCD_MIX" => "30%",
        _ => "30-34%",
    };
    let mut rows = Vec::new();
    for r in results {
        rows.push(Row {
            experiment: "table1".into(),
            database: r.database.clone(),
            workload: r.workload.clone(),
            metric: "MNSA/D update-cost reduction vs MNSA (%)".into(),
            measured: r.update_cost_reduction_pct,
            paper_band: paper(&r.database).into(),
        });
        rows.push(Row {
            experiment: "table1".into(),
            database: r.database.clone(),
            workload: r.workload.clone(),
            metric: "rerun execution cost increase after drop (%)".into(),
            measured: r.rerun_exec_increase_pct,
            paper_band: "<= 6%".into(),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{build_tpcd, TpcdConfig, ZipfSpec};

    #[test]
    fn mnsad_leaves_no_more_statistics_than_mnsa() {
        let scale = ExperimentScale::tiny();
        let db = build_tpcd(&TpcdConfig {
            scale: 0.003,
            zipf: ZipfSpec::Mixed,
            seed: scale.seed,
        });
        let spec = WorkloadSpec::new(25, Complexity::Complex, 25).with_seed(scale.seed);
        let stmts = RagsGenerator::generate(&db, &spec);
        let r = measure(&db, "TPCD_MIX", &spec.to_string(), &stmts);
        assert!(
            r.mnsad_active_stats <= r.mnsa_stats,
            "MNSA/D active {} > MNSA {}",
            r.mnsad_active_stats,
            r.mnsa_stats
        );
        assert!(
            r.mnsad_update_cost <= r.mnsa_update_cost + 1e-9,
            "MNSA/D must not increase update cost"
        );
    }
}
