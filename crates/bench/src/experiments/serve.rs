//! Sustained-throughput benchmark of the sharded serving layer
//! ([`serve::ServeCluster`]): a seeded TPC-D query+update stream routed
//! across N shards, under the shared budget arbiter, measured four ways:
//!
//! * **throughput** — N client threads drive the mixed stream at steady
//!   state (several rounds over the statement list); QPS is statements per
//!   wall-clock second, latency quantiles come from the cluster-merged
//!   query-latency histogram (merge is exactly associative, so the merged
//!   distribution equals what a single shared histogram would have seen);
//! * **per-shard convergence under load** — after the deterministic drive,
//!   each shard's final catalog is scored on the distinct single-shard
//!   SELECT templates routed to it, against an offline tune on the same
//!   shard database and sample;
//! * **1-shard identity** — a 1-shard cluster drive must be bit-identical
//!   (tick reports, journal JSON including the `ShardAssigned` prelude,
//!   epoch generations, work meters, probe cost) to a plain
//!   [`autod::OnlineService`] fed the same prelude and budget;
//! * **replay** — the whole deterministic drive at the requested shard
//!   count runs twice and must agree bit-for-bit.
//!
//! The drive hash-partitions the largest TPC-D table across all shards
//! (when `shards > 1`), so the router's scatter, broadcast, and fallback
//! paths all carry real traffic.

use crate::common::ExperimentScale;
use autod::{AutodConfig, OnlineService, ServiceReport, TelemetryConfig, TickReport};
use autostats::{AutoStatsManager, CreationPolicy, ManagerConfig, OfflineTuner, OnlineEvent};
use datagen::{build_tpcd, Complexity, RagsGenerator, TpcdConfig, WorkloadSpec, ZipfSpec};
use optimizer::{OptimizeOptions, Optimizer};
use query::{bind_statement, BoundSelect, BoundStatement, Statement};
use serve::{Route, Router, ServeCluster, ServeConfig, ShardPlan, ShardPlanConfig};
use stats::StatsCatalog;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use storage::Database;

/// Per-shard tuning outcome of the deterministic drive.
#[derive(Debug, Clone)]
pub struct ShardSummary {
    pub shard: usize,
    /// Single-shard SELECT statements the router sent here.
    pub statements_routed: usize,
    /// Distinct templates among those.
    pub distinct_templates: usize,
    pub queries_tuned: u64,
    pub refreshes: u64,
    pub epoch_generation: u64,
    pub statistics_built: usize,
    /// Probe cost of the shard's templates under its final online catalog.
    pub online_probe_cost: f64,
    /// Probe cost under an offline tune on the same shard database/sample.
    pub offline_probe_cost: f64,
}

impl ShardSummary {
    pub fn convergence_gap_pct(&self) -> f64 {
        if self.offline_probe_cost <= 0.0 {
            return 0.0;
        }
        (self.online_probe_cost - self.offline_probe_cost).abs() / self.offline_probe_cost * 100.0
    }
}

/// Telemetry streams the deterministic drive exports: per-tick windowed
/// deltas from shard 0 and the interleaved per-shard health stream
/// (`obsv_check --health` validates per-shard tick monotonicity;
/// `obsv_top` renders the multi-shard dashboard).
#[derive(Debug, Clone, Default)]
pub struct ServeTelemetry {
    pub windows_jsonl: String,
    pub health_jsonl: String,
}

/// Everything `exp_serve` reports (and writes to `BENCH_serve.json`).
#[derive(Debug, Clone)]
pub struct ServeResult {
    pub scale: f64,
    pub shards: usize,
    pub statements: usize,
    pub ticks: u64,
    pub threads: usize,
    /// Rounds each client thread makes over its statement share.
    pub rounds: usize,
    pub global_budget_per_tick: f64,
    /// Statements executed by the throughput pass.
    pub throughput_statements: u64,
    pub wall_ms: f64,
    /// Statements per wall-clock second at steady state.
    pub qps: f64,
    /// Cluster-merged query-latency quantiles (wall clock, nanoseconds).
    pub latency_count: u64,
    pub latency_p50_ns: u64,
    pub latency_p99_ns: u64,
    pub latency_p999_ns: u64,
    /// True when the 1-shard cluster matched the unsharded service
    /// bit-for-bit.
    pub one_shard_identical: bool,
    /// True when the seed-fixed drive at `shards` replayed bit-identically.
    pub replay_identical: bool,
    pub per_shard: Vec<ShardSummary>,
}

impl ServeResult {
    /// Worst per-shard convergence gap, in percent of the offline cost.
    pub fn max_convergence_gap_pct(&self) -> f64 {
        self.per_shard
            .iter()
            .map(ShardSummary::convergence_gap_pct)
            .fold(0.0, f64::max)
    }

    /// Hand-rolled JSON (no serde_json offline).
    pub fn to_json(&self) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        }
        let mut out = String::new();
        out.push_str("{\n  \"experiment\": \"serve\",\n");
        out.push_str(&format!("  \"scale\": {},\n", self.scale));
        out.push_str(&format!("  \"shards\": {},\n", self.shards));
        out.push_str(&format!("  \"statements\": {},\n", self.statements));
        out.push_str(&format!("  \"ticks\": {},\n", self.ticks));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"rounds\": {},\n", self.rounds));
        out.push_str(&format!(
            "  \"global_budget_per_tick\": {},\n",
            num(self.global_budget_per_tick)
        ));
        out.push_str(&format!(
            "  \"throughput_statements\": {},\n",
            self.throughput_statements
        ));
        out.push_str(&format!("  \"wall_ms\": {},\n", num(self.wall_ms)));
        out.push_str(&format!("  \"qps\": {},\n", num(self.qps)));
        out.push_str(&format!("  \"latency_count\": {},\n", self.latency_count));
        out.push_str(&format!("  \"latency_p50_ns\": {},\n", self.latency_p50_ns));
        out.push_str(&format!("  \"latency_p99_ns\": {},\n", self.latency_p99_ns));
        out.push_str(&format!(
            "  \"latency_p999_ns\": {},\n",
            self.latency_p999_ns
        ));
        out.push_str(&format!(
            "  \"one_shard_identical\": {},\n",
            self.one_shard_identical
        ));
        out.push_str(&format!(
            "  \"replay_identical\": {},\n",
            self.replay_identical
        ));
        out.push_str(&format!(
            "  \"max_convergence_gap_pct\": {},\n",
            num(self.max_convergence_gap_pct())
        ));
        out.push_str("  \"per_shard\": [\n");
        for (i, s) in self.per_shard.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"shard\": {}, \"statements_routed\": {}, \"distinct_templates\": {}, \"queries_tuned\": {}, \"refreshes\": {}, \"epoch_generation\": {}, \"statistics_built\": {}, \"online_probe_cost\": {}, \"offline_probe_cost\": {}, \"convergence_gap_pct\": {}}}{}\n",
                s.shard,
                s.statements_routed,
                s.distinct_templates,
                s.queries_tuned,
                s.refreshes,
                s.epoch_generation,
                s.statistics_built,
                num(s.online_probe_cost),
                num(s.offline_probe_cost),
                num(s.convergence_gap_pct()),
                if i + 1 < self.per_shard.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    pub fn print(&self) {
        println!(
            "cluster: {} shards, {} statements/round, {} ticks (global budget {}/tick)",
            self.shards, self.statements, self.ticks, self.global_budget_per_tick
        );
        println!(
            "throughput: {} statements over {:.1} ms wall with {} threads x {} rounds = {:.0} qps",
            self.throughput_statements, self.wall_ms, self.threads, self.rounds, self.qps
        );
        println!(
            "latency (merged): p50 {} ns  p99 {} ns  p999 {} ns  (n={})",
            self.latency_p50_ns, self.latency_p99_ns, self.latency_p999_ns, self.latency_count
        );
        for s in &self.per_shard {
            println!(
                "  shard {}: {:>4} routed ({} distinct)  tuned {:>3}  refreshed {:>3}  gen {:>3}  stats {:>3}  online {:>10.0} vs offline {:>10.0}  (gap {:.2}%)",
                s.shard,
                s.statements_routed,
                s.distinct_templates,
                s.queries_tuned,
                s.refreshes,
                s.epoch_generation,
                s.statistics_built,
                s.online_probe_cost,
                s.offline_probe_cost,
                s.convergence_gap_pct()
            );
        }
        println!(
            "determinism: 1-shard == unsharded {}   replay identical {}",
            self.one_shard_identical, self.replay_identical
        );
    }
}

fn autod_config() -> AutodConfig {
    AutodConfig {
        shrink_every: 4,
        telemetry: TelemetryConfig {
            sample_one_in: 1,
            ..TelemetryConfig::default()
        },
        ..AutodConfig::default()
    }
}

fn manager_config() -> ManagerConfig {
    ManagerConfig {
        creation: CreationPolicy::Manual,
        auto_maintain: false,
        ..ManagerConfig::default()
    }
}

fn workload(db: &Database, scale: &ExperimentScale) -> Vec<Statement> {
    let spec = WorkloadSpec::new(20, Complexity::Simple, scale.workload_len).with_seed(scale.seed);
    RagsGenerator::generate(db, &spec)
}

/// Partition the largest table(s) across the shards; everything smaller
/// stays whole. A 1-shard cluster partitions nothing (bit-identity).
fn partition_threshold(db: &Database, shards: usize) -> usize {
    if shards <= 1 {
        return usize::MAX;
    }
    db.table_ids()
        .map(|id| db.table(id).row_count())
        .max()
        .unwrap_or(usize::MAX)
        .max(1)
}

fn serve_config(db: &Database, shards: usize, global_budget: f64) -> ServeConfig {
    ServeConfig {
        shards,
        partition_threshold: partition_threshold(db, shards),
        global_budget_per_tick: global_budget,
        autod: autod_config(),
        manager: manager_config(),
        ..ServeConfig::default()
    }
}

/// The mid-run bulk modification (same as `exp_online`): touches every
/// `lineitem` row, so every statistic on the table goes stale — on a
/// partitioned cluster this broadcasts and makes *every* shard refresh.
const BULK_UPDATE_SQL: &str = "UPDATE lineitem SET l_linenumber = 1";

/// What one deterministic cluster drive leaves behind.
struct ClusterDrive {
    /// Final shard databases, in shard order.
    dbs: Vec<Database>,
    reports: Vec<ServiceReport>,
    statements: Vec<Statement>,
    /// Outer: tick order; inner: shard order.
    tick_reports: Vec<Vec<TickReport>>,
    plan: ShardPlan,
    telemetry: ServeTelemetry,
}

impl ClusterDrive {
    /// The bit-comparable fingerprint: per-tick per-shard reports, journal
    /// renderings, generations, and per-shard work meters.
    #[allow(clippy::type_complexity)]
    fn digest(&self) -> (Vec<Vec<TickReport>>, Vec<String>, Vec<u64>, Vec<(u64, u64)>) {
        let work_bits = (0..self.reports.len())
            .map(|s| {
                let refresh: f64 = self.tick_reports.iter().map(|t| t[s].refresh_work).sum();
                let tuning: f64 = self.tick_reports.iter().map(|t| t[s].tuning_work).sum();
                (refresh.to_bits(), tuning.to_bits())
            })
            .collect();
        (
            self.tick_reports.clone(),
            self.reports.iter().map(|r| r.session.to_json()).collect(),
            self.reports.iter().map(|r| r.generation).collect(),
            work_bits,
        )
    }
}

fn record_cluster_tick(cluster: &ServeCluster, telemetry: &mut ServeTelemetry) -> Vec<TickReport> {
    let reports = cluster.tick_wait().expect("cluster tick succeeds");
    if let Some(first) = reports.first() {
        telemetry
            .windows_jsonl
            .push_str(&cluster.service(0).roll_window(first.tick).to_json_line());
        telemetry.windows_jsonl.push('\n');
    }
    for svc in cluster.services() {
        telemetry
            .health_jsonl
            .push_str(&svc.health().to_json_line());
        telemetry.health_jsonl.push('\n');
    }
    reports
}

/// One deterministic single-client drive of the sharded closed loop.
fn drive_cluster(
    scale: &ExperimentScale,
    shards: usize,
    ticks: u64,
    global_budget: f64,
) -> ClusterDrive {
    let db = build_tpcd(&TpcdConfig {
        scale: scale.scale,
        zipf: ZipfSpec::Mixed,
        seed: scale.seed,
    });
    let statements = workload(&db, scale);
    let config = serve_config(&db, shards, global_budget);
    let cluster = ServeCluster::start(db, config).expect("shard split succeeds");
    let plan = cluster.plan().clone();
    let client = cluster.client(1);

    let chunk = (statements.len() / ticks.max(1) as usize).max(1);
    let bulk_at = statements.len() * 3 / 4;
    let mut tick_reports = Vec::new();
    let mut telemetry = ServeTelemetry::default();

    for (i, stmt) in statements.iter().enumerate() {
        if i == bulk_at {
            client.run_sql(BULK_UPDATE_SQL).expect("bulk update runs");
        }
        client.run(stmt).expect("workload statement runs");
        if (i + 1) % chunk == 0 {
            tick_reports.push(record_cluster_tick(&cluster, &mut telemetry));
        }
    }
    // Drain until every shard has a fully quiet tick (bounded backstop).
    for _ in 0..512 {
        tick_reports.push(record_cluster_tick(&cluster, &mut telemetry));
        let quiet = tick_reports.last().expect("just pushed").iter().all(|r| {
            r.queries_tuned == 0
                && r.refreshed == 0
                && !r.budget_exhausted
                && r.published_generation.is_none()
        });
        if quiet {
            break;
        }
    }

    let pairs = cluster.shutdown().expect("daemon threads live");
    let (dbs, reports): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
    for report in &reports {
        if let Some(e) = &report.error {
            panic!("shard daemon tick failed during drive: {e}");
        }
    }
    ClusterDrive {
        dbs,
        reports,
        statements,
        tick_reports,
        plan,
        telemetry,
    }
}

/// The unsharded baseline of the 1-shard identity check: a plain
/// [`OnlineService`] over the 1-shard plan's database, with the same
/// `ShardAssigned` prelude journaled, the same budgeted ticks, and the same
/// statement/tick interleave as [`drive_cluster`].
fn drive_unsharded(
    scale: &ExperimentScale,
    ticks: u64,
    budget: f64,
) -> (ServiceReport, Vec<TickReport>) {
    let db = build_tpcd(&TpcdConfig {
        scale: scale.scale,
        zipf: ZipfSpec::Mixed,
        seed: scale.seed,
    });
    let statements = workload(&db, scale);
    let plan = ShardPlan::build(&db, &ShardPlanConfig::default());
    let mut shard_dbs = plan.shard_databases(&db).expect("1-shard split succeeds");
    let shard_db = shard_dbs.remove(0);
    let manifest = plan.shard_manifest(0, &shard_db);
    let mgr = AutoStatsManager::new_with_obs(shard_db, manager_config(), obsv::Obs::disabled());
    let mut parts = mgr.serve();
    for (table, rows, partitioned) in manifest {
        parts.session.record_online(OnlineEvent::ShardAssigned {
            tick: 0,
            shard: 0,
            table,
            rows,
            partitioned,
        });
    }
    let svc = OnlineService::start(parts, autod_config());
    let handle = svc.handle(1);

    let chunk = (statements.len() / ticks.max(1) as usize).max(1);
    let bulk_at = statements.len() * 3 / 4;
    let mut tick_reports: Vec<TickReport> = Vec::new();
    for (i, stmt) in statements.iter().enumerate() {
        if i == bulk_at {
            handle.run_sql(BULK_UPDATE_SQL).expect("bulk update runs");
        }
        handle.run(stmt).expect("workload statement runs");
        if (i + 1) % chunk == 0 {
            tick_reports.push(svc.tick_wait_budgeted(budget).expect("tick succeeds"));
        }
    }
    for _ in 0..512 {
        let r = svc.tick_wait_budgeted(budget).expect("tick succeeds");
        let quiet = r.queries_tuned == 0
            && r.refreshed == 0
            && !r.budget_exhausted
            && r.published_generation.is_none();
        tick_reports.push(r);
        if quiet {
            break;
        }
    }
    let (_, report) = svc.shutdown().expect("daemon thread lives");
    if let Some(e) = &report.error {
        panic!("daemon tick failed during unsharded drive: {e}");
    }
    (report, tick_reports)
}

/// Total optimizer cost of `probes` under `catalog` against `db`.
fn probe_cost(db: &Database, probes: &[BoundSelect], catalog: &StatsCatalog) -> f64 {
    let optimizer = Optimizer::default();
    probes
        .iter()
        .filter_map(|q| {
            optimizer
                .optimize(db, q, catalog.full_view(), &OptimizeOptions::default())
                .ok()
        })
        .map(|o| o.cost)
        .sum()
}

/// Per-shard convergence: score each shard's final catalog on the distinct
/// single-shard SELECT templates the router sent it, vs an offline tune on
/// the same shard database and sample.
fn shard_summaries(drive: &ClusterDrive) -> Vec<ShardSummary> {
    let router = Router::new(Arc::new(drive.plan.clone()));
    let shards = drive.reports.len();
    let mut routed: Vec<usize> = vec![0; shards];
    let mut samples: Vec<Vec<BoundSelect>> = vec![Vec::new(); shards];
    let mut seen: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); shards];
    for stmt in &drive.statements {
        if !matches!(stmt, Statement::Select(_)) {
            continue;
        }
        let Route::Single(s) = router.route(stmt) else {
            continue;
        };
        routed[s] += 1;
        if let Ok(BoundStatement::Select(q)) = bind_statement(&drive.dbs[s], stmt) {
            if seen[s].insert(q.fingerprint()) {
                samples[s].push(q);
            }
        }
    }
    (0..shards)
        .map(|s| {
            let db = &drive.dbs[s];
            let online_probe_cost = probe_cost(db, &samples[s], &drive.reports[s].catalog);
            let mut offline_catalog = StatsCatalog::new();
            OfflineTuner::default()
                .tune(db, &mut offline_catalog, &samples[s])
                .expect("offline tune succeeds");
            let offline_probe_cost = probe_cost(db, &samples[s], &offline_catalog);
            ShardSummary {
                shard: s,
                statements_routed: routed[s],
                distinct_templates: samples[s].len(),
                queries_tuned: drive
                    .tick_reports
                    .iter()
                    .map(|t| t[s].queries_tuned as u64)
                    .sum(),
                refreshes: drive
                    .tick_reports
                    .iter()
                    .map(|t| t[s].refreshed as u64)
                    .sum(),
                epoch_generation: drive.reports[s].generation,
                statistics_built: drive.reports[s].catalog.total_count(),
                online_probe_cost,
                offline_probe_cost,
            }
        })
        .collect()
}

/// Wall-clock steady-state pass: `threads` client threads each loop their
/// share of the stream `rounds` times while the driver ticks the cluster.
/// Returns (wall ms, statements executed, merged latency sample).
fn throughput_pass(
    scale: &ExperimentScale,
    shards: usize,
    ticks: u64,
    threads: usize,
    rounds: usize,
    global_budget: f64,
) -> (f64, u64, obsv::LatencySample) {
    let db = build_tpcd(&TpcdConfig {
        scale: scale.scale,
        zipf: ZipfSpec::Mixed,
        seed: scale.seed,
    });
    let statements = workload(&db, scale);
    let config = serve_config(&db, shards, global_budget);
    let cluster = ServeCluster::start(db, config).expect("shard split succeeds");

    let executed = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let client = cluster.client(tid as u64 + 1);
            let mine: Vec<&Statement> = statements.iter().skip(tid).step_by(threads).collect();
            let executed = &executed;
            scope.spawn(move || {
                for _ in 0..rounds {
                    for stmt in &mine {
                        client.run(stmt).expect("workload statement runs");
                        executed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        for _ in 0..ticks {
            cluster.tick_wait().expect("cluster tick succeeds");
        }
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let merged = cluster.merged_query_latency();
    let pairs = cluster.shutdown().expect("daemon threads live");
    for (_, report) in &pairs {
        if let Some(e) = &report.error {
            panic!("shard daemon tick failed during throughput pass: {e}");
        }
    }
    (wall_ms, executed.load(Ordering::Relaxed), merged)
}

/// Run the whole experiment at `shards` shards.
pub fn run(
    scale: &ExperimentScale,
    shards: usize,
    ticks: u64,
    threads: usize,
    rounds: usize,
    global_budget: f64,
) -> (ServeResult, ServeTelemetry) {
    // Deterministic drives: replay at the requested shard count...
    let first = drive_cluster(scale, shards, ticks, global_budget);
    let second = drive_cluster(scale, shards, ticks, global_budget);
    let replay_identical = first.digest() == second.digest();

    // ...and the 1-shard == unsharded identity.
    let one_shard = if shards == 1 {
        // Reuse the drive already computed instead of a third run.
        None
    } else {
        Some(drive_cluster(scale, 1, ticks, global_budget))
    };
    let one_shard_drive = one_shard.as_ref().unwrap_or(&first);
    let (unsharded_report, unsharded_ticks) = drive_unsharded(scale, ticks, global_budget);
    let flat_ticks: Vec<TickReport> = one_shard_drive
        .tick_reports
        .iter()
        .map(|t| t[0].clone())
        .collect();
    let probes: Vec<BoundSelect> = one_shard_drive
        .statements
        .iter()
        .filter_map(|s| {
            bind_statement(&one_shard_drive.dbs[0], s)
                .ok()
                .and_then(|b| b.as_select().cloned())
        })
        .collect();
    let one_shard_identical = flat_ticks == unsharded_ticks
        && one_shard_drive.reports[0].session.to_json() == unsharded_report.session.to_json()
        && one_shard_drive.reports[0].generation == unsharded_report.generation
        && probe_cost(
            &one_shard_drive.dbs[0],
            &probes,
            &one_shard_drive.reports[0].catalog,
        )
        .to_bits()
            == probe_cost(&one_shard_drive.dbs[0], &probes, &unsharded_report.catalog).to_bits();

    let per_shard = shard_summaries(&first);

    let (wall_ms, throughput_statements, merged) =
        throughput_pass(scale, shards, ticks, threads, rounds, global_budget);
    let qps = if wall_ms > 0.0 {
        throughput_statements as f64 / (wall_ms / 1e3)
    } else {
        0.0
    };

    let result = ServeResult {
        scale: scale.scale,
        shards,
        statements: first.statements.len(),
        ticks: first.tick_reports.len() as u64,
        threads,
        rounds,
        global_budget_per_tick: global_budget,
        throughput_statements,
        wall_ms,
        qps,
        latency_count: merged.count,
        latency_p50_ns: merged.quantile(0.50),
        latency_p99_ns: merged.quantile(0.99),
        latency_p999_ns: merged.quantile(0.999),
        one_shard_identical,
        replay_identical,
        per_shard,
    };
    (result, first.telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sharded_run_is_deterministic_and_identical_at_one_shard() {
        let scale = ExperimentScale::tiny();
        let (result, telemetry) = run(&scale, 2, 3, 2, 2, f64::INFINITY);
        assert!(
            result.replay_identical,
            "seed-fixed sharded replay diverged"
        );
        assert!(
            result.one_shard_identical,
            "1-shard cluster diverged from the unsharded service"
        );
        assert_eq!(result.shards, 2);
        assert_eq!(result.per_shard.len(), 2);
        assert!(result.throughput_statements > 0);
        assert!(result.qps > 0.0);
        // The interleaved multi-shard health stream validates per shard.
        obsv::check::check_health(&telemetry.health_jsonl).expect("health JSONL valid");
        assert!(telemetry.health_jsonl.contains("\"shard\": 1"));
        obsv::check::check_windows(&telemetry.windows_jsonl).expect("windows JSONL valid");
        let json = result.to_json();
        assert!(json.contains("\"qps\""));
        assert!(json.contains("\"latency_p99_ns\""));
        assert!(json.contains("\"one_shard_identical\": true"));
        assert!(json.contains("\"replay_identical\": true"));
    }
}
