//! Estimation-quality benchmark: q-error and plan-cost regret on
//! adversarial workloads.
//!
//! The paper scores MNSA by plan cost on TPC-D-style data; the cardinality-
//! estimation benchmark literature (PAPERS.md) argues the sharper lens is
//! **q-error against ground truth**, measured per operator, on the regimes
//! where estimation actually breaks: heavy skew, correlated columns, and
//! many-way star joins. This experiment runs the four adversarial regimes
//! of [`datagen::adversarial`] under three statistics configurations and
//! reports, per `(regime, catalog)` cell:
//!
//! * **q-error quantiles** (p50/p90/p99/max) pooled over every plan
//!   operator of every query. Truth comes from the executor's `exec.op.*`
//!   spans (each carries `est_rows` and the observed `rows_out`), so the
//!   comparison is per-operator, not just at the root.
//! * **plan-cost regret**: executed work of the chosen plan divided by the
//!   executed work of the *true-cardinality plan* — the plan the optimizer
//!   picks when every selectivity variable is injected with its measured
//!   ground-truth value ([`optimizer::OptimizeOptions`]'s §7.2 extension).
//!   Regret is a pure plan-choice metric: both plans are executed on the
//!   same data, so estimation errors only matter where they change the
//!   plan.
//!
//! The three catalogs ladder the statistics investment: `bare` (magic
//! numbers only), `heuristic` (every single-column candidate of every
//! query, built unconditionally), and `mnsa` (the paper's sensitivity-
//! driven tuner with joint 2-D histograms enabled, so correlated pairs can
//! be refined).
//!
//! Ground truth for the injected plan is computed from the data itself —
//! selection selectivities by scanning with the executor's predicate
//! kernels, join selectivities by exact key-pair counting, and the GROUP BY
//! distinct fraction from the aggregate's observed input/output rows —
//! making the true plan independent of any catalog under test.

use crate::common::{flag_value, ExperimentScale};
use autostats::{single_column_candidates, MnsaConfig, MnsaEngine};
use datagen::{adversarial_queries, build_adversarial, AdversarialConfig, Regime, FACTS};
use executor::{execute_plan, execute_plan_observed, execute_plan_traced, predicate::row_matches};
use obsv::{ArgValue, EventKind};
use optimizer::{OptimizeOptions, Optimizer};
use query::{
    bind_statement, BoundSelect, CmpOp, ColumnRef, Condition, JoinEdge, PredicateId, SelectItem,
    SelectStmt, Statement, TableRef,
};
use rustc_hash::FxHashMap;
use stats::{BuildOptions, FeedbackConfig, FeedbackStore, StatDescriptor, StatId, StatsCatalog};
use std::collections::HashMap;
use storage::{Database, TableId, Value};

/// The statistics configurations, in reporting order.
pub const CATALOGS: [&str; 3] = ["bare", "heuristic", "mnsa"];

/// One `(regime, catalog)` measurement cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogCell {
    pub catalog: &'static str,
    /// Active statistics in the catalog after tuning/building.
    pub stats_built: usize,
    /// Number of `(est, actual)` operator pairs pooled into the quantiles.
    pub operators: usize,
    pub q_p50: f64,
    pub q_p90: f64,
    pub q_p99: f64,
    pub q_max: f64,
    /// Geometric mean over queries of `work_chosen / work_true`.
    pub regret_mean: f64,
    pub regret_max: f64,
}

/// All catalogs for one workload regime.
#[derive(Debug, Clone, PartialEq)]
pub struct RegimeResult {
    pub regime: &'static str,
    pub cells: Vec<CatalogCell>,
}

/// The refresh strategies of the drift regime, in reporting order.
pub const DRIFT_STRATEGIES: [&str; 3] = ["bare", "scan-refresh", "feedback-refresh"];

/// One refresh strategy's post-drift measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftCell {
    pub strategy: &'static str,
    /// Statistics refreshed/corrected after the drift (0 for `bare`).
    pub refreshed: usize,
    /// Total statistics work charged by the refresh, in the same
    /// deterministic units as `build_cost` — the "total build work" axis of
    /// the comparison.
    pub refresh_work: f64,
    /// `(est, actual)` operator pairs pooled into the quantiles.
    pub operators: usize,
    pub q_p50: f64,
    pub q_p90: f64,
    pub q_p99: f64,
    pub q_max: f64,
}

/// The drift regime: build → bulk DML shifting the distribution → re-query,
/// under three catalog-refresh strategies.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftResult {
    /// Rows appended by the drift DML (all in a previously-unseen key
    /// range, so stale histograms are out-of-domain for half the data).
    pub drift_rows: usize,
    /// Scan-built statistics shared by every strategy before the drift.
    pub stats_built: usize,
    pub cells: Vec<DriftCell>,
}

impl DriftResult {
    pub fn cell(&self, strategy: &str) -> Option<&DriftCell> {
        self.cells.iter().find(|c| c.strategy == strategy)
    }
}

/// The whole run, as serialized to `BENCH_cardbench.json`.
#[derive(Debug, Clone)]
pub struct CardbenchResult {
    pub rows: usize,
    pub queries_per_regime: usize,
    pub seed: u64,
    /// Whether re-running a regime (and the drift pass) reproduced its
    /// cells bit-identically.
    pub deterministic: bool,
    pub regimes: Vec<RegimeResult>,
    /// The statistics-lifecycle regime: post-drift estimation quality vs
    /// refresh cost for bare / scan-refresh / feedback-refresh catalogs.
    pub drift: DriftResult,
}

impl CardbenchResult {
    pub fn cell(&self, regime: &str, catalog: &str) -> Option<&CatalogCell> {
        self.regimes
            .iter()
            .find(|r| r.regime == regime)?
            .cells
            .iter()
            .find(|c| c.catalog == catalog)
    }
}

/// The q-error of one estimate, with the benchmark literature's degenerate
/// conventions: both sides are floored at 0.5 so `est = 0` vs `actual = 0`
/// gives exactly 1 (a correct empty estimate), and an empty-vs-nonempty
/// mismatch stays finite.
pub fn q_error(est: f64, actual: f64) -> f64 {
    let e = est.max(0.5);
    let a = actual.max(0.5);
    (e / a).max(a / e)
}

/// The adversarial generator configuration for a bench scale: the paper-
/// style `scale` knob maps to fact rows (0.001 → 1 000).
pub fn config_for(scale: &ExperimentScale) -> AdversarialConfig {
    let rows = ((scale.scale * 1_000_000.0).round() as usize).max(200);
    let base = if rows <= 1_200 {
        AdversarialConfig::tiny()
    } else {
        AdversarialConfig::default()
    };
    AdversarialConfig {
        rows,
        seed: scale.seed,
        ..base
    }
}

/// Run the full benchmark: four regimes × three catalogs.
pub fn run(scale: &ExperimentScale) -> CardbenchResult {
    run_with_obs(scale, &obsv::Obs::disabled())
}

/// [`run`] with harness-level observability: one `cardbench.regime` span per
/// regime pass (cells recorded as args) and per-regime query counters, so
/// the driver's `--trace-out` export has a validated span tree. Purely
/// observational — results are bit-identical with tracing on or off.
pub fn run_with_obs(scale: &ExperimentScale, obs: &obsv::Obs) -> CardbenchResult {
    let cfg = config_for(scale);
    let mut root = obs.tracer.span("cardbench.run");
    root.arg("rows", cfg.rows as i64);
    root.arg("queries_per_regime", scale.workload_len as i64);
    let regimes: Vec<RegimeResult> = Regime::ALL
        .iter()
        .map(|&r| {
            let mut span = root.child("cardbench.regime");
            span.arg("regime", r.name());
            obs.metrics
                .counter("cardbench.queries")
                .add(scale.workload_len as u64);
            let result = run_regime(&cfg, r, scale.workload_len);
            for cell in &result.cells {
                span.arg(cell.catalog, cell.q_p50);
            }
            result
        })
        .collect();
    let drift = {
        let mut span = root.child("cardbench.regime");
        span.arg("regime", "drift");
        obs.metrics
            .counter("cardbench.queries")
            .add(scale.workload_len as u64);
        let result = run_drift(&cfg, scale.workload_len);
        for cell in &result.cells {
            span.arg(cell.strategy, cell.q_p50);
        }
        result
    };
    // Determinism audit: a regime re-run from the same seed must reproduce
    // every cell bit-identically (the whole pipeline is seeded, feedback
    // corrections apply in ingest order, and the executor's work metric is
    // deterministic).
    let again = {
        let mut span = root.child("cardbench.regime");
        span.arg("regime", "zipf-recheck");
        run_regime(&cfg, Regime::Zipf, scale.workload_len)
    };
    let drift_again = {
        let mut span = root.child("cardbench.regime");
        span.arg("regime", "drift-recheck");
        run_drift(&cfg, scale.workload_len)
    };
    let deterministic = regimes
        .iter()
        .find(|r| r.regime == Regime::Zipf.name())
        .map(|r| *r == again)
        .unwrap_or(false)
        && drift == drift_again;
    root.arg("deterministic", deterministic);
    CardbenchResult {
        rows: cfg.rows,
        queries_per_regime: scale.workload_len,
        seed: cfg.seed,
        deterministic,
        regimes,
        drift,
    }
}

/// Everything measured about one query that does not depend on the catalog
/// under test: the bound query, its ground-truth selectivities, and the
/// executed work of the true-cardinality plan.
struct QueryCase {
    query: BoundSelect,
    work_true: f64,
}

fn run_regime(cfg: &AdversarialConfig, regime: Regime, n_queries: usize) -> RegimeResult {
    let db = build_adversarial(cfg, regime);
    let optimizer = Optimizer::default();
    let queries: Vec<BoundSelect> = adversarial_queries(&db, cfg, regime, n_queries)
        .into_iter()
        .map(|q| {
            match bind_statement(&db, &Statement::Select(q)).expect("adversarial query binds") {
                query::BoundStatement::Select(b) => b,
                other => panic!("adversarial workload is SELECT-only, got {other:?}"),
            }
        })
        .collect();

    let cases: Vec<QueryCase> = queries
        .into_iter()
        .map(|q| {
            let truth = true_selectivities(&db, &q, &optimizer);
            let injected = OptimizeOptions { injected: truth };
            let true_plan = optimizer
                .optimize(&db, &q, StatsCatalog::new().full_view(), &injected)
                .expect("true-cardinality optimization succeeds");
            let work_true = execute_plan(&db, &q, &true_plan.plan, &optimizer.params)
                .expect("true plan executes")
                .work;
            QueryCase {
                query: q,
                work_true,
            }
        })
        .collect();

    let cells = CATALOGS
        .iter()
        .map(|&name| {
            let catalog = build_catalog(name, &db, &cases);
            measure_catalog(name, &db, &catalog, &cases, &optimizer)
        })
        .collect();
    RegimeResult {
        regime: regime.name(),
        cells,
    }
}

/// Build one of the three statistics configurations for a regime's workload.
fn build_catalog(name: &str, db: &Database, cases: &[QueryCase]) -> StatsCatalog {
    match name {
        "bare" => StatsCatalog::new(),
        "heuristic" => {
            let mut catalog = StatsCatalog::new();
            for case in cases {
                for d in single_column_candidates(&case.query) {
                    if catalog.find_active(&d).is_none() {
                        catalog
                            .create_statistic(db, d)
                            .expect("heuristic statistic builds");
                    }
                }
            }
            catalog
        }
        "mnsa" => {
            // Joint 2-D histograms let MNSA's multi-column candidates refine
            // correlated predicate pairs — the §3.1 case the correlated
            // regime is built to stress.
            let mut catalog = StatsCatalog::new()
                .with_build_options(BuildOptions::default().with_joint_histograms());
            let engine = MnsaEngine::new(MnsaConfig::default());
            for case in cases {
                engine
                    .run_query(db, &mut catalog, &case.query)
                    .expect("mnsa tuning succeeds");
            }
            catalog
        }
        other => panic!("unknown catalog configuration {other}"),
    }
}

/// Optimize and execute every query under `catalog`, pooling per-operator
/// q-errors and per-query regret into one cell.
fn measure_catalog(
    name: &'static str,
    db: &Database,
    catalog: &StatsCatalog,
    cases: &[QueryCase],
    optimizer: &Optimizer,
) -> CatalogCell {
    let mut q_errors: Vec<f64> = Vec::new();
    let mut regrets: Vec<f64> = Vec::new();
    for case in cases {
        let chosen = optimizer
            .optimize(
                db,
                &case.query,
                catalog.full_view(),
                &OptimizeOptions::default(),
            )
            .expect("optimization succeeds");
        let tracer = obsv::Tracer::enabled();
        let out = execute_plan_traced(db, &case.query, &chosen.plan, &optimizer.params, &tracer)
            .expect("plan executes");
        let events = tracer.flush();
        q_errors.extend(operator_q_errors(&events));
        // Floor the denominator: a true plan with (near-)zero work would
        // otherwise make the ratio blow up on trivial queries.
        regrets.push(out.work / case.work_true.max(1.0));
    }
    q_errors.sort_by(f64::total_cmp);
    let geomean = if regrets.is_empty() {
        1.0
    } else {
        (regrets.iter().map(|r| r.max(1e-9).ln()).sum::<f64>() / regrets.len() as f64).exp()
    };
    CatalogCell {
        catalog: name,
        stats_built: catalog.active_count(),
        operators: q_errors.len(),
        q_p50: quantile(&q_errors, 0.50),
        q_p90: quantile(&q_errors, 0.90),
        q_p99: quantile(&q_errors, 0.99),
        q_max: q_errors.last().copied().unwrap_or(f64::NAN),
        regret_mean: geomean,
        regret_max: regrets.iter().copied().fold(f64::NAN, f64::max),
    }
}

/// The drifting columns of `facts`: the four data columns every strategy
/// keeps a scan-built statistic on.
const DRIFT_COLUMNS: [&str; 4] = ["c_a", "c_b", "c_c", "c_d"];

/// Build the shared pre-drift catalog: one scan-built histogram per data
/// column. Rebuilt per strategy (the catalog is deliberately not `Clone`);
/// creation is deterministic, so every strategy starts bit-identical.
fn pre_drift_catalog(db: &Database, table: TableId) -> (StatsCatalog, Vec<StatId>) {
    let mut catalog = StatsCatalog::new();
    let ids = DRIFT_COLUMNS
        .iter()
        .map(|col| {
            let c = db
                .table(table)
                .schema()
                .index_of(col)
                .expect("facts column exists");
            catalog
                .create_statistic(db, StatDescriptor::single(table, c))
                .expect("pre-drift statistic builds")
        })
        .collect();
    (catalog, ids)
}

/// Append `cfg.rows` rows whose data columns draw from the previously-unseen
/// range `[domain, 2 × domain)` — the bulk-load / new-partition drift case:
/// afterwards half of every column's values lie beyond the stale histograms'
/// key domain. Plain arithmetic (no RNG), so the drift is trivially
/// deterministic and independent of the generator's seed stream.
fn apply_drift(db: &mut Database, table: TableId, cfg: &AdversarialConfig) -> usize {
    let base = db.table(table).row_count();
    let d = cfg.domain.max(1);
    let rows: Vec<Vec<Value>> = (0..cfg.rows)
        .map(|i| {
            let v = |salt: usize| (d + (i * 7919 + salt * 104_729) % d) as i64;
            vec![
                Value::Int((base + i) as i64),
                Value::Int(v(1)),
                Value::Int(v(2)),
                Value::Int(v(3)),
                Value::Int(v(4)),
                Value::Float((i % 1000) as f64 / 10.0),
            ]
        })
        .collect();
    db.table_mut(table)
        .insert_many(rows)
        .expect("drift rows insert");
    cfg.rows
}

/// The post-drift correction workload: single-predicate range probes per
/// drifting column, spanning the full (drifted) key domain. Exactly the
/// query shape the executor's feedback channel records, with enough
/// observations per column (6 ≥ `min_observations`) to make every statistic
/// feedback-refreshable, and finite upper bounds so out-of-domain
/// observations can extend the stale histograms.
fn drift_probes(cfg: &AdversarialConfig) -> Vec<SelectStmt> {
    let d = cfg.domain.max(1) as i64;
    let mut probes = Vec::new();
    for col in DRIFT_COLUMNS {
        let column = ColumnRef::new(FACTS, col);
        let mut conditions: Vec<Condition> = (1..=4)
            .map(|k| Condition::Compare {
                column: column.clone(),
                op: CmpOp::Le,
                value: Value::Int(2 * d * k / 4),
            })
            .collect();
        conditions.push(Condition::Between {
            column: column.clone(),
            low: Value::Int(d),
            high: Value::Int(2 * d),
        });
        conditions.push(Condition::Between {
            column,
            low: Value::Int(0),
            high: Value::Int(d / 2),
        });
        probes.extend(conditions.into_iter().map(|c| SelectStmt {
            items: vec![SelectItem::Star],
            from: vec![TableRef::new(FACTS)],
            conditions: vec![c],
            group_by: Vec::new(),
            order_by: Vec::new(),
        }));
    }
    probes
}

fn bind_select(db: &Database, stmt: SelectStmt) -> BoundSelect {
    match bind_statement(db, &Statement::Select(stmt)).expect("drift query binds") {
        query::BoundStatement::Select(b) => b,
        other => panic!("drift workload is SELECT-only, got {other:?}"),
    }
}

/// The drift regime: a zipf `facts` table with scan-built statistics, a bulk
/// DML burst shifting half the data into an unseen key range, then a
/// post-drift evaluation workload under three refresh strategies:
///
/// * `bare` — never refreshes; stale histograms estimate the new range at
///   the out-of-domain floor.
/// * `scan-refresh` — rebuilds every statistic with a full scan, paying the
///   full `build_cost` again.
/// * `feedback-refresh` — re-runs a probe workload under an enabled
///   [`obsv::FeedbackLog`] (plans still come from its own stale catalog)
///   and corrects the histograms from the observed cardinalities at
///   correction-work prices.
fn run_drift(cfg: &AdversarialConfig, n_queries: usize) -> DriftResult {
    let optimizer = Optimizer::default();
    let mut db = build_adversarial(cfg, Regime::Zipf);
    let table = db.table_id(FACTS).expect("facts table exists");
    let (bare_cat, _) = pre_drift_catalog(&db, table);
    let (mut scan_cat, scan_ids) = pre_drift_catalog(&db, table);
    let (mut fb_cat, fb_ids) = pre_drift_catalog(&db, table);
    let stats_built = scan_ids.len();

    let drift_rows = apply_drift(&mut db, table, cfg);

    let scan_refreshed = scan_cat.refresh_statistics(&db, table, &scan_ids);
    let scan_work: f64 = scan_refreshed.iter().map(|(_, w)| w).sum();

    let probes: Vec<BoundSelect> = drift_probes(cfg)
        .into_iter()
        .map(|q| bind_select(&db, q))
        .collect();
    let log = obsv::FeedbackLog::enabled();
    let quiet = obsv::Tracer::disabled();
    for q in &probes {
        let plan = optimizer
            .optimize(&db, q, fb_cat.full_view(), &OptimizeOptions::default())
            .expect("probe optimization succeeds");
        execute_plan_observed(&db, q, &plan.plan, &optimizer.params, &quiet, &log)
            .expect("probe executes");
    }
    let mut store = FeedbackStore::new();
    store.ingest(&log.drain());
    let corrected =
        fb_cat.feedback_refresh(&db, table, &fb_ids, &mut store, &FeedbackConfig::default());
    let fb_work: f64 = corrected.iter().map(|(_, w)| w).sum();

    // The evaluation workload samples its constants from the *drifted*
    // data, so roughly half the predicates land in the new key range.
    let eval_cfg = AdversarialConfig {
        seed: cfg.seed.wrapping_add(0xD1F7),
        ..cfg.clone()
    };
    let eval: Vec<BoundSelect> = adversarial_queries(&db, &eval_cfg, Regime::Zipf, n_queries)
        .into_iter()
        .map(|q| bind_select(&db, q))
        .collect();

    let cells = vec![
        measure_drift("bare", &db, &bare_cat, 0, 0.0, &eval, &optimizer),
        measure_drift(
            "scan-refresh",
            &db,
            &scan_cat,
            scan_refreshed.len(),
            scan_work,
            &eval,
            &optimizer,
        ),
        measure_drift(
            "feedback-refresh",
            &db,
            &fb_cat,
            corrected.len(),
            fb_work,
            &eval,
            &optimizer,
        ),
    ];
    DriftResult {
        drift_rows,
        stats_built,
        cells,
    }
}

/// Optimize and execute the evaluation workload under one strategy's
/// catalog, pooling per-operator q-errors.
fn measure_drift(
    strategy: &'static str,
    db: &Database,
    catalog: &StatsCatalog,
    refreshed: usize,
    refresh_work: f64,
    eval: &[BoundSelect],
    optimizer: &Optimizer,
) -> DriftCell {
    let mut q_errors: Vec<f64> = Vec::new();
    for query in eval {
        let chosen = optimizer
            .optimize(db, query, catalog.full_view(), &OptimizeOptions::default())
            .expect("drift optimization succeeds");
        let tracer = obsv::Tracer::enabled();
        execute_plan_traced(db, query, &chosen.plan, &optimizer.params, &tracer)
            .expect("drift plan executes");
        q_errors.extend(operator_q_errors(&tracer.flush()));
    }
    q_errors.sort_by(f64::total_cmp);
    DriftCell {
        strategy,
        refreshed,
        refresh_work,
        operators: q_errors.len(),
        q_p50: quantile(&q_errors, 0.50),
        q_p90: quantile(&q_errors, 0.90),
        q_p99: quantile(&q_errors, 0.99),
        q_max: q_errors.last().copied().unwrap_or(f64::NAN),
    }
}

/// Per-operator `(est, actual)` q-errors from one traced execution: every
/// `exec.op.*` End span carries `est_rows` (the optimizer's estimate for
/// that node) and `rows_out` (the observed cardinality).
pub fn operator_q_errors(events: &[obsv::Event]) -> Vec<f64> {
    events
        .iter()
        .filter(|e| e.kind == EventKind::End && e.name.starts_with("exec.op."))
        .filter_map(|e| {
            let est = arg_f64(e, "est_rows")?;
            let actual = arg_f64(e, "rows_out")?;
            Some(q_error(est, actual))
        })
        .collect()
}

fn arg_f64(e: &obsv::Event, key: &str) -> Option<f64> {
    e.args
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| match v {
            ArgValue::Int(i) => *i as f64,
            ArgValue::Float(f) => *f,
            ArgValue::Bool(b) => f64::from(u8::from(*b)),
            ArgValue::Str(_) => f64::NAN,
        })
}

/// Nearest-rank quantile of an ascending-sorted slice.
fn quantile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Measure every selectivity variable of `query` directly against the data.
fn true_selectivities(
    db: &Database,
    query: &BoundSelect,
    optimizer: &Optimizer,
) -> FxHashMap<PredicateId, f64> {
    let mut truth = FxHashMap::default();
    for (i, pred) in query.selections.iter().enumerate() {
        let table = db
            .try_table(query.table_of(pred.column.relation))
            .expect("bound relation exists");
        let n = table.row_count();
        let sel = if n == 0 {
            0.0
        } else {
            (0..n).filter(|&r| row_matches(table, r, pred)).count() as f64 / n as f64
        };
        truth.insert(PredicateId::Selection(i), sel);
    }
    for (i, edge) in query.join_edges.iter().enumerate() {
        truth.insert(PredicateId::JoinEdge(i), join_selectivity(db, query, edge));
    }
    if !query.group_by.is_empty() {
        truth.insert(
            PredicateId::GroupBy,
            group_by_fraction(db, query, optimizer),
        );
    }
    truth
}

/// Exact join selectivity: matching key pairs over the cross-product size.
/// NULL keys never match (SQL equi-join semantics).
fn join_selectivity(db: &Database, query: &BoundSelect, edge: &JoinEdge) -> f64 {
    let left = db
        .try_table(query.table_of(edge.left_rel))
        .expect("bound relation exists");
    let right = db
        .try_table(query.table_of(edge.right_rel))
        .expect("bound relation exists");
    let (nl, nr) = (left.row_count(), right.row_count());
    if nl == 0 || nr == 0 {
        return 0.0;
    }
    let mut build: HashMap<Vec<Value>, usize> = HashMap::new();
    'rows: for r in 0..nr {
        let mut key = Vec::with_capacity(edge.pairs.len());
        for &(_, rc) in &edge.pairs {
            let v = right.value(r, rc);
            if v == Value::Null {
                continue 'rows;
            }
            key.push(v);
        }
        *build.entry(key).or_insert(0) += 1;
    }
    let mut matches = 0usize;
    'probe: for r in 0..nl {
        let mut key = Vec::with_capacity(edge.pairs.len());
        for &(lc, _) in &edge.pairs {
            let v = left.value(r, lc);
            if v == Value::Null {
                continue 'probe;
            }
            key.push(v);
        }
        matches += build.get(&key).copied().unwrap_or(0);
    }
    matches as f64 / (nl as f64 * nr as f64)
}

/// Ground-truth GROUP BY distinct fraction: observed groups over observed
/// aggregate input rows, read off the `exec.op.HashAggregate` span of one
/// traced execution (both counts are plan-invariant, so any plan serves).
fn group_by_fraction(db: &Database, query: &BoundSelect, optimizer: &Optimizer) -> f64 {
    let plan = optimizer
        .optimize(
            db,
            query,
            StatsCatalog::new().full_view(),
            &OptimizeOptions::default(),
        )
        .expect("probe optimization succeeds");
    let tracer = obsv::Tracer::enabled();
    execute_plan_traced(db, query, &plan.plan, &optimizer.params, &tracer)
        .expect("probe execution succeeds");
    let events = tracer.flush();
    // Spans: End events carry counts, Begin events carry parent linkage.
    let mut rows_out: FxHashMap<u64, f64> = FxHashMap::default();
    for e in &events {
        if e.kind == EventKind::End {
            if let Some(v) = arg_f64(e, "rows_out") {
                rows_out.insert(e.id, v);
            }
        }
    }
    let agg = events
        .iter()
        .find(|e| e.kind == EventKind::Begin && e.name == "exec.op.HashAggregate");
    let Some(agg) = agg else {
        return 1.0;
    };
    let groups = rows_out.get(&agg.id).copied().unwrap_or(0.0);
    let input: f64 = events
        .iter()
        .filter(|e| {
            e.kind == EventKind::Begin && e.parent == agg.id && e.name.starts_with("exec.op.")
        })
        .filter_map(|e| rows_out.get(&e.id))
        .sum();
    if input <= 0.0 {
        1.0
    } else {
        (groups / input).clamp(0.0, 1.0)
    }
}

impl CardbenchResult {
    /// Hand-rolled JSON (no serde_json offline); numbers render as `null`
    /// when non-finite so the document always parses.
    pub fn to_json(&self) -> String {
        fn num(x: f64) -> String {
            if x.is_finite() {
                format!("{x}")
            } else {
                "null".to_string()
            }
        }
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"experiment\": \"cardbench\",\n  \"rows\": {},\n  \"queries_per_regime\": {},\n  \"seed\": {},\n  \"deterministic\": {},\n  \"regimes\": [\n",
            self.rows, self.queries_per_regime, self.seed, self.deterministic
        ));
        for (i, regime) in self.regimes.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"regime\": \"{}\", \"catalogs\": [\n",
                regime.regime
            ));
            for (j, c) in regime.cells.iter().enumerate() {
                s.push_str(&format!(
                    "      {{\"catalog\": \"{}\", \"stats_built\": {}, \"operators\": {}, \"q_error\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}, \"regret\": {{\"geomean\": {}, \"max\": {}}}}}{}\n",
                    c.catalog,
                    c.stats_built,
                    c.operators,
                    num(c.q_p50),
                    num(c.q_p90),
                    num(c.q_p99),
                    num(c.q_max),
                    num(c.regret_mean),
                    num(c.regret_max),
                    if j + 1 < regime.cells.len() { "," } else { "" }
                ));
            }
            s.push_str(&format!(
                "    ]}}{}\n",
                if i + 1 < self.regimes.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"drift\": {{\"drift_rows\": {}, \"stats_built\": {}, \"strategies\": [\n",
            self.drift.drift_rows, self.drift.stats_built
        ));
        for (j, c) in self.drift.cells.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"strategy\": \"{}\", \"refreshed\": {}, \"refresh_work\": {}, \"operators\": {}, \"q_error\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}}}{}\n",
                c.strategy,
                c.refreshed,
                num(c.refresh_work),
                c.operators,
                num(c.q_p50),
                num(c.q_p90),
                num(c.q_p99),
                num(c.q_max),
                if j + 1 < self.drift.cells.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]}\n}\n");
        s
    }

    pub fn print(&self) {
        println!(
            "cardbench: {} rows, {} queries/regime, seed {} (deterministic: {})",
            self.rows, self.queries_per_regime, self.seed, self.deterministic
        );
        println!(
            "{:<12} {:<10} {:>6} {:>5} {:>9} {:>9} {:>9} {:>10} {:>8} {:>8}",
            "regime",
            "catalog",
            "stats",
            "ops",
            "q-p50",
            "q-p90",
            "q-p99",
            "q-max",
            "regret",
            "rgt-max"
        );
        for regime in &self.regimes {
            for c in &regime.cells {
                println!(
                    "{:<12} {:<10} {:>6} {:>5} {:>9.2} {:>9.2} {:>9.2} {:>10.2} {:>8.3} {:>8.3}",
                    regime.regime,
                    c.catalog,
                    c.stats_built,
                    c.operators,
                    c.q_p50,
                    c.q_p90,
                    c.q_p99,
                    c.q_max,
                    c.regret_mean,
                    c.regret_max
                );
            }
        }
        println!(
            "drift: {} rows appended, {} stats per strategy",
            self.drift.drift_rows, self.drift.stats_built
        );
        println!(
            "{:<18} {:>9} {:>12} {:>5} {:>9} {:>9} {:>9} {:>10}",
            "strategy", "refreshed", "refresh-work", "ops", "q-p50", "q-p90", "q-p99", "q-max"
        );
        for c in &self.drift.cells {
            println!(
                "{:<18} {:>9} {:>12.1} {:>5} {:>9.2} {:>9.2} {:>9.2} {:>10.2}",
                c.strategy,
                c.refreshed,
                c.refresh_work,
                c.operators,
                c.q_p50,
                c.q_p90,
                c.q_p99,
                c.q_max
            );
        }
    }
}

/// CLI entry shared by `exp_cardbench` and its tests.
pub fn cli_scale(args: &[String]) -> ExperimentScale {
    if args.iter().any(|a| a == "--tiny") {
        ExperimentScale::tiny()
    } else if args.iter().any(|a| a == "--full") {
        ExperimentScale::full()
    } else {
        ExperimentScale::default_run()
    }
}

/// The `--out` path (default `BENCH_cardbench.json`).
pub fn cli_out(args: &[String]) -> String {
    flag_value(args, "--out").unwrap_or_else(|| "BENCH_cardbench.json".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_conventions() {
        assert_eq!(q_error(0.0, 0.0), 1.0);
        assert_eq!(q_error(10.0, 10.0), 1.0);
        assert_eq!(q_error(1.0, 100.0), 100.0);
        assert_eq!(q_error(100.0, 1.0), 100.0);
        // est = 0 vs actual = 8: floored at 0.5, finite.
        assert_eq!(q_error(0.0, 8.0), 16.0);
        assert!(q_error(1e9, 0.0).is_finite());
    }

    #[test]
    fn quantiles_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert_eq!(quantile(&v, 0.5), 3.0);
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    fn tiny_run_is_deterministic_and_mnsa_beats_bare_where_it_matters() {
        let result = run(&ExperimentScale::tiny());
        assert!(result.deterministic, "regime re-run changed the numbers");
        assert_eq!(result.regimes.len(), 4);
        for regime in &result.regimes {
            assert_eq!(regime.cells.len(), 3);
            for c in &regime.cells {
                assert!(
                    c.operators > 0,
                    "{}/{}: no operator pairs",
                    regime.regime,
                    c.catalog
                );
                assert!(
                    c.q_p50 >= 1.0,
                    "{}/{}: q-error below 1",
                    regime.regime,
                    c.catalog
                );
                assert!(c.q_max.is_finite());
            }
        }
        // The acceptance bar: tuned statistics must strictly cut the median
        // per-operator q-error on the skewed and correlated regimes.
        for regime in ["zipf", "correlated"] {
            let bare = result.cell(regime, "bare").unwrap();
            let mnsa = result.cell(regime, "mnsa").unwrap();
            assert!(
                mnsa.q_p50 < bare.q_p50,
                "{regime}: mnsa p50 {} not below bare p50 {}",
                mnsa.q_p50,
                bare.q_p50
            );
            assert!(mnsa.stats_built > 0, "{regime}: mnsa built nothing");
        }
        // The drift regime: feedback correction must be far cheaper than a
        // scan rebuild while keeping post-drift estimates comparable.
        let drift = &result.drift;
        assert_eq!(drift.cells.len(), 3);
        assert!(drift.drift_rows > 0);
        for c in &drift.cells {
            assert!(c.operators > 0, "{}: no operator pairs", c.strategy);
            assert!(c.q_p50 >= 1.0 && c.q_max.is_finite(), "{}", c.strategy);
        }
        let bare = drift.cell("bare").unwrap();
        let scan = drift.cell("scan-refresh").unwrap();
        let feedback = drift.cell("feedback-refresh").unwrap();
        assert_eq!(bare.refreshed, 0);
        assert_eq!(bare.refresh_work, 0.0);
        assert_eq!(scan.refreshed, drift.stats_built);
        assert_eq!(feedback.refreshed, drift.stats_built);
        assert!(
            feedback.refresh_work < scan.refresh_work / 10.0,
            "feedback work {} not well below scan work {}",
            feedback.refresh_work,
            scan.refresh_work
        );
        // Post-drift estimation: both refresh strategies must clearly beat
        // the stale catalog at the median, and feedback must stay in the
        // same band as the full rebuild.
        assert!(
            scan.q_p50 < bare.q_p50,
            "scan refresh did not improve on stale stats: {} vs {}",
            scan.q_p50,
            bare.q_p50
        );
        assert!(
            feedback.q_p50 < bare.q_p50,
            "feedback refresh did not improve on stale stats: {} vs {}",
            feedback.q_p50,
            bare.q_p50
        );
        assert!(
            feedback.q_p50 <= scan.q_p50 * 2.0,
            "feedback p50 {} not comparable to scan p50 {}",
            feedback.q_p50,
            scan.q_p50
        );
        // JSON artifact parses.
        let json = result.to_json();
        obsv::json::parse(&json).expect("BENCH_cardbench.json parses");
    }
}
