//! Estimation-quality benchmark: q-error and plan-cost regret on
//! adversarial workloads.
//!
//! The paper scores MNSA by plan cost on TPC-D-style data; the cardinality-
//! estimation benchmark literature (PAPERS.md) argues the sharper lens is
//! **q-error against ground truth**, measured per operator, on the regimes
//! where estimation actually breaks: heavy skew, correlated columns, and
//! many-way star joins. This experiment runs the four adversarial regimes
//! of [`datagen::adversarial`] under three statistics configurations and
//! reports, per `(regime, catalog)` cell:
//!
//! * **q-error quantiles** (p50/p90/p99/max) pooled over every plan
//!   operator of every query. Truth comes from the executor's `exec.op.*`
//!   spans (each carries `est_rows` and the observed `rows_out`), so the
//!   comparison is per-operator, not just at the root.
//! * **plan-cost regret**: executed work of the chosen plan divided by the
//!   executed work of the *true-cardinality plan* — the plan the optimizer
//!   picks when every selectivity variable is injected with its measured
//!   ground-truth value ([`optimizer::OptimizeOptions`]'s §7.2 extension).
//!   Regret is a pure plan-choice metric: both plans are executed on the
//!   same data, so estimation errors only matter where they change the
//!   plan.
//!
//! The three catalogs ladder the statistics investment: `bare` (magic
//! numbers only), `heuristic` (every single-column candidate of every
//! query, built unconditionally), and `mnsa` (the paper's sensitivity-
//! driven tuner with joint 2-D histograms enabled, so correlated pairs can
//! be refined).
//!
//! Ground truth for the injected plan is computed from the data itself —
//! selection selectivities by scanning with the executor's predicate
//! kernels, join selectivities by exact key-pair counting, and the GROUP BY
//! distinct fraction from the aggregate's observed input/output rows —
//! making the true plan independent of any catalog under test.

use crate::common::{flag_value, ExperimentScale};
use autostats::{single_column_candidates, MnsaConfig, MnsaEngine};
use datagen::{adversarial_queries, build_adversarial, AdversarialConfig, Regime};
use executor::{execute_plan, execute_plan_traced, predicate::row_matches};
use obsv::{ArgValue, EventKind};
use optimizer::{OptimizeOptions, Optimizer};
use query::{bind_statement, BoundSelect, JoinEdge, PredicateId, Statement};
use rustc_hash::FxHashMap;
use stats::{BuildOptions, StatsCatalog};
use std::collections::HashMap;
use storage::{Database, Value};

/// The statistics configurations, in reporting order.
pub const CATALOGS: [&str; 3] = ["bare", "heuristic", "mnsa"];

/// One `(regime, catalog)` measurement cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogCell {
    pub catalog: &'static str,
    /// Active statistics in the catalog after tuning/building.
    pub stats_built: usize,
    /// Number of `(est, actual)` operator pairs pooled into the quantiles.
    pub operators: usize,
    pub q_p50: f64,
    pub q_p90: f64,
    pub q_p99: f64,
    pub q_max: f64,
    /// Geometric mean over queries of `work_chosen / work_true`.
    pub regret_mean: f64,
    pub regret_max: f64,
}

/// All catalogs for one workload regime.
#[derive(Debug, Clone, PartialEq)]
pub struct RegimeResult {
    pub regime: &'static str,
    pub cells: Vec<CatalogCell>,
}

/// The whole run, as serialized to `BENCH_cardbench.json`.
#[derive(Debug, Clone)]
pub struct CardbenchResult {
    pub rows: usize,
    pub queries_per_regime: usize,
    pub seed: u64,
    /// Whether re-running a regime reproduced its cells bit-identically.
    pub deterministic: bool,
    pub regimes: Vec<RegimeResult>,
}

impl CardbenchResult {
    pub fn cell(&self, regime: &str, catalog: &str) -> Option<&CatalogCell> {
        self.regimes
            .iter()
            .find(|r| r.regime == regime)?
            .cells
            .iter()
            .find(|c| c.catalog == catalog)
    }
}

/// The q-error of one estimate, with the benchmark literature's degenerate
/// conventions: both sides are floored at 0.5 so `est = 0` vs `actual = 0`
/// gives exactly 1 (a correct empty estimate), and an empty-vs-nonempty
/// mismatch stays finite.
pub fn q_error(est: f64, actual: f64) -> f64 {
    let e = est.max(0.5);
    let a = actual.max(0.5);
    (e / a).max(a / e)
}

/// The adversarial generator configuration for a bench scale: the paper-
/// style `scale` knob maps to fact rows (0.001 → 1 000).
pub fn config_for(scale: &ExperimentScale) -> AdversarialConfig {
    let rows = ((scale.scale * 1_000_000.0).round() as usize).max(200);
    let base = if rows <= 1_200 {
        AdversarialConfig::tiny()
    } else {
        AdversarialConfig::default()
    };
    AdversarialConfig {
        rows,
        seed: scale.seed,
        ..base
    }
}

/// Run the full benchmark: four regimes × three catalogs.
pub fn run(scale: &ExperimentScale) -> CardbenchResult {
    run_with_obs(scale, &obsv::Obs::disabled())
}

/// [`run`] with harness-level observability: one `cardbench.regime` span per
/// regime pass (cells recorded as args) and per-regime query counters, so
/// the driver's `--trace-out` export has a validated span tree. Purely
/// observational — results are bit-identical with tracing on or off.
pub fn run_with_obs(scale: &ExperimentScale, obs: &obsv::Obs) -> CardbenchResult {
    let cfg = config_for(scale);
    let mut root = obs.tracer.span("cardbench.run");
    root.arg("rows", cfg.rows as i64);
    root.arg("queries_per_regime", scale.workload_len as i64);
    let regimes: Vec<RegimeResult> = Regime::ALL
        .iter()
        .map(|&r| {
            let mut span = root.child("cardbench.regime");
            span.arg("regime", r.name());
            obs.metrics
                .counter("cardbench.queries")
                .add(scale.workload_len as u64);
            let result = run_regime(&cfg, r, scale.workload_len);
            for cell in &result.cells {
                span.arg(cell.catalog, cell.q_p50);
            }
            result
        })
        .collect();
    // Determinism audit: a regime re-run from the same seed must reproduce
    // every cell bit-identically (the whole pipeline is seeded and the
    // executor's work metric is deterministic).
    let again = {
        let mut span = root.child("cardbench.regime");
        span.arg("regime", "zipf-recheck");
        run_regime(&cfg, Regime::Zipf, scale.workload_len)
    };
    let deterministic = regimes
        .iter()
        .find(|r| r.regime == Regime::Zipf.name())
        .map(|r| *r == again)
        .unwrap_or(false);
    root.arg("deterministic", deterministic);
    CardbenchResult {
        rows: cfg.rows,
        queries_per_regime: scale.workload_len,
        seed: cfg.seed,
        deterministic,
        regimes,
    }
}

/// Everything measured about one query that does not depend on the catalog
/// under test: the bound query, its ground-truth selectivities, and the
/// executed work of the true-cardinality plan.
struct QueryCase {
    query: BoundSelect,
    work_true: f64,
}

fn run_regime(cfg: &AdversarialConfig, regime: Regime, n_queries: usize) -> RegimeResult {
    let db = build_adversarial(cfg, regime);
    let optimizer = Optimizer::default();
    let queries: Vec<BoundSelect> = adversarial_queries(&db, cfg, regime, n_queries)
        .into_iter()
        .map(|q| {
            match bind_statement(&db, &Statement::Select(q)).expect("adversarial query binds") {
                query::BoundStatement::Select(b) => b,
                other => panic!("adversarial workload is SELECT-only, got {other:?}"),
            }
        })
        .collect();

    let cases: Vec<QueryCase> = queries
        .into_iter()
        .map(|q| {
            let truth = true_selectivities(&db, &q, &optimizer);
            let injected = OptimizeOptions { injected: truth };
            let true_plan = optimizer
                .optimize(&db, &q, StatsCatalog::new().full_view(), &injected)
                .expect("true-cardinality optimization succeeds");
            let work_true = execute_plan(&db, &q, &true_plan.plan, &optimizer.params)
                .expect("true plan executes")
                .work;
            QueryCase {
                query: q,
                work_true,
            }
        })
        .collect();

    let cells = CATALOGS
        .iter()
        .map(|&name| {
            let catalog = build_catalog(name, &db, &cases);
            measure_catalog(name, &db, &catalog, &cases, &optimizer)
        })
        .collect();
    RegimeResult {
        regime: regime.name(),
        cells,
    }
}

/// Build one of the three statistics configurations for a regime's workload.
fn build_catalog(name: &str, db: &Database, cases: &[QueryCase]) -> StatsCatalog {
    match name {
        "bare" => StatsCatalog::new(),
        "heuristic" => {
            let mut catalog = StatsCatalog::new();
            for case in cases {
                for d in single_column_candidates(&case.query) {
                    if catalog.find_active(&d).is_none() {
                        catalog
                            .create_statistic(db, d)
                            .expect("heuristic statistic builds");
                    }
                }
            }
            catalog
        }
        "mnsa" => {
            // Joint 2-D histograms let MNSA's multi-column candidates refine
            // correlated predicate pairs — the §3.1 case the correlated
            // regime is built to stress.
            let mut catalog = StatsCatalog::new()
                .with_build_options(BuildOptions::default().with_joint_histograms());
            let engine = MnsaEngine::new(MnsaConfig::default());
            for case in cases {
                engine
                    .run_query(db, &mut catalog, &case.query)
                    .expect("mnsa tuning succeeds");
            }
            catalog
        }
        other => panic!("unknown catalog configuration {other}"),
    }
}

/// Optimize and execute every query under `catalog`, pooling per-operator
/// q-errors and per-query regret into one cell.
fn measure_catalog(
    name: &'static str,
    db: &Database,
    catalog: &StatsCatalog,
    cases: &[QueryCase],
    optimizer: &Optimizer,
) -> CatalogCell {
    let mut q_errors: Vec<f64> = Vec::new();
    let mut regrets: Vec<f64> = Vec::new();
    for case in cases {
        let chosen = optimizer
            .optimize(
                db,
                &case.query,
                catalog.full_view(),
                &OptimizeOptions::default(),
            )
            .expect("optimization succeeds");
        let tracer = obsv::Tracer::enabled();
        let out = execute_plan_traced(db, &case.query, &chosen.plan, &optimizer.params, &tracer)
            .expect("plan executes");
        let events = tracer.flush();
        q_errors.extend(operator_q_errors(&events));
        // Floor the denominator: a true plan with (near-)zero work would
        // otherwise make the ratio blow up on trivial queries.
        regrets.push(out.work / case.work_true.max(1.0));
    }
    q_errors.sort_by(f64::total_cmp);
    let geomean = if regrets.is_empty() {
        1.0
    } else {
        (regrets.iter().map(|r| r.max(1e-9).ln()).sum::<f64>() / regrets.len() as f64).exp()
    };
    CatalogCell {
        catalog: name,
        stats_built: catalog.active_count(),
        operators: q_errors.len(),
        q_p50: quantile(&q_errors, 0.50),
        q_p90: quantile(&q_errors, 0.90),
        q_p99: quantile(&q_errors, 0.99),
        q_max: q_errors.last().copied().unwrap_or(f64::NAN),
        regret_mean: geomean,
        regret_max: regrets.iter().copied().fold(f64::NAN, f64::max),
    }
}

/// Per-operator `(est, actual)` q-errors from one traced execution: every
/// `exec.op.*` End span carries `est_rows` (the optimizer's estimate for
/// that node) and `rows_out` (the observed cardinality).
pub fn operator_q_errors(events: &[obsv::Event]) -> Vec<f64> {
    events
        .iter()
        .filter(|e| e.kind == EventKind::End && e.name.starts_with("exec.op."))
        .filter_map(|e| {
            let est = arg_f64(e, "est_rows")?;
            let actual = arg_f64(e, "rows_out")?;
            Some(q_error(est, actual))
        })
        .collect()
}

fn arg_f64(e: &obsv::Event, key: &str) -> Option<f64> {
    e.args
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| match v {
            ArgValue::Int(i) => *i as f64,
            ArgValue::Float(f) => *f,
            ArgValue::Bool(b) => f64::from(u8::from(*b)),
            ArgValue::Str(_) => f64::NAN,
        })
}

/// Nearest-rank quantile of an ascending-sorted slice.
fn quantile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Measure every selectivity variable of `query` directly against the data.
fn true_selectivities(
    db: &Database,
    query: &BoundSelect,
    optimizer: &Optimizer,
) -> FxHashMap<PredicateId, f64> {
    let mut truth = FxHashMap::default();
    for (i, pred) in query.selections.iter().enumerate() {
        let table = db
            .try_table(query.table_of(pred.column.relation))
            .expect("bound relation exists");
        let n = table.row_count();
        let sel = if n == 0 {
            0.0
        } else {
            (0..n).filter(|&r| row_matches(table, r, pred)).count() as f64 / n as f64
        };
        truth.insert(PredicateId::Selection(i), sel);
    }
    for (i, edge) in query.join_edges.iter().enumerate() {
        truth.insert(PredicateId::JoinEdge(i), join_selectivity(db, query, edge));
    }
    if !query.group_by.is_empty() {
        truth.insert(
            PredicateId::GroupBy,
            group_by_fraction(db, query, optimizer),
        );
    }
    truth
}

/// Exact join selectivity: matching key pairs over the cross-product size.
/// NULL keys never match (SQL equi-join semantics).
fn join_selectivity(db: &Database, query: &BoundSelect, edge: &JoinEdge) -> f64 {
    let left = db
        .try_table(query.table_of(edge.left_rel))
        .expect("bound relation exists");
    let right = db
        .try_table(query.table_of(edge.right_rel))
        .expect("bound relation exists");
    let (nl, nr) = (left.row_count(), right.row_count());
    if nl == 0 || nr == 0 {
        return 0.0;
    }
    let mut build: HashMap<Vec<Value>, usize> = HashMap::new();
    'rows: for r in 0..nr {
        let mut key = Vec::with_capacity(edge.pairs.len());
        for &(_, rc) in &edge.pairs {
            let v = right.value(r, rc);
            if v == Value::Null {
                continue 'rows;
            }
            key.push(v);
        }
        *build.entry(key).or_insert(0) += 1;
    }
    let mut matches = 0usize;
    'probe: for r in 0..nl {
        let mut key = Vec::with_capacity(edge.pairs.len());
        for &(lc, _) in &edge.pairs {
            let v = left.value(r, lc);
            if v == Value::Null {
                continue 'probe;
            }
            key.push(v);
        }
        matches += build.get(&key).copied().unwrap_or(0);
    }
    matches as f64 / (nl as f64 * nr as f64)
}

/// Ground-truth GROUP BY distinct fraction: observed groups over observed
/// aggregate input rows, read off the `exec.op.HashAggregate` span of one
/// traced execution (both counts are plan-invariant, so any plan serves).
fn group_by_fraction(db: &Database, query: &BoundSelect, optimizer: &Optimizer) -> f64 {
    let plan = optimizer
        .optimize(
            db,
            query,
            StatsCatalog::new().full_view(),
            &OptimizeOptions::default(),
        )
        .expect("probe optimization succeeds");
    let tracer = obsv::Tracer::enabled();
    execute_plan_traced(db, query, &plan.plan, &optimizer.params, &tracer)
        .expect("probe execution succeeds");
    let events = tracer.flush();
    // Spans: End events carry counts, Begin events carry parent linkage.
    let mut rows_out: FxHashMap<u64, f64> = FxHashMap::default();
    for e in &events {
        if e.kind == EventKind::End {
            if let Some(v) = arg_f64(e, "rows_out") {
                rows_out.insert(e.id, v);
            }
        }
    }
    let agg = events
        .iter()
        .find(|e| e.kind == EventKind::Begin && e.name == "exec.op.HashAggregate");
    let Some(agg) = agg else {
        return 1.0;
    };
    let groups = rows_out.get(&agg.id).copied().unwrap_or(0.0);
    let input: f64 = events
        .iter()
        .filter(|e| {
            e.kind == EventKind::Begin && e.parent == agg.id && e.name.starts_with("exec.op.")
        })
        .filter_map(|e| rows_out.get(&e.id))
        .sum();
    if input <= 0.0 {
        1.0
    } else {
        (groups / input).clamp(0.0, 1.0)
    }
}

impl CardbenchResult {
    /// Hand-rolled JSON (no serde_json offline); numbers render as `null`
    /// when non-finite so the document always parses.
    pub fn to_json(&self) -> String {
        fn num(x: f64) -> String {
            if x.is_finite() {
                format!("{x}")
            } else {
                "null".to_string()
            }
        }
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"experiment\": \"cardbench\",\n  \"rows\": {},\n  \"queries_per_regime\": {},\n  \"seed\": {},\n  \"deterministic\": {},\n  \"regimes\": [\n",
            self.rows, self.queries_per_regime, self.seed, self.deterministic
        ));
        for (i, regime) in self.regimes.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"regime\": \"{}\", \"catalogs\": [\n",
                regime.regime
            ));
            for (j, c) in regime.cells.iter().enumerate() {
                s.push_str(&format!(
                    "      {{\"catalog\": \"{}\", \"stats_built\": {}, \"operators\": {}, \"q_error\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}, \"regret\": {{\"geomean\": {}, \"max\": {}}}}}{}\n",
                    c.catalog,
                    c.stats_built,
                    c.operators,
                    num(c.q_p50),
                    num(c.q_p90),
                    num(c.q_p99),
                    num(c.q_max),
                    num(c.regret_mean),
                    num(c.regret_max),
                    if j + 1 < regime.cells.len() { "," } else { "" }
                ));
            }
            s.push_str(&format!(
                "    ]}}{}\n",
                if i + 1 < self.regimes.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    pub fn print(&self) {
        println!(
            "cardbench: {} rows, {} queries/regime, seed {} (deterministic: {})",
            self.rows, self.queries_per_regime, self.seed, self.deterministic
        );
        println!(
            "{:<12} {:<10} {:>6} {:>5} {:>9} {:>9} {:>9} {:>10} {:>8} {:>8}",
            "regime",
            "catalog",
            "stats",
            "ops",
            "q-p50",
            "q-p90",
            "q-p99",
            "q-max",
            "regret",
            "rgt-max"
        );
        for regime in &self.regimes {
            for c in &regime.cells {
                println!(
                    "{:<12} {:<10} {:>6} {:>5} {:>9.2} {:>9.2} {:>9.2} {:>10.2} {:>8.3} {:>8.3}",
                    regime.regime,
                    c.catalog,
                    c.stats_built,
                    c.operators,
                    c.q_p50,
                    c.q_p90,
                    c.q_p99,
                    c.q_max,
                    c.regret_mean,
                    c.regret_max
                );
            }
        }
    }
}

/// CLI entry shared by `exp_cardbench` and its tests.
pub fn cli_scale(args: &[String]) -> ExperimentScale {
    if args.iter().any(|a| a == "--tiny") {
        ExperimentScale::tiny()
    } else if args.iter().any(|a| a == "--full") {
        ExperimentScale::full()
    } else {
        ExperimentScale::default_run()
    }
}

/// The `--out` path (default `BENCH_cardbench.json`).
pub fn cli_out(args: &[String]) -> String {
    flag_value(args, "--out").unwrap_or_else(|| "BENCH_cardbench.json".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_conventions() {
        assert_eq!(q_error(0.0, 0.0), 1.0);
        assert_eq!(q_error(10.0, 10.0), 1.0);
        assert_eq!(q_error(1.0, 100.0), 100.0);
        assert_eq!(q_error(100.0, 1.0), 100.0);
        // est = 0 vs actual = 8: floored at 0.5, finite.
        assert_eq!(q_error(0.0, 8.0), 16.0);
        assert!(q_error(1e9, 0.0).is_finite());
    }

    #[test]
    fn quantiles_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert_eq!(quantile(&v, 0.5), 3.0);
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    fn tiny_run_is_deterministic_and_mnsa_beats_bare_where_it_matters() {
        let result = run(&ExperimentScale::tiny());
        assert!(result.deterministic, "regime re-run changed the numbers");
        assert_eq!(result.regimes.len(), 4);
        for regime in &result.regimes {
            assert_eq!(regime.cells.len(), 3);
            for c in &regime.cells {
                assert!(
                    c.operators > 0,
                    "{}/{}: no operator pairs",
                    regime.regime,
                    c.catalog
                );
                assert!(
                    c.q_p50 >= 1.0,
                    "{}/{}: q-error below 1",
                    regime.regime,
                    c.catalog
                );
                assert!(c.q_max.is_finite());
            }
        }
        // The acceptance bar: tuned statistics must strictly cut the median
        // per-operator q-error on the skewed and correlated regimes.
        for regime in ["zipf", "correlated"] {
            let bare = result.cell(regime, "bare").unwrap();
            let mnsa = result.cell(regime, "mnsa").unwrap();
            assert!(
                mnsa.q_p50 < bare.q_p50,
                "{regime}: mnsa p50 {} not below bare p50 {}",
                mnsa.q_p50,
                bare.q_p50
            );
            assert!(mnsa.stats_built > 0, "{regime}: mnsa built nothing");
        }
        // JSON artifact parses.
        let json = result.to_json();
        obsv::json::parse(&json).expect("BENCH_cardbench.json parses");
    }
}
