//! The online lifecycle loop end to end: a seeded TPC-D query+update stream
//! against [`autod::OnlineService`], starting from **zero** statistics.
//!
//! The driver interleaves the workload with deterministic virtual-time
//! ticks. Mid-run, a whole-table bulk UPDATE makes every statistic on
//! `lineitem` stale, so the daemon's staleness refreshes become visible in
//! the `autod.*` metrics and the journal. After the stream, the daemon is
//! ticked until quiescent and the run is measured three ways:
//!
//! * **plan quality vs time** — each published epoch's catalog is scored by
//!   optimizing the fixed TPC-D probe queries against the final database;
//!   the trajectory should descend from the zero-statistics baseline toward
//!   the offline-tuned cost;
//! * **convergence** — the final online catalog's probe cost lands within a
//!   few percent of [`OfflineTuner::tune`](autostats::OfflineTuner) run on
//!   the same deduplicated query sample;
//! * **determinism** — the whole single-threaded drive is executed twice
//!   and must agree bit-for-bit: per-tick reports, work meters
//!   (`f64::to_bits`), epoch generations, and the journal's JSON rendering.
//!
//! A final multi-threaded pass (N query threads + the daemon) measures wall
//! clock only — it exercises the epoch-swap read path under contention but
//! makes no determinism claim.

use crate::common::ExperimentScale;
use autod::{AutodConfig, OnlineService, ServiceReport, TelemetryConfig, TickReport};
use autostats::{AutoStatsManager, CreationPolicy, ManagerConfig, OfflineTuner};
use datagen::{
    build_tpcd, tpcd_benchmark_queries, Complexity, RagsGenerator, TpcdConfig, WorkloadSpec,
    ZipfSpec,
};
use optimizer::{OptimizeOptions, Optimizer};
use query::{bind_statement, BoundSelect, BoundStatement, Statement};
use stats::StatsCatalog;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;
use storage::Database;

/// One point of the plan-quality-vs-time curve.
#[derive(Debug, Clone)]
pub struct TrajectoryPoint {
    pub tick: u64,
    pub generation: u64,
    /// Total optimizer cost of the probe queries under this epoch's catalog.
    pub probe_cost: f64,
}

/// Query-latency quantiles over one epoch's lifetime (publication to
/// publication), from the service's log-linear latency histogram. Values
/// are wall-clock nanoseconds — outside the bit-identity contract.
#[derive(Debug, Clone)]
pub struct EpochLatency {
    pub generation: u64,
    /// The tick at which this epoch was published (closing the interval).
    pub tick: u64,
    /// Queries observed during the epoch interval.
    pub queries: u64,
    pub p50_ns: u64,
    pub p90_ns: u64,
    pub p99_ns: u64,
    pub p999_ns: u64,
}

/// The telemetry streams one instrumented drive exports (JSONL, validated
/// by `obsv_check --windows / --health / --jsonl`).
#[derive(Debug, Clone, Default)]
pub struct TelemetryExport {
    /// One [`obsv::WindowDelta`] per tick.
    pub windows_jsonl: String,
    /// One [`obsv::HealthSnapshot`] per tick.
    pub health_jsonl: String,
    /// The slow-query reservoir as one valid trace stream.
    pub slowlog_jsonl: String,
}

/// Everything `exp_online` reports (and writes to `BENCH_online.json`).
#[derive(Debug, Clone)]
pub struct OnlineResult {
    pub scale: f64,
    pub statements: usize,
    pub ticks: u64,
    pub threads: usize,
    pub budget_per_tick: f64,
    pub distinct_templates: usize,
    pub queries_tuned: u64,
    pub tuning_work: f64,
    pub refreshes: u64,
    pub refresh_work: f64,
    pub budget_exhausted_ticks: u64,
    pub epoch_generation: u64,
    pub statistics_built: usize,
    /// Probe cost with no statistics at all (the starting point).
    pub baseline_probe_cost: f64,
    /// Probe cost under the daemon's final catalog.
    pub online_probe_cost: f64,
    /// Probe cost under an offline `tune` on the same deduplicated sample.
    pub offline_probe_cost: f64,
    pub trajectory: Vec<TrajectoryPoint>,
    /// Per-epoch query-latency quantiles (publication to publication).
    pub epoch_latency: Vec<EpochLatency>,
    /// True when the seed-fixed single-threaded rerun was bit-identical.
    pub rerun_identical: bool,
    /// Wall-clock milliseconds for the multi-threaded pass (0 if skipped).
    pub threaded_wall_ms: f64,
    /// Queries observed by the monitor during the multi-threaded pass.
    pub threaded_observed: u64,
}

impl OnlineResult {
    /// Convergence gap: how far the online catalog's probe cost sits from
    /// the offline-tuned one, in percent of the offline cost.
    pub fn convergence_gap_pct(&self) -> f64 {
        if self.offline_probe_cost <= 0.0 {
            return 0.0;
        }
        (self.online_probe_cost - self.offline_probe_cost).abs() / self.offline_probe_cost * 100.0
    }

    /// Hand-rolled JSON (no serde_json offline).
    pub fn to_json(&self) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        }
        let mut out = String::new();
        out.push_str("{\n  \"experiment\": \"online\",\n");
        out.push_str(&format!("  \"scale\": {},\n", self.scale));
        out.push_str(&format!("  \"statements\": {},\n", self.statements));
        out.push_str(&format!("  \"ticks\": {},\n", self.ticks));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!(
            "  \"budget_per_tick\": {},\n",
            num(self.budget_per_tick)
        ));
        out.push_str(&format!(
            "  \"distinct_templates\": {},\n",
            self.distinct_templates
        ));
        out.push_str(&format!("  \"queries_tuned\": {},\n", self.queries_tuned));
        out.push_str(&format!("  \"tuning_work\": {},\n", num(self.tuning_work)));
        out.push_str(&format!("  \"refreshes\": {},\n", self.refreshes));
        out.push_str(&format!(
            "  \"refresh_work\": {},\n",
            num(self.refresh_work)
        ));
        out.push_str(&format!(
            "  \"budget_exhausted_ticks\": {},\n",
            self.budget_exhausted_ticks
        ));
        out.push_str(&format!(
            "  \"epoch_generation\": {},\n",
            self.epoch_generation
        ));
        out.push_str(&format!(
            "  \"statistics_built\": {},\n",
            self.statistics_built
        ));
        out.push_str(&format!(
            "  \"baseline_probe_cost\": {},\n",
            num(self.baseline_probe_cost)
        ));
        out.push_str(&format!(
            "  \"online_probe_cost\": {},\n",
            num(self.online_probe_cost)
        ));
        out.push_str(&format!(
            "  \"offline_probe_cost\": {},\n",
            num(self.offline_probe_cost)
        ));
        out.push_str(&format!(
            "  \"convergence_gap_pct\": {},\n",
            num(self.convergence_gap_pct())
        ));
        out.push_str("  \"trajectory\": [\n");
        for (i, p) in self.trajectory.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"tick\": {}, \"generation\": {}, \"probe_cost\": {}}}{}\n",
                p.tick,
                p.generation,
                num(p.probe_cost),
                if i + 1 < self.trajectory.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"epoch_latency\": [\n");
        for (i, e) in self.epoch_latency.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"generation\": {}, \"tick\": {}, \"queries\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}{}\n",
                e.generation,
                e.tick,
                e.queries,
                e.p50_ns,
                e.p90_ns,
                e.p99_ns,
                e.p999_ns,
                if i + 1 < self.epoch_latency.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"rerun_identical\": {},\n",
            self.rerun_identical
        ));
        out.push_str(&format!(
            "  \"threaded_wall_ms\": {},\n",
            num(self.threaded_wall_ms)
        ));
        out.push_str(&format!(
            "  \"threaded_observed\": {}\n",
            self.threaded_observed
        ));
        out.push_str("}\n");
        out
    }

    pub fn print(&self) {
        println!(
            "stream: {} statements, {} distinct templates, {} ticks (budget {}/tick)",
            self.statements, self.distinct_templates, self.ticks, self.budget_per_tick
        );
        println!(
            "daemon: tuned {} templates (work {:.0}), refreshed {} statistics (work {:.0}), {} exhausted ticks, generation {}",
            self.queries_tuned,
            self.tuning_work,
            self.refreshes,
            self.refresh_work,
            self.budget_exhausted_ticks,
            self.epoch_generation
        );
        println!(
            "probes: baseline {:.0} -> online {:.0} vs offline {:.0}  (gap {:.2}%)",
            self.baseline_probe_cost,
            self.online_probe_cost,
            self.offline_probe_cost,
            self.convergence_gap_pct()
        );
        for p in &self.trajectory {
            println!(
                "  tick {:>4}  generation {:>3}  probe cost {:>12.0}",
                p.tick, p.generation, p.probe_cost
            );
        }
        for e in &self.epoch_latency {
            println!(
                "  epoch {:>3} (tick {:>4})  {:>6} queries  p50 {:>10} ns  p90 {:>10} ns  p99 {:>10} ns  p999 {:>10} ns",
                e.generation, e.tick, e.queries, e.p50_ns, e.p90_ns, e.p99_ns, e.p999_ns
            );
        }
        println!(
            "determinism: seed-fixed single-threaded rerun identical = {}",
            self.rerun_identical
        );
        if self.threads > 1 {
            println!(
                "threads: {} query threads drove {} observations in {:.1} ms wall",
                self.threads, self.threaded_observed, self.threaded_wall_ms
            );
        }
    }
}

/// What one deterministic drive leaves behind.
struct Drive {
    db: Database,
    report: ServiceReport,
    statements: Vec<Statement>,
    tick_reports: Vec<TickReport>,
    /// Epoch captured after each tick, in tick order.
    epochs: Vec<Arc<autod::CatalogEpoch>>,
    /// Per-epoch latency quantiles and the exported telemetry streams.
    epoch_latency: Vec<EpochLatency>,
    telemetry: TelemetryExport,
}

impl Drive {
    /// The bit-comparable fingerprint of a drive: per-tick reports, the
    /// journal rendering, the work meters, and the final generation.
    fn digest(&self) -> (Vec<TickReport>, String, u64, u64, u64) {
        let refresh_bits = self
            .tick_reports
            .iter()
            .map(|r| r.refresh_work)
            .sum::<f64>()
            .to_bits();
        let tuning_bits = self
            .tick_reports
            .iter()
            .map(|r| r.tuning_work)
            .sum::<f64>()
            .to_bits();
        (
            self.tick_reports.clone(),
            self.report.session.to_json(),
            self.report.generation,
            refresh_bits,
            tuning_bits,
        )
    }
}

fn service_config(budget_per_tick: f64) -> AutodConfig {
    AutodConfig {
        budget_per_tick,
        shrink_every: 4,
        // Sample every template: the bench slow-query export should always
        // contain executor span trees, whatever the workload's fingerprints.
        telemetry: TelemetryConfig {
            sample_one_in: 1,
            ..TelemetryConfig::default()
        },
        ..AutodConfig::default()
    }
}

fn manager_config() -> ManagerConfig {
    // The daemon owns creation and maintenance; the manager hands over a
    // database with zero statistics and no per-statement tuning.
    ManagerConfig {
        creation: CreationPolicy::Manual,
        auto_maintain: false,
        ..ManagerConfig::default()
    }
}

fn workload(db: &Database, scale: &ExperimentScale) -> Vec<Statement> {
    let spec = WorkloadSpec::new(20, Complexity::Simple, scale.workload_len).with_seed(scale.seed);
    RagsGenerator::generate(db, &spec)
}

/// The mid-run bulk modification: every `lineitem` row is touched, so every
/// statistic on the table crosses the `max(500, 20% of rows)` threshold.
const BULK_UPDATE_SQL: &str = "UPDATE lineitem SET l_linenumber = 1";

/// One deterministic single-threaded drive of the closed loop.
fn drive(scale: &ExperimentScale, ticks: u64, budget_per_tick: f64, obs: obsv::Obs) -> Drive {
    let db = build_tpcd(&TpcdConfig {
        scale: scale.scale,
        zipf: ZipfSpec::Mixed,
        seed: scale.seed,
    });
    let statements = workload(&db, scale);
    let mgr = AutoStatsManager::new_with_obs(db, manager_config(), obs);
    let svc = OnlineService::start(mgr.serve(), service_config(budget_per_tick));
    let handle = svc.handle(1);

    let chunk = (statements.len() / ticks.max(1) as usize).max(1);
    // Three quarters into the stream: late enough that earlier ticks have
    // already built statistics on `lineitem`, so the bulk write makes real
    // statistics stale instead of merely preceding their construction.
    let bulk_at = statements.len() * 3 / 4;
    let mut tick_reports = Vec::new();
    let mut epochs = Vec::new();
    let mut epoch_latency = Vec::new();
    let mut telemetry = TelemetryExport::default();
    // Cumulative latency distribution at the last epoch publication; the
    // delta to the next publication is that epoch's own distribution.
    let mut last_epoch_sample = obsv::LatencySample::default();
    let query_latency = svc.metrics().latency("autod.query.latency_ns");
    let mut tick_now = |svc: &OnlineService,
                        reports: &mut Vec<TickReport>,
                        epochs: &mut Vec<Arc<autod::CatalogEpoch>>| {
        let r = svc.tick_wait().expect("tick succeeds");
        epochs.push(svc.epoch());
        telemetry
            .windows_jsonl
            .push_str(&svc.roll_window(r.tick).to_json_line());
        telemetry.windows_jsonl.push('\n');
        telemetry
            .health_jsonl
            .push_str(&svc.health().to_json_line());
        telemetry.health_jsonl.push('\n');
        if let Some(generation) = r.published_generation {
            let cumulative = query_latency.snapshot();
            let sample = cumulative.delta_from(&last_epoch_sample);
            epoch_latency.push(EpochLatency {
                generation,
                tick: r.tick,
                queries: sample.count,
                p50_ns: sample.quantile(0.50),
                p90_ns: sample.quantile(0.90),
                p99_ns: sample.quantile(0.99),
                p999_ns: sample.quantile(0.999),
            });
            last_epoch_sample = cumulative;
        }
        reports.push(r);
    };

    for (i, stmt) in statements.iter().enumerate() {
        if i == bulk_at {
            handle.run_sql(BULK_UPDATE_SQL).expect("bulk update runs");
        }
        handle.run(stmt).expect("workload statement runs");
        if (i + 1) % chunk == 0 {
            tick_now(&svc, &mut tick_reports, &mut epochs);
        }
    }
    // Drain: tick until a fully quiet tick (nothing tuned, refreshed, or
    // published, budget not exhausted). Deterministic — the daemon is a pure
    // state machine — and bounded as a backstop.
    for _ in 0..512 {
        tick_now(&svc, &mut tick_reports, &mut epochs);
        let last = tick_reports.last().expect("just pushed");
        let quiet = last.queries_tuned == 0
            && last.refreshed == 0
            && !last.budget_exhausted
            && last.published_generation.is_none();
        if quiet {
            break;
        }
    }

    telemetry.slowlog_jsonl = obsv::slowlog::to_jsonl(&svc.drain_slow_queries());
    let (db, report) = svc.shutdown().expect("daemon thread lives");
    if let Some(e) = &report.error {
        panic!("daemon tick failed during drive: {e}");
    }
    Drive {
        db,
        report,
        statements,
        tick_reports,
        epochs,
        epoch_latency,
        telemetry,
    }
}

/// Total optimizer cost of the TPC-D probe queries under `catalog`.
fn probe_cost(db: &Database, probes: &[BoundSelect], catalog: &StatsCatalog) -> f64 {
    let optimizer = Optimizer::default();
    probes
        .iter()
        .filter_map(|q| {
            optimizer
                .optimize(db, q, catalog.full_view(), &OptimizeOptions::default())
                .ok()
        })
        .map(|o| o.cost)
        .sum()
}

/// The workload's distinct SELECT templates in arrival order — exactly what
/// the monitor retains when its capacity is not exceeded.
fn distinct_sample(db: &Database, statements: &[Statement]) -> Vec<BoundSelect> {
    let mut seen = BTreeSet::new();
    let mut sample = Vec::new();
    for stmt in statements {
        if let Ok(BoundStatement::Select(q)) = bind_statement(db, stmt) {
            if seen.insert(q.fingerprint()) {
                sample.push(q);
            }
        }
    }
    sample
}

/// Wall-clock pass with `threads` query threads hammering handles while the
/// driver ticks the daemon. Returns (wall ms, monitor observations).
fn threaded_pass(
    scale: &ExperimentScale,
    ticks: u64,
    threads: usize,
    budget_per_tick: f64,
) -> (f64, u64) {
    let db = build_tpcd(&TpcdConfig {
        scale: scale.scale,
        zipf: ZipfSpec::Mixed,
        seed: scale.seed,
    });
    let statements = workload(&db, scale);
    let mgr = AutoStatsManager::new(db, manager_config());
    let svc = OnlineService::start(mgr.serve(), service_config(budget_per_tick));

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..threads {
            let handle = svc.handle(tid as u64 + 1);
            let mine: Vec<&Statement> = statements.iter().skip(tid).step_by(threads).collect();
            s.spawn(move || {
                for stmt in mine {
                    handle.run(stmt).expect("workload statement runs");
                }
            });
        }
        for _ in 0..ticks {
            svc.tick_wait().expect("tick succeeds");
        }
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (_, report) = svc.shutdown().expect("daemon thread lives");
    if let Some(e) = &report.error {
        panic!("daemon tick failed during threaded pass: {e}");
    }
    (wall_ms, report.observed)
}

/// Run the whole experiment. `obs` instruments the *first* deterministic
/// drive (the rerun and the threaded pass run unobserved — by the
/// determinism contract, instrumentation may not change any outcome).
pub fn run(
    scale: &ExperimentScale,
    ticks: u64,
    threads: usize,
    budget_per_tick: f64,
    obs: obsv::Obs,
) -> (OnlineResult, autostats::SessionReport, TelemetryExport) {
    let first = drive(scale, ticks, budget_per_tick, obs);
    let second = drive(scale, ticks, budget_per_tick, obsv::Obs::disabled());
    let rerun_identical = first.digest() == second.digest();

    let probes: Vec<BoundSelect> = tpcd_benchmark_queries()
        .iter()
        .filter_map(|s| {
            bind_statement(&first.db, &Statement::Select(s.clone()))
                .ok()
                .and_then(|b| b.as_select().cloned())
        })
        .collect();

    let baseline_probe_cost = probe_cost(&first.db, &probes, &StatsCatalog::new());
    let online_probe_cost = probe_cost(&first.db, &probes, &first.report.catalog);
    let trajectory: Vec<TrajectoryPoint> = first
        .tick_reports
        .iter()
        .zip(&first.epochs)
        .map(|(r, e)| TrajectoryPoint {
            tick: r.tick,
            generation: e.generation,
            probe_cost: probe_cost(&first.db, &probes, &e.catalog),
        })
        .collect();

    // Offline baseline: tune from scratch on the same deduplicated sample
    // against the final database.
    let sample = distinct_sample(&first.db, &first.statements);
    let mut offline_catalog = StatsCatalog::new();
    OfflineTuner::default()
        .tune(&first.db, &mut offline_catalog, &sample)
        .expect("offline tune succeeds");
    let offline_probe_cost = probe_cost(&first.db, &probes, &offline_catalog);

    let (threaded_wall_ms, threaded_observed) = if threads > 1 {
        threaded_pass(scale, ticks, threads, budget_per_tick)
    } else {
        (0.0, 0)
    };

    let result = OnlineResult {
        scale: scale.scale,
        statements: first.statements.len(),
        ticks: first.tick_reports.len() as u64,
        threads,
        budget_per_tick,
        distinct_templates: first.report.templates.len(),
        queries_tuned: first
            .tick_reports
            .iter()
            .map(|r| r.queries_tuned as u64)
            .sum(),
        tuning_work: first.tick_reports.iter().map(|r| r.tuning_work).sum(),
        refreshes: first.tick_reports.iter().map(|r| r.refreshed as u64).sum(),
        refresh_work: first.tick_reports.iter().map(|r| r.refresh_work).sum(),
        budget_exhausted_ticks: first
            .tick_reports
            .iter()
            .filter(|r| r.budget_exhausted)
            .count() as u64,
        epoch_generation: first.report.generation,
        statistics_built: first.report.catalog.total_count(),
        baseline_probe_cost,
        online_probe_cost,
        offline_probe_cost,
        trajectory,
        epoch_latency: first.epoch_latency.clone(),
        rerun_identical,
        threaded_wall_ms,
        threaded_observed,
    };
    (result, first.report.session, first.telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_online_run_is_deterministic_and_converges() {
        let scale = ExperimentScale::tiny();
        let (result, session, telemetry) = run(&scale, 3, 1, f64::INFINITY, obsv::Obs::disabled());
        assert!(result.rerun_identical, "seed-fixed rerun diverged");
        assert!(result.statements > 0);
        assert!(result.refreshes > 0, "bulk update must trigger refreshes");
        assert!(!session.online.is_empty(), "journal records online events");
        // The telemetry streams validate under their own checkers.
        obsv::check::check_windows(&telemetry.windows_jsonl).expect("windows JSONL valid");
        obsv::check::check_health(&telemetry.health_jsonl).expect("health JSONL valid");
        let slow = obsv::check::check_jsonl(&telemetry.slowlog_jsonl).expect("slowlog JSONL valid");
        assert!(slow.spans > 0, "slow-query reservoir captured span trees");
        assert!(
            telemetry.slowlog_jsonl.contains("exec."),
            "slowlog spans include executor operators"
        );
        // Every published epoch reports its own latency quantiles.
        assert!(!result.epoch_latency.is_empty(), "epochs were published");
        for e in &result.epoch_latency {
            assert!(e.p50_ns <= e.p99_ns && e.p99_ns <= e.p999_ns);
        }
        // With an unconstrained budget the online catalog should match the
        // offline one closely (same MNSA, same sample, shared shrink tail).
        assert!(
            result.convergence_gap_pct() <= 20.0,
            "gap {:.2}% (online {:.0} vs offline {:.0})",
            result.convergence_gap_pct(),
            result.online_probe_cost,
            result.offline_probe_cost
        );
        // JSON renders and contains the headline counters.
        let json = result.to_json();
        assert!(json.contains("\"rerun_identical\": true"));
        assert!(json.contains("\"trajectory\""));
        assert!(json.contains("\"epoch_latency\""));
        assert!(json.contains("\"p99_ns\""));
    }
}
