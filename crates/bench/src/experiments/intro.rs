//! The §1 intro experiment.
//!
//! "Consider a tuned TPC-D 1GB database … with 13 indexes, and a workload
//! consisting of the 17 queries defined in the benchmark. We recorded the
//! plans for each query when no additional statistics on columns (besides
//! statistics on indexed columns) were available. We then created a set of
//! relevant statistics … and re-optimized. In all but 2 queries, the
//! execution plans chosen with additional statistics were different, and
//! resulted in improved execution cost."

use crate::common::{ExperimentScale, Row};
use autostats::candidate_statistics;
use datagen::{build_tpcd, create_tuned_indexes, tpcd_benchmark_queries, TpcdConfig, ZipfSpec};
use optimizer::costs_within_t;
use optimizer::{OptimizeOptions, Optimizer};
use query::{bind_statement, BoundStatement, Statement};
use stats::{StatDescriptor, StatsCatalog};

/// Per-query outcome of the intro experiment.
#[derive(Debug, Clone)]
pub struct IntroResult {
    pub query: usize,
    /// The execution tree itself changed.
    pub plan_changed: bool,
    /// The optimizer's cost view shifted beyond t = 20% — the paper's own
    /// t-Optimizer-Cost notion of "materially different". Our simulator's
    /// plan space is coarser than SQL Server 7.0's (no parallelism, index
    /// intersection, or alternative aggregation strategies), so a large
    /// estimate shift does not always flip the tree here even though it
    /// would in the paper's system; this metric captures those cases.
    pub estimate_shifted: bool,
    pub cost_before: f64,
    pub cost_after: f64,
}

/// Run the intro experiment; returns per-query outcomes.
pub fn run(scale: &ExperimentScale) -> Vec<IntroResult> {
    // The paper's tuned database is skewed in our reproduction (TPCD_MIX) so
    // that statistics actually carry information the magic numbers lack.
    let mut db = build_tpcd(&TpcdConfig {
        scale: scale.scale,
        zipf: ZipfSpec::Mixed,
        seed: scale.seed,
    });
    create_tuned_indexes(&mut db);

    // Baseline: statistics only on indexed (leading) columns.
    let mut catalog = StatsCatalog::new();
    for idx in db.indexes() {
        catalog
            .create_statistic(&db, StatDescriptor::single(idx.table, idx.leading_column()))
            .expect("bench statistic builds");
    }

    let optimizer = Optimizer::default();
    let queries: Vec<_> = tpcd_benchmark_queries()
        .into_iter()
        .map(
            |q| match bind_statement(&db, &Statement::Select(q)).expect("tpcd query binds") {
                BoundStatement::Select(b) => b,
                _ => unreachable!(),
            },
        )
        .collect();

    // First record every "before" plan against the untouched baseline (the
    // paper recorded all plans, then created the statistics).
    let before: Vec<_> = queries
        .iter()
        .map(|q| {
            optimizer
                .optimize(&db, q, catalog.full_view(), &OptimizeOptions::default())
                .expect("bench query optimizes")
        })
        .collect();

    // Then create the relevant statistics for the whole workload…
    for q in &queries {
        for d in candidate_statistics(q) {
            catalog
                .create_statistic(&db, d)
                .expect("bench statistic builds");
        }
    }

    // …and re-optimize everything.
    queries
        .iter()
        .zip(before)
        .enumerate()
        .map(|(i, (q, b))| {
            let after = optimizer
                .optimize(&db, q, catalog.full_view(), &OptimizeOptions::default())
                .expect("bench query optimizes");
            IntroResult {
                query: i + 1,
                plan_changed: !b.plan.same_tree(&after.plan),
                estimate_shifted: !costs_within_t(b.cost, after.cost, 20.0),
                cost_before: b.cost,
                cost_after: after.cost,
            }
        })
        .collect()
}

/// Summarize into report rows.
pub fn rows(results: &[IntroResult]) -> Vec<Row> {
    let changed = results.iter().filter(|r| r.plan_changed).count();
    let shifted = results
        .iter()
        .filter(|r| r.plan_changed || r.estimate_shifted)
        .count();
    vec![
        Row {
            experiment: "intro".into(),
            database: "TPCD_MIX".into(),
            workload: "TPCD-ORIG".into(),
            metric: "queries materially affected by statistics, t=20% (of 17)".into(),
            measured: shifted as f64,
            paper_band: "15 of 17 plans changed".into(),
        },
        Row {
            experiment: "intro".into(),
            database: "TPCD_MIX".into(),
            workload: "TPCD-ORIG".into(),
            metric: "queries whose execution tree changed (of 17)".into(),
            measured: changed as f64,
            paper_band: "15 of 17 (richer plan space)".into(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_affect_most_queries() {
        let results = run(&ExperimentScale::default_run());
        assert_eq!(results.len(), 17);
        let shifted = results
            .iter()
            .filter(|r| r.plan_changed || r.estimate_shifted)
            .count();
        let changed = results.iter().filter(|r| r.plan_changed).count();
        // The paper saw 15/17 plans change on SQL Server. Our plan space is
        // coarser, so we require the shape: a clear majority of queries are
        // materially affected (t = 20%), and several trees actually flip.
        assert!(shifted >= 11, "only {shifted}/17 queries affected");
        assert!(changed >= 4, "only {changed}/17 trees changed");
    }

    #[test]
    fn rows_summarize() {
        let results = vec![
            IntroResult {
                query: 1,
                plan_changed: true,
                estimate_shifted: true,
                cost_before: 2.0,
                cost_after: 1.0,
            },
            IntroResult {
                query: 2,
                plan_changed: false,
                estimate_shifted: false,
                cost_before: 1.0,
                cost_after: 1.0,
            },
        ];
        let rows = rows(&results);
        assert_eq!(rows[0].measured, 1.0);
        assert_eq!(rows[1].measured, 1.0);
    }
}
