//! Figure 3 — evaluation of the Candidate Statistics algorithm.
//!
//! Compares our §7.1 heuristic candidate set against the **Exhaustive**
//! strategy (every subset of each relevant column group). The paper reports
//! a 50–80% reduction in statistics creation time across data distributions,
//! with workload execution cost increasing by no more than 3%.

use crate::common::{
    bind_all, create_all, execute_workload_obs, pct_change, pct_reduction, queries_of,
    ExperimentScale, Row,
};
use autostats::{candidate_statistics, exhaustive_candidates};
use datagen::{
    standard_databases, tpcd_benchmark_queries, Complexity, RagsGenerator, WorkloadSpec,
};
use query::Statement;
use stats::StatsCatalog;
use storage::Database;

/// One (database, workload) measurement.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    pub database: String,
    pub workload: String,
    pub exhaustive_work: f64,
    pub heuristic_work: f64,
    pub creation_reduction_pct: f64,
    pub exec_increase_pct: f64,
}

/// The workloads of the figure: the original TPC-D queries plus Rags mixes.
fn workloads(db: &Database, scale: &ExperimentScale) -> Vec<(String, Vec<Statement>)> {
    let mut out = vec![(
        "TPCD-ORIG".to_string(),
        tpcd_benchmark_queries()
            .into_iter()
            .map(Statement::Select)
            .collect::<Vec<_>>(),
    )];
    for spec in [
        WorkloadSpec::new(25, Complexity::Simple, scale.workload_len).with_seed(scale.seed),
        WorkloadSpec::new(0, Complexity::Complex, scale.workload_len).with_seed(scale.seed + 1),
    ] {
        out.push((spec.to_string(), RagsGenerator::generate(db, &spec)));
    }
    out
}

/// Measure one (database, workload) pair.
fn measure(
    db: &Database,
    name: &str,
    wl_name: &str,
    stmts: &[Statement],
    obs: &obsv::Obs,
) -> Fig3Result {
    let mut span = obs.tracer.span("fig3.measure");
    span.arg("database", name.to_string());
    span.arg("workload", wl_name.to_string());
    let bound = bind_all(db, stmts);
    let queries = queries_of(&bound);

    let mut cat_ex = StatsCatalog::new();
    cat_ex.set_obs(obs);
    let mut work_ex = 0.0;
    for q in &queries {
        work_ex += create_all(db, &mut cat_ex, exhaustive_candidates(q, 8));
    }
    let mut cat_h = StatsCatalog::new();
    cat_h.set_obs(obs);
    let mut work_h = 0.0;
    for q in &queries {
        work_h += create_all(db, &mut cat_h, candidate_statistics(q));
    }

    let exec_ex = execute_workload_obs(db, &cat_ex, &bound, obs);
    let exec_h = execute_workload_obs(db, &cat_h, &bound, obs);

    Fig3Result {
        database: name.to_string(),
        workload: wl_name.to_string(),
        exhaustive_work: work_ex,
        heuristic_work: work_h,
        creation_reduction_pct: pct_reduction(work_ex, work_h),
        exec_increase_pct: pct_change(exec_ex, exec_h),
    }
}

/// Run Figure 3 across the four standard databases. The (database,
/// workload) measurements are independent, so `threads > 1` fans them
/// across worker threads; the merge is index-ordered, so output is
/// identical for every thread count.
pub fn run(scale: &ExperimentScale, threads: usize) -> Vec<Fig3Result> {
    run_obs(scale, threads, &obsv::Obs::disabled())
}

/// [`run`] under an observability context: catalogs meter their builds,
/// workload execution is traced, and each worker thread traces into its own
/// forked buffer. Results are identical to the plain path.
pub fn run_obs(scale: &ExperimentScale, threads: usize, obs: &obsv::Obs) -> Vec<Fig3Result> {
    let mut inputs = Vec::new();
    for (name, db) in standard_databases(scale.scale, scale.seed) {
        let wls = workloads(&db, scale);
        let db = std::sync::Arc::new(db);
        for (wl_name, stmts) in wls {
            inputs.push((std::sync::Arc::clone(&db), name.clone(), wl_name, stmts));
        }
    }
    if threads <= 1 {
        return inputs
            .iter()
            .map(|(db, name, wl_name, stmts)| measure(db, name, wl_name, stmts, obs))
            .collect();
    }
    let slots: Vec<parking_lot::Mutex<Option<Fig3Result>>> = (0..inputs.len())
        .map(|_| parking_lot::Mutex::new(None))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (inputs_ref, slots_ref, next_ref) = (&inputs, &slots, &next);
    crossbeam::thread::scope(|s| {
        for w in 0..threads.min(inputs.len()) {
            let worker_obs = obs.fork(w as u64 + 1);
            s.spawn(move |_| loop {
                let i = next_ref.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= inputs_ref.len() {
                    break;
                }
                let (db, name, wl_name, stmts) = &inputs_ref[i];
                *slots_ref[i].lock() = Some(measure(db, name, wl_name, stmts, &worker_obs));
            });
        }
    })
    .expect("fig3 worker panicked");
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("missing fig3 measurement"))
        .collect()
}

/// Convert to report rows.
pub fn rows(results: &[Fig3Result]) -> Vec<Row> {
    let mut rows = Vec::new();
    for r in results {
        rows.push(Row {
            experiment: "fig3".into(),
            database: r.database.clone(),
            workload: r.workload.clone(),
            metric: "creation-time reduction vs Exhaustive (%)".into(),
            measured: r.creation_reduction_pct,
            paper_band: "50-80%".into(),
        });
        rows.push(Row {
            experiment: "fig3".into(),
            database: r.database.clone(),
            workload: r.workload.clone(),
            metric: "workload execution cost increase (%)".into(),
            measured: r.exec_increase_pct,
            paper_band: "<= 3%".into(),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{build_tpcd, TpcdConfig, ZipfSpec};

    #[test]
    fn heuristic_cheaper_with_tiny_exec_penalty() {
        let scale = ExperimentScale::tiny();
        let db = build_tpcd(&TpcdConfig {
            scale: scale.scale,
            zipf: ZipfSpec::Mixed,
            seed: scale.seed,
        });
        let (wl_name, stmts) = workloads(&db, &scale).remove(2); // complex Rags
        let r = measure(&db, "TPCD_MIX", &wl_name, &stmts, &obsv::Obs::disabled());
        assert!(
            r.heuristic_work <= r.exhaustive_work,
            "heuristic must not cost more than exhaustive"
        );
        assert!(
            r.exec_increase_pct <= 15.0,
            "execution-cost increase too large: {}",
            r.exec_increase_pct
        );
    }

    #[test]
    fn tpcd_orig_reduction_positive() {
        let scale = ExperimentScale::tiny();
        let db = build_tpcd(&TpcdConfig {
            scale: scale.scale,
            zipf: ZipfSpec::Fixed(2.0),
            seed: scale.seed,
        });
        let (wl_name, stmts) = workloads(&db, &scale).remove(0);
        let r = measure(&db, "TPCD_2", &wl_name, &stmts, &obsv::Obs::disabled());
        assert!(
            r.creation_reduction_pct > 0.0,
            "reduction: {}",
            r.creation_reduction_pct
        );
    }
}
