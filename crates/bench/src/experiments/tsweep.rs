//! Parameter sensitivity: the t threshold and the ε probe value.
//!
//! §3.2/§8.2: "we have found that a value of t = 20% is a conservative
//! choice" — larger t prunes more statistics (cheaper creation) at some risk
//! to plan quality; t = 0 degenerates to creating statistics whenever any
//! magic variable exists. §4.1 requires predicate selectivities to lie in
//! [ε, 1−ε] for MNSA's guarantee, with the paper using ε = 0.0005.

use crate::common::{
    bind_all, create_all, execute_workload, pct_change, pct_reduction, queries_of,
    ExperimentScale, Row,
};
use autostats::policy::optimizer_call_work;
use autostats::{candidate_statistics, MnsaConfig, MnsaEngine};
use datagen::{build_tpcd, Complexity, RagsGenerator, TpcdConfig, WorkloadSpec, ZipfSpec};
use stats::StatsCatalog;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct SweepResult {
    pub t_percent: f64,
    pub epsilon: f64,
    pub stats_built: usize,
    pub creation_reduction_pct: f64,
    pub exec_increase_pct: f64,
}

/// Sweep t (at ε = 0.0005) then ε (at t = 20) on TPCD_MIX, U0-C workload.
pub fn run(scale: &ExperimentScale) -> Vec<SweepResult> {
    let db = build_tpcd(&TpcdConfig {
        scale: scale.scale,
        zipf: ZipfSpec::Mixed,
        seed: scale.seed,
    });
    let spec = WorkloadSpec::new(0, Complexity::Complex, scale.workload_len).with_seed(scale.seed);
    let stmts = RagsGenerator::generate(&db, &spec);
    let bound = bind_all(&db, &stmts);
    let queries = queries_of(&bound);

    // Baseline: all candidates.
    let mut cat_all = StatsCatalog::new();
    let mut work_all = 0.0;
    for q in &queries {
        work_all += create_all(&db, &mut cat_all, candidate_statistics(q));
    }
    let exec_all = execute_workload(&db, &cat_all, &bound);

    let mut points: Vec<(f64, f64)> = [0.0, 5.0, 10.0, 20.0, 40.0, 80.0]
        .into_iter()
        .map(|t| (t, 0.0005))
        .collect();
    points.extend([(20.0, 0.01), (20.0, 0.1)]);

    let mut out = Vec::new();
    for (t, eps) in points {
        let engine = MnsaEngine::new(MnsaConfig {
            t_percent: t,
            epsilon: eps,
            ..Default::default()
        });
        let mut cat = StatsCatalog::new();
        let mut work = 0.0;
        for q in &queries {
            let before = cat.creation_work();
            let outcome = engine.run_query(&db, &mut cat, q);
            work += (cat.creation_work() - before)
                + outcome.optimizer_calls as f64 * optimizer_call_work(q.relations.len());
        }
        let exec = execute_workload(&db, &cat, &bound);
        out.push(SweepResult {
            t_percent: t,
            epsilon: eps,
            stats_built: cat.active_count(),
            creation_reduction_pct: pct_reduction(work_all, work),
            exec_increase_pct: pct_change(exec_all, exec),
        });
    }
    out
}

/// Convert to report rows.
pub fn rows(results: &[SweepResult]) -> Vec<Row> {
    results
        .iter()
        .map(|r| Row {
            experiment: "tsweep".into(),
            database: "TPCD_MIX".into(),
            workload: format!("t={} eps={}", r.t_percent, r.epsilon),
            metric: format!(
                "stats={} creation-reduction% (exec-increase {:.2}%)",
                r.stats_built, r.exec_increase_pct
            ),
            measured: r.creation_reduction_pct,
            paper_band: "t=20% conservative".into(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_t_prunes_at_least_as_much() {
        let mut scale = ExperimentScale::tiny();
        scale.workload_len = 15;
        let results = run(&scale);
        let at = |t: f64| {
            results
                .iter()
                .find(|r| r.t_percent == t && r.epsilon == 0.0005)
                .unwrap()
        };
        // t = 80 must build no more statistics than t = 0.
        assert!(at(80.0).stats_built <= at(0.0).stats_built);
    }
}
