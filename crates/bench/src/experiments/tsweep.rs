//! Parameter sensitivity: the t threshold and the ε probe value.
//!
//! §3.2/§8.2: "we have found that a value of t = 20% is a conservative
//! choice" — larger t prunes more statistics (cheaper creation) at some risk
//! to plan quality; t = 0 degenerates to creating statistics whenever any
//! magic variable exists. §4.1 requires predicate selectivities to lie in
//! [ε, 1−ε] for MNSA's guarantee, with the paper using ε = 0.0005.
//!
//! The sweep points are independent measurements over the same database and
//! workload. Serial (`threads <= 1`) runs the paper-faithful reference path:
//! every point tunes and executes from scratch, no memoization. `--threads
//! N` opts into the *tuning-service* path: points are fanned across worker
//! threads and share two memo structures —
//!
//! * a detached [`OptimizeCache`]: the cache key fingerprints every
//!   optimizer input, so entries are valid across the points' unrelated
//!   catalogs, and points with the same ε share most of their analysis
//!   calls;
//! * an [`ExecWorkMemo`]: deterministic execution work is a pure function of
//!   (data, statement, operator tree), so points whose catalogs lead to the
//!   same plan for a statement share one execution.
//!
//! Each fanned point's tuning pass is additionally **re-run from a second
//! empty catalog**: the rerun must reproduce the exact per-query outcomes (a
//! built-in determinism differential check) and, because its trajectory
//! repeats the first pass verbatim, it is served almost entirely from the
//! cache. Both paths produce bit-identical results (asserted by
//! `parallel_sweep_matches_serial` below); the memoized path reports
//! wall-clock and cache counters.

use crate::common::{
    bind_all, create_all, execute_workload_memo, execute_workload_obs, pct_change, pct_reduction,
    queries_of, ExecWorkMemo, ExperimentScale, Row,
};
use autostats::policy::optimizer_call_work;
use autostats::{candidate_statistics, MnsaConfig, MnsaEngine, MnsaOutcome, SessionReport};
use datagen::{build_tpcd, Complexity, RagsGenerator, TpcdConfig, WorkloadSpec, ZipfSpec};
use optimizer::OptimizeCache;
use parking_lot::Mutex;
use query::{BoundSelect, BoundStatement};
use stats::StatsCatalog;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use storage::Database;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct SweepResult {
    pub t_percent: f64,
    pub epsilon: f64,
    pub stats_built: usize,
    pub creation_reduction_pct: f64,
    pub exec_increase_pct: f64,
}

/// Tune one sweep point: MNSA per query on a fresh catalog, accumulating
/// creation + analysis work.
fn tune_point(
    db: &Database,
    queries: &[BoundSelect],
    engine: &MnsaEngine,
) -> (StatsCatalog, f64, Vec<MnsaOutcome>) {
    let mut cat = StatsCatalog::new();
    cat.set_obs(&engine.obs);
    let mut work = 0.0;
    let mut outcomes = Vec::with_capacity(queries.len());
    for q in queries {
        let before = cat.creation_work();
        let outcome = engine.run_query(db, &mut cat, q).expect("mnsa tunes");
        work += (cat.creation_work() - before)
            + outcome.optimizer_calls as f64 * optimizer_call_work(q.relations.len());
        outcomes.push(outcome);
    }
    (cat, work, outcomes)
}

fn point_result(
    t: f64,
    eps: f64,
    cat: &StatsCatalog,
    work: f64,
    exec: f64,
    work_all: f64,
    exec_all: f64,
) -> SweepResult {
    SweepResult {
        t_percent: t,
        epsilon: eps,
        stats_built: cat.active_count(),
        creation_reduction_pct: pct_reduction(work_all, work),
        exec_increase_pct: pct_change(exec_all, exec),
    }
}

/// Reference path: tune + execute from scratch, nothing shared or memoized.
#[allow(clippy::too_many_arguments)]
fn measure_point_plain(
    db: &Database,
    bound: &[BoundStatement],
    queries: &[BoundSelect],
    work_all: f64,
    exec_all: f64,
    t: f64,
    eps: f64,
    obs: &obsv::Obs,
) -> (SweepResult, Vec<MnsaOutcome>, f64) {
    let engine = MnsaEngine::new(MnsaConfig {
        t_percent: t,
        epsilon: eps,
        ..Default::default()
    })
    .with_obs(obs.clone());
    let (cat, work, outcomes) = tune_point(db, queries, &engine);
    let exec = execute_workload_obs(db, &cat, bound, obs);
    let result = point_result(t, eps, &cat, work, exec, work_all, exec_all);
    (result, outcomes, work)
}

/// Tuning-service path: memoized optimizer + execution-work sharing, with a
/// verification rerun (see module docs).
#[allow(clippy::too_many_arguments)]
fn measure_point_memo(
    db: &Database,
    bound: &[BoundStatement],
    queries: &[BoundSelect],
    work_all: f64,
    exec_all: f64,
    t: f64,
    eps: f64,
    cache: &Arc<OptimizeCache>,
    memo: &ExecWorkMemo,
    obs: &obsv::Obs,
) -> (SweepResult, Vec<MnsaOutcome>, f64) {
    let engine = MnsaEngine::new(MnsaConfig {
        t_percent: t,
        epsilon: eps,
        ..Default::default()
    })
    .with_cache(Arc::clone(cache))
    .with_obs(obs.clone());

    let (cat, work, outcomes) = tune_point(db, queries, &engine);
    // Differential determinism check: tuning again from an empty catalog
    // must replay the identical trajectory (same StatIds too — both runs
    // allocate from zero). The rerun's optimizer calls all repeat the first
    // pass, so the cache serves them.
    let (_, work_rerun, outcomes_rerun) = tune_point(db, queries, &engine);
    assert_eq!(
        outcomes, outcomes_rerun,
        "nondeterministic tuning trajectory at t={t} eps={eps}"
    );
    assert_eq!(work, work_rerun, "nondeterministic work at t={t} eps={eps}");

    let exec = execute_workload_memo(db, &cat, bound, cache, memo, obs);
    let result = point_result(t, eps, &cat, work, exec, work_all, exec_all);
    (result, outcomes, work)
}

/// Sweep t (at ε = 0.0005) then ε (at t = 20) on TPCD_MIX, U0-C workload.
/// `threads > 1` fans the sweep points across worker threads with shared
/// memoization; results are identical for every thread count.
pub fn run(scale: &ExperimentScale, threads: usize) -> Vec<SweepResult> {
    run_obs(scale, threads, &obsv::Obs::disabled()).0
}

/// [`run`] under an observability context. Alongside the sweep results it
/// returns the tuning-session journal of the paper-default point
/// (t = 20, ε = 0.0005), built from that point's per-query MNSA outcomes —
/// so it is bit-identical for every thread count.
pub fn run_obs(
    scale: &ExperimentScale,
    threads: usize,
    obs: &obsv::Obs,
) -> (Vec<SweepResult>, SessionReport) {
    let started = Instant::now();
    let db = build_tpcd(&TpcdConfig {
        scale: scale.scale,
        zipf: ZipfSpec::Mixed,
        seed: scale.seed,
    });
    let spec = WorkloadSpec::new(0, Complexity::Complex, scale.workload_len).with_seed(scale.seed);
    let stmts = RagsGenerator::generate(&db, &spec);
    let bound = bind_all(&db, &stmts);
    let queries = queries_of(&bound);

    // Shared, detached optimizer cache + execution-work memo for the
    // threaded path (see module docs). Created before the baseline so the
    // baseline execution warms the memo. Registering the cache against the
    // run's registry puts `optimizer.cache.{hit,miss,invalidation}` in the
    // end-of-run summary.
    let cache = Arc::new(OptimizeCache::with_metrics(&obs.metrics));
    let memo = ExecWorkMemo::new();

    // Baseline: all candidates.
    let mut cat_all = StatsCatalog::new();
    cat_all.set_obs(obs);
    let mut work_all = 0.0;
    for q in &queries {
        work_all += create_all(&db, &mut cat_all, candidate_statistics(q));
    }
    let exec_all = if threads <= 1 {
        execute_workload_obs(&db, &cat_all, &bound, obs)
    } else {
        execute_workload_memo(&db, &cat_all, &bound, &cache, &memo, obs)
    };

    let mut points: Vec<(f64, f64)> = [0.0, 5.0, 10.0, 20.0, 40.0, 80.0]
        .into_iter()
        .map(|t| (t, 0.0005))
        .collect();
    points.extend([(20.0, 0.01), (20.0, 0.1)]);

    let measured: Vec<(SweepResult, Vec<MnsaOutcome>, f64)> = if threads <= 1 {
        let out = points
            .iter()
            .map(|&(t, eps)| {
                measure_point_plain(&db, &bound, &queries, work_all, exec_all, t, eps, obs)
            })
            .collect();
        println!(
            "tsweep: threads=1 wall-clock={:.2}s cache: off (serial reference path; \
             --threads N enables the memoized parallel path)",
            started.elapsed().as_secs_f64()
        );
        out
    } else {
        type PointSlot = Mutex<Option<(SweepResult, Vec<MnsaOutcome>, f64)>>;
        let slots: Vec<PointSlot> = (0..points.len()).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let (points_ref, slots_ref, next_ref, cache_ref, memo_ref) =
            (&points, &slots, &next, &cache, &memo);
        let (db_ref, bound_ref, queries_ref) = (&db, &bound, &queries);
        crossbeam::thread::scope(|s| {
            for w in 0..threads.min(points.len()) {
                let worker_obs = obs.fork(w as u64 + 1);
                s.spawn(move |_| loop {
                    let i = next_ref.fetch_add(1, Ordering::Relaxed);
                    if i >= points_ref.len() {
                        break;
                    }
                    let (t, eps) = points_ref[i];
                    *slots_ref[i].lock() = Some(measure_point_memo(
                        db_ref,
                        bound_ref,
                        queries_ref,
                        work_all,
                        exec_all,
                        t,
                        eps,
                        cache_ref,
                        memo_ref,
                        &worker_obs,
                    ));
                });
            }
        })
        .expect("sweep worker panicked");
        println!(
            "tsweep: threads={} wall-clock={:.2}s cache: {}",
            threads,
            started.elapsed().as_secs_f64(),
            cache.counters()
        );
        // Index-ordered merge: output order is point order, independent of
        // which worker measured which point.
        slots
            .into_iter()
            .map(|m| m.into_inner().expect("missing sweep point"))
            .collect()
    };

    // Journal the paper-default point from its MNSA outcomes. The split of
    // total work into creation vs optimizer-call overhead is recomputed the
    // same way `tune_point` accumulated it.
    let mut journal = SessionReport::default();
    let mut results = Vec::with_capacity(measured.len());
    for (result, outcomes, work) in measured {
        if result.t_percent == 20.0 && result.epsilon == 0.0005 {
            let mut overhead = 0.0;
            for (q, o) in queries.iter().zip(&outcomes) {
                journal.record_query(q.relations.len(), o);
                overhead += o.optimizer_calls as f64 * optimizer_call_work(q.relations.len());
            }
            journal.totals.optimizer_calls = outcomes.iter().map(|o| o.optimizer_calls).sum();
            journal.totals.statistics_created = outcomes.iter().map(|o| o.created.len()).sum();
            journal.totals.statistics_drop_listed =
                outcomes.iter().map(|o| o.drop_listed.len()).sum();
            journal.totals.creation_work = work - overhead;
            journal.totals.overhead_work = overhead;
        }
        results.push(result);
    }
    (results, journal)
}

/// Convert to report rows.
pub fn rows(results: &[SweepResult]) -> Vec<Row> {
    results
        .iter()
        .map(|r| Row {
            experiment: "tsweep".into(),
            database: "TPCD_MIX".into(),
            workload: format!("t={} eps={}", r.t_percent, r.epsilon),
            metric: format!(
                "stats={} creation-reduction% (exec-increase {:.2}%)",
                r.stats_built, r.exec_increase_pct
            ),
            measured: r.creation_reduction_pct,
            paper_band: "t=20% conservative".into(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_t_prunes_at_least_as_much() {
        let mut scale = ExperimentScale::tiny();
        scale.workload_len = 15;
        let results = run(&scale, 1);
        let at = |t: f64| {
            results
                .iter()
                .find(|r| r.t_percent == t && r.epsilon == 0.0005)
                .unwrap()
        };
        // t = 80 must build no more statistics than t = 0.
        assert!(at(80.0).stats_built <= at(0.0).stats_built);
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        // The differential guarantee for the whole experiment: the memoized
        // parallel path (shared optimizer cache, shared execution-work memo,
        // verification reruns) is bit-identical to the plain serial path.
        let mut scale = ExperimentScale::tiny();
        scale.workload_len = 10;
        let serial = run(&scale, 1);
        let parallel = run(&scale, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.t_percent, b.t_percent);
            assert_eq!(a.epsilon, b.epsilon);
            assert_eq!(a.stats_built, b.stats_built);
            assert_eq!(a.creation_reduction_pct, b.creation_reduction_pct);
            assert_eq!(a.exec_increase_pct, b.exec_increase_pct);
        }
    }
}
