//! Criterion micro-benchmarks: optimizer calls with and without statistics.
//!
//! §4.3 argues MNSA is cheap because "the time to create a statistic
//! typically far exceeds the time to optimize a query" — these benches back
//! that claim for our substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::{build_tpcd, tpcd_benchmark_queries, TpcdConfig, ZipfSpec};
use optimizer::{OptimizeOptions, Optimizer};
use query::{bind_statement, BoundStatement, Statement};
use stats::StatsCatalog;

fn bench_optimize(c: &mut Criterion) {
    let db = build_tpcd(&TpcdConfig {
        scale: 0.004,
        zipf: ZipfSpec::Mixed,
        seed: 3,
    });
    let queries: Vec<_> = tpcd_benchmark_queries()
        .into_iter()
        .map(
            |q| match bind_statement(&db, &Statement::Select(q)).unwrap() {
                BoundStatement::Select(b) => b,
                _ => unreachable!(),
            },
        )
        .collect();
    let optimizer = Optimizer::default();

    // No statistics: everything on magic numbers.
    let empty = StatsCatalog::new();
    c.bench_function("optimize_q1_no_stats", |b| {
        b.iter(|| {
            optimizer.optimize(
                &db,
                &queries[0],
                empty.full_view(),
                &OptimizeOptions::default(),
            )
        })
    });
    c.bench_function("optimize_q8_eight_way_join", |b| {
        b.iter(|| {
            optimizer.optimize(
                &db,
                &queries[7],
                empty.full_view(),
                &OptimizeOptions::default(),
            )
        })
    });

    // With full candidate statistics.
    let mut full = StatsCatalog::new();
    for q in &queries {
        for d in autostats::candidate_statistics(q) {
            full.create_statistic(&db, d).expect("statistic builds");
        }
    }
    c.bench_function("optimize_q8_with_stats", |b| {
        b.iter(|| {
            optimizer.optimize(
                &db,
                &queries[7],
                full.full_view(),
                &OptimizeOptions::default(),
            )
        })
    });

    // Statistic creation for comparison (the expensive side of the tradeoff).
    let lineitem = db.table_id("lineitem").unwrap();
    c.bench_function("create_statistic_lineitem_col", |b| {
        b.iter(|| {
            let mut cat = StatsCatalog::new();
            cat.create_statistic(&db, stats::StatDescriptor::single(lineitem, 10))
        })
    });
}

criterion_group!(benches, bench_optimize);
criterion_main!(benches);
