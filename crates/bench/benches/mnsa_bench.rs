//! Criterion micro-benchmarks: MNSA end-to-end per query.

use autostats::{MnsaConfig, MnsaEngine};
use criterion::{criterion_group, criterion_main, Criterion};
use datagen::{build_tpcd, tpcd_benchmark_queries, TpcdConfig, ZipfSpec};
use query::{bind_statement, BoundStatement, Statement};
use stats::StatsCatalog;

fn bench_mnsa(c: &mut Criterion) {
    let db = build_tpcd(&TpcdConfig {
        scale: 0.003,
        zipf: ZipfSpec::Mixed,
        seed: 3,
    });
    let q6 = match bind_statement(&db, &Statement::Select(tpcd_benchmark_queries().remove(5)))
        .unwrap()
    {
        BoundStatement::Select(b) => b,
        _ => unreachable!(),
    };
    let engine = MnsaEngine::new(MnsaConfig::default());
    c.bench_function("mnsa_q6_from_scratch", |b| {
        b.iter(|| {
            let mut cat = StatsCatalog::new();
            engine.run_query(&db, &mut cat, &q6)
        })
    });

    // Converged case: statistics already exist, MNSA should exit in 3 calls.
    let mut warm = StatsCatalog::new();
    engine.run_query(&db, &mut warm, &q6).expect("mnsa tunes");
    c.bench_function("mnsa_q6_already_tuned", |b| {
        b.iter(|| {
            let mut cat_view = warm.creation_work();
            std::hint::black_box(&mut cat_view);
            engine.run_query(&db, &mut warm, &q6)
        })
    });
}

criterion_group!(benches, bench_mnsa);
criterion_main!(benches);
