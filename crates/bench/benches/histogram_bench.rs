//! Criterion micro-benchmarks: histogram construction and estimation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stats::{Histogram, HistogramKind};
use storage::Value;

fn values(n: usize, distinct: i64) -> Vec<Value> {
    (0..n as i64)
        .map(|i| Value::Int((i * 2654435761) % distinct))
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("histogram_build");
    for &n in &[1_000usize, 10_000, 50_000] {
        let vals = values(n, 500);
        for kind in [HistogramKind::EquiDepth, HistogramKind::MaxDiff] {
            group.bench_with_input(
                BenchmarkId::new(format!("{kind:?}"), n),
                &vals,
                |b, vals| b.iter(|| Histogram::build(kind, black_box(vals), 64)),
            );
        }
    }
    group.finish();
}

fn bench_estimate(c: &mut Criterion) {
    let vals = values(50_000, 500);
    let h = Histogram::build(HistogramKind::EquiDepth, &vals, 64);
    c.bench_function("histogram_estimate_range", |b| {
        b.iter(|| h.selectivity_between(black_box(&Value::Int(100)), black_box(&Value::Int(300))))
    });
    c.bench_function("histogram_estimate_eq", |b| {
        b.iter(|| h.selectivity_eq(black_box(&Value::Int(250))))
    });
}

criterion_group!(benches, bench_build, bench_estimate);
criterion_main!(benches);
