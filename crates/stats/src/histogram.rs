//! Histograms over a single column.
//!
//! Two classical structures are provided, matching the paper's §3 examples of
//! "commonly used statistics": **equi-depth** and **MaxDiff** [Poosala et al.,
//! SIGMOD 1996]. Both operate on the `numeric_key` projection of values, which
//! preserves order for all supported types (strings are keyed by their first
//! eight bytes).
//!
//! The paper treats histogram structure as orthogonal (§2: "we have studied
//! the orthogonal problem of deciding *which* columns to build statistics
//! on"), so the choice of kind is a [`BuildOptions`](crate::BuildOptions)
//! knob; every algorithm in `autostats` works with either.

use serde::{Deserialize, Serialize};
use storage::Value;

/// Which construction strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum HistogramKind {
    /// Buckets hold (approximately) equal row counts.
    #[default]
    EquiDepth,
    /// Bucket boundaries are placed at the largest area differences between
    /// adjacent attribute values.
    MaxDiff,
}

/// One histogram bucket over the numeric-key domain `[lo, hi]` (inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bucket {
    pub lo: f64,
    pub hi: f64,
    /// Fraction of (non-null) rows in this bucket.
    pub fraction: f64,
    /// Number of distinct values in this bucket.
    pub distinct: f64,
}

/// A histogram over the non-null values of one column.
///
/// ```
/// use stats::{Histogram, HistogramKind};
/// use storage::Value;
///
/// let values: Vec<Value> = (0..1000).map(|i| Value::Int(i % 100)).collect();
/// let h = Histogram::build(HistogramKind::EquiDepth, &values, 32);
/// assert_eq!(h.ndv(), 100.0);
/// let sel = h.selectivity_lt(&Value::Int(50));
/// assert!((sel - 0.5).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    kind: HistogramKind,
    buckets: Vec<Bucket>,
    /// Total distinct values observed (or estimated from a sample).
    ndv: f64,
    /// Number of (non-null) rows summarized.
    rows: f64,
    /// For all-string columns: the longest common prefix of the summarized
    /// values, stripped before keying. Label columns ("Supplier#000000042")
    /// would otherwise collapse onto one 8-byte key, making every equality
    /// estimate 1.0 and every inequality 0.0.
    str_prefix: Option<String>,
}

/// Longest common prefix of an all-string value set; `None` when any value
/// is not a string (mixed or non-string columns key directly).
fn common_string_prefix(values: &[Value]) -> Option<String> {
    let mut iter = values.iter();
    let first = match iter.next()? {
        Value::Str(s) => s.as_str(),
        _ => return None,
    };
    let mut prefix = first;
    for v in iter {
        let Value::Str(s) = v else { return None };
        let common = prefix
            .bytes()
            .zip(s.bytes())
            .take_while(|(a, b)| a == b)
            .count();
        prefix = &prefix[..common];
        if prefix.is_empty() {
            break;
        }
    }
    Some(prefix.to_string())
}

/// Clamp a selectivity into [0, 1], mapping NaN to 0 so a degenerate
/// computation can never leak NaN into the optimizer's cost math.
fn clamp01(x: f64) -> f64 {
    if x.is_nan() {
        0.0
    } else {
        x.clamp(0.0, 1.0)
    }
}

/// 8-byte big-endian key of a byte string (order-preserving over the first
/// eight bytes).
fn key8(bytes: &[u8]) -> f64 {
    let mut key: u64 = 0;
    for (i, b) in bytes.iter().take(8).enumerate() {
        key |= (*b as u64) << (56 - 8 * i);
    }
    key as f64
}

impl Histogram {
    /// Build a histogram from a bag of values with at most `max_buckets`
    /// buckets. NULLs must be filtered out by the caller ([`Statistic`]
    /// accounts for the null fraction separately).
    pub fn build(kind: HistogramKind, values: &[Value], max_buckets: usize) -> Histogram {
        // A zero-bucket request is degenerate input, not a caller bug worth
        // aborting the process over: build the coarsest useful histogram.
        let max_buckets = max_buckets.max(1);
        let str_prefix = common_string_prefix(values).filter(|p| !p.is_empty());
        let key_of = |v: &Value| -> f64 {
            match (&str_prefix, v) {
                (Some(p), Value::Str(s)) => key8(&s.as_bytes()[p.len()..]),
                _ => v.numeric_key(),
            }
        };
        // NaN keys (e.g. `Value::Float(NAN)`) are excluded like NULLs —
        // NaN-keyed buckets would poison every later estimate — and infinite
        // keys are clamped to the finite domain edge, preserving order.
        let mut keys: Vec<f64> = values
            .iter()
            .map(key_of)
            .filter(|k| !k.is_nan())
            .map(|k| k.clamp(f64::MIN, f64::MAX))
            .collect();
        keys.sort_by(f64::total_cmp);
        let rows = keys.len() as f64;
        if keys.is_empty() {
            return Histogram {
                kind,
                buckets: Vec::new(),
                ndv: 0.0,
                rows: 0.0,
                str_prefix: None,
            };
        }

        // Run-length encode into (value, frequency) pairs.
        let mut runs: Vec<(f64, usize)> = Vec::new();
        for &k in &keys {
            match runs.last_mut() {
                Some((v, n)) if *v == k => *n += 1,
                _ => runs.push((k, 1)),
            }
        }
        let ndv = runs.len() as f64;

        let buckets = match kind {
            HistogramKind::EquiDepth => Self::equi_depth(&runs, rows, max_buckets),
            HistogramKind::MaxDiff => Self::max_diff(&runs, rows, max_buckets),
        };
        Histogram {
            kind,
            buckets,
            ndv,
            rows,
            str_prefix,
        }
    }

    /// The key a probe value maps to under this histogram's domain
    /// transformation. Strings that diverge from the stored common prefix
    /// fall entirely before or after the domain.
    fn key_of(&self, v: &Value) -> f64 {
        match (&self.str_prefix, v) {
            (Some(p), Value::Str(s)) => match s.as_bytes().strip_prefix(p.as_bytes()) {
                Some(rest) => key8(rest),
                None => {
                    if s.as_str() < p.as_str() {
                        f64::NEG_INFINITY
                    } else {
                        f64::INFINITY
                    }
                }
            },
            _ => v.numeric_key(),
        }
    }

    fn equi_depth(runs: &[(f64, usize)], rows: f64, max_buckets: usize) -> Vec<Bucket> {
        let target = (rows / max_buckets as f64).max(1.0);
        let mut buckets = Vec::with_capacity(max_buckets);
        let mut cur_rows = 0usize;
        let mut cur_distinct = 0usize;
        // None = the next run's value opens a fresh bucket; buckets never
        // overlap (each covers exactly the values it summarizes).
        let mut cur_lo: Option<f64> = None;
        let mut prev_val = runs[0].0;
        for &(v, n) in runs {
            if cur_rows > 0
                && (cur_rows + n) as f64 > target * 1.5
                && buckets.len() + 1 < max_buckets
            {
                buckets.push(Bucket {
                    lo: cur_lo.take().unwrap_or(prev_val),
                    hi: prev_val,
                    fraction: cur_rows as f64 / rows,
                    distinct: cur_distinct as f64,
                });
                cur_rows = 0;
                cur_distinct = 0;
            }
            cur_lo.get_or_insert(v);
            cur_rows += n;
            cur_distinct += 1;
            prev_val = v;
            if cur_rows as f64 >= target && buckets.len() + 1 < max_buckets {
                buckets.push(Bucket {
                    lo: cur_lo.take().unwrap_or(v),
                    hi: v,
                    fraction: cur_rows as f64 / rows,
                    distinct: cur_distinct as f64,
                });
                cur_rows = 0;
                cur_distinct = 0;
            }
        }
        if cur_rows > 0 {
            buckets.push(Bucket {
                lo: cur_lo.unwrap_or(prev_val),
                hi: prev_val,
                fraction: cur_rows as f64 / rows,
                distinct: cur_distinct as f64,
            });
        }
        buckets
    }

    fn max_diff(runs: &[(f64, usize)], rows: f64, max_buckets: usize) -> Vec<Bucket> {
        if runs.len() <= max_buckets {
            // One bucket per distinct value: exact histogram.
            return runs
                .iter()
                .map(|&(v, n)| Bucket {
                    lo: v,
                    hi: v,
                    fraction: n as f64 / rows,
                    distinct: 1.0,
                })
                .collect();
        }
        // Area of a value = frequency * spread to the next value.
        // Place boundaries after the (max_buckets - 1) largest differences in
        // area between adjacent values.
        let mut diffs: Vec<(f64, usize)> = Vec::with_capacity(runs.len() - 1);
        for i in 0..runs.len() - 1 {
            let spread_i = runs[i + 1].0 - runs[i].0;
            let area_i = runs[i].1 as f64 * spread_i.max(f64::MIN_POSITIVE);
            let spread_next = if i + 2 < runs.len() {
                runs[i + 2].0 - runs[i + 1].0
            } else {
                spread_i
            };
            let area_next = runs[i + 1].1 as f64 * spread_next.max(f64::MIN_POSITIVE);
            diffs.push(((area_next - area_i).abs(), i));
        }
        diffs.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut cut_after: Vec<usize> = diffs
            .iter()
            .take(max_buckets - 1)
            .map(|&(_, i)| i)
            .collect();
        cut_after.sort_unstable();

        let mut buckets = Vec::with_capacity(max_buckets);
        let mut start = 0usize;
        for &cut in cut_after.iter().chain(std::iter::once(&(runs.len() - 1))) {
            let slice = &runs[start..=cut];
            let count: usize = slice.iter().map(|&(_, n)| n).sum();
            buckets.push(Bucket {
                lo: slice[0].0,
                hi: slice[slice.len() - 1].0,
                fraction: count as f64 / rows,
                distinct: slice.len() as f64,
            });
            start = cut + 1;
            if start >= runs.len() {
                break;
            }
        }
        buckets
    }

    pub fn kind(&self) -> HistogramKind {
        self.kind
    }

    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Number of distinct values summarized.
    pub fn ndv(&self) -> f64 {
        self.ndv
    }

    /// Number of rows summarized.
    pub fn rows(&self) -> f64 {
        self.rows
    }

    /// Override the distinct count (used when scaling a sample-built
    /// histogram up to the full table with an NDV estimator).
    pub fn set_ndv(&mut self, ndv: f64) {
        self.ndv = ndv.max(1.0);
    }

    /// Mutable bucket access for the feedback corrector (crate-internal:
    /// arbitrary mutation can violate the sorted/disjoint invariant, so only
    /// [`crate::feedback`] may do it).
    pub(crate) fn buckets_mut(&mut self) -> &mut Vec<Bucket> {
        &mut self.buckets
    }

    /// Re-anchor the summarized row count (crate-internal: the feedback
    /// corrector retargets a stale histogram at the table's live row count).
    pub(crate) fn set_rows(&mut self, rows: f64) {
        self.rows = rows.max(0.0);
    }

    /// The stored common string prefix, if any (crate-internal: feedback
    /// records carry raw numeric keys, which only align with histograms that
    /// key values directly).
    pub(crate) fn str_prefix(&self) -> Option<&str> {
        self.str_prefix.as_deref()
    }

    /// Assemble a histogram directly from parts (crate-internal: used to
    /// synthesize feedback-built histograms without a table scan). Buckets
    /// must already be sorted and disjoint.
    pub(crate) fn from_parts(
        kind: HistogramKind,
        buckets: Vec<Bucket>,
        ndv: f64,
        rows: f64,
    ) -> Histogram {
        Histogram {
            kind,
            buckets,
            ndv: ndv.max(0.0),
            rows: rows.max(0.0),
            str_prefix: None,
        }
    }

    /// Minimum and maximum keys covered.
    pub fn bounds(&self) -> Option<(f64, f64)> {
        let first = self.buckets.first()?;
        let last = self.buckets.last()?;
        Some((first.lo, last.hi))
    }

    /// The magic-number floor for probes outside the bucket domain. A
    /// histogram only witnesses the rows it was built from; a probe beyond
    /// its max (or below its min) key may simply postdate the build, so
    /// out-of-domain estimates are clamped to roughly one row instead of a
    /// hard zero — a hard zero makes the optimizer cost plans on zero rows
    /// for exactly the post-insert drift case.
    fn out_of_domain_floor(&self) -> f64 {
        if self.rows > 0.0 {
            clamp01(1.0 / self.rows)
        } else {
            0.0
        }
    }

    /// Whether `key` falls strictly outside the covered key domain.
    /// Empty histograms have no domain and report `false`: they summarize an
    /// empty table, where a zero estimate is exact, not stale.
    fn outside_domain(&self, key: f64) -> bool {
        match self.bounds() {
            Some((lo, hi)) => key < lo || key > hi,
            None => false,
        }
    }

    /// Estimated selectivity of `column = value` among non-null rows.
    ///
    /// In-domain gaps (a key between two buckets) estimate `0.0`: the build
    /// scan witnessed their absence. Out-of-domain probes are floored by
    /// [`Self::out_of_domain_floor`].
    pub fn selectivity_eq(&self, value: &Value) -> f64 {
        let key = self.key_of(value);
        if key.is_nan() {
            return 0.0; // NaN probes match nothing
        }
        for b in &self.buckets {
            if key >= b.lo && key <= b.hi {
                return clamp01(b.fraction / b.distinct.max(1.0));
            }
        }
        if self.outside_domain(key) {
            self.out_of_domain_floor()
        } else {
            0.0
        }
    }

    /// Estimated selectivity of `column < value` (strict) among non-null
    /// rows, with continuous interpolation inside the containing bucket.
    /// Probes below the domain are floored by [`Self::out_of_domain_floor`].
    pub fn selectivity_lt(&self, value: &Value) -> f64 {
        let key = self.key_of(value);
        if key.is_nan() {
            return 0.0; // NaN probes match nothing
        }
        let mut acc = 0.0;
        for b in &self.buckets {
            if key > b.hi {
                acc += b.fraction;
            } else if key <= b.lo {
                break;
            } else {
                let width = (b.hi - b.lo).max(f64::MIN_POSITIVE);
                acc += b.fraction * ((key - b.lo) / width);
                break;
            }
        }
        if self.outside_domain(key) && key < f64::INFINITY {
            acc = acc.max(self.out_of_domain_floor());
        }
        clamp01(acc)
    }

    /// `column <= value`.
    pub fn selectivity_le(&self, value: &Value) -> f64 {
        clamp01(self.selectivity_lt(value) + self.selectivity_eq(value))
    }

    /// `column > value`. Probes above the domain are floored symmetrically
    /// to [`Self::selectivity_lt`].
    pub fn selectivity_gt(&self, value: &Value) -> f64 {
        let raw = clamp01(1.0 - self.selectivity_le(value));
        let key = self.key_of(value);
        if self.outside_domain(key) && key > f64::NEG_INFINITY {
            raw.max(self.out_of_domain_floor())
        } else {
            raw
        }
    }

    /// `column >= value`.
    pub fn selectivity_ge(&self, value: &Value) -> f64 {
        let raw = clamp01(1.0 - self.selectivity_lt(value));
        let key = self.key_of(value);
        if self.outside_domain(key) && key > f64::NEG_INFINITY {
            raw.max(self.out_of_domain_floor())
        } else {
            raw
        }
    }

    /// `column BETWEEN low AND high` (inclusive). A valid range lying
    /// entirely outside the domain is floored like the other estimators.
    pub fn selectivity_between(&self, low: &Value, high: &Value) -> f64 {
        let (klo, khi) = (self.key_of(low), self.key_of(high));
        if klo > khi {
            return 0.0;
        }
        let raw = clamp01(self.selectivity_le(high) - self.selectivity_lt(low));
        match self.bounds() {
            // The whole range lies beyond one edge of the domain.
            Some((lo, hi)) if khi < lo || klo > hi => raw.max(self.out_of_domain_floor()),
            _ => raw,
        }
    }

    /// `column <> value`.
    pub fn selectivity_ne(&self, value: &Value) -> f64 {
        clamp01(1.0 - self.selectivity_eq(value))
    }
}

/// Estimated selectivity of an equi-join between two columns summarized by
/// these histograms: the dot product `Σ_v p_a(v) · p_b(v)` of the two value
/// distributions, approximated bucket-pair-wise under the uniform-within-
/// bucket assumption.
///
/// This degrades gracefully to the textbook `1 / max(NDV)` on uniform data
/// but — unlike it — correctly predicts the large fan-out of joins on
/// *skewed* keys (hot values match hot values), which is what makes plans
/// like index nested-loop joins safe to cost.
pub fn join_selectivity(a: &Histogram, b: &Histogram) -> f64 {
    if a.rows() == 0.0 || b.rows() == 0.0 {
        return 0.0;
    }
    // Different string-prefix domains make bucket keys incomparable; fall
    // back to the textbook uniform estimate.
    if a.str_prefix != b.str_prefix {
        return (1.0 / a.ndv().max(b.ndv()).max(1.0)).clamp(0.0, 1.0);
    }
    let mut sel = 0.0;
    for ba in a.buckets() {
        for bb in b.buckets() {
            let lo = ba.lo.max(bb.lo);
            let hi = ba.hi.min(bb.hi);
            if hi < lo {
                continue;
            }
            // Expected number of a bucket's distinct values falling in the
            // overlap, modelling values as evenly spaced with inter-value
            // spacing s = w / (d - 1). The `+ s` padding makes a single-point
            // overlap contribute ~one value instead of zero, which matters
            // when a MaxDiff point-bucket (a hot value) meets a wide bucket.
            let count_in = |b: &Bucket| -> f64 {
                let w = b.hi - b.lo;
                let d = b.distinct.max(1.0);
                if w <= 0.0 {
                    return d; // point bucket entirely inside the overlap
                }
                let s = w / (d - 1.0).max(1.0);
                (d * ((hi - lo) + s) / (w + s)).min(d)
            };
            let common = count_in(ba).min(count_in(bb));
            if common <= 0.0 {
                continue;
            }
            let mass_a = ba.fraction / ba.distinct.max(1.0);
            let mass_b = bb.fraction / bb.distinct.max(1.0);
            sel += common * mass_a * mass_b;
        }
    }
    clamp01(sel)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(vals: impl IntoIterator<Item = i64>) -> Vec<Value> {
        vals.into_iter().map(Value::Int).collect()
    }

    fn uniform_0_99() -> Vec<Value> {
        ints((0..1000).map(|i| i % 100))
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::build(HistogramKind::EquiDepth, &[], 10);
        assert_eq!(h.ndv(), 0.0);
        assert_eq!(h.selectivity_eq(&Value::Int(5)), 0.0);
        assert_eq!(h.selectivity_lt(&Value::Int(5)), 0.0);
        assert!(h.bounds().is_none());
    }

    #[test]
    fn fractions_sum_to_one() {
        for kind in [HistogramKind::EquiDepth, HistogramKind::MaxDiff] {
            let h = Histogram::build(kind, &uniform_0_99(), 10);
            let total: f64 = h.buckets().iter().map(|b| b.fraction).sum();
            assert!((total - 1.0).abs() < 1e-9, "{kind:?}: total={total}");
        }
    }

    #[test]
    fn eq_selectivity_uniform() {
        let h = Histogram::build(HistogramKind::EquiDepth, &uniform_0_99(), 20);
        // Every value occurs 10/1000 of the time.
        let est = h.selectivity_eq(&Value::Int(42));
        assert!((est - 0.01).abs() < 0.01, "est={est}");
    }

    #[test]
    fn range_selectivity_uniform() {
        let h = Histogram::build(HistogramKind::EquiDepth, &uniform_0_99(), 20);
        let est = h.selectivity_lt(&Value::Int(50));
        assert!((est - 0.5).abs() < 0.08, "est={est}");
        // Below-domain probes are floored at ~one row (1/1000), not zero:
        // the histogram cannot prove rows below its min never appeared.
        assert!((h.selectivity_lt(&Value::Int(-5)) - 0.001).abs() < 1e-12);
        assert!((h.selectivity_lt(&Value::Int(1000)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn between_consistent_with_lt() {
        let h = Histogram::build(HistogramKind::EquiDepth, &uniform_0_99(), 20);
        let b = h.selectivity_between(&Value::Int(20), &Value::Int(40));
        let diff = h.selectivity_le(&Value::Int(40)) - h.selectivity_lt(&Value::Int(20));
        assert!((b - diff).abs() < 1e-12);
        assert_eq!(h.selectivity_between(&Value::Int(40), &Value::Int(20)), 0.0);
    }

    #[test]
    fn maxdiff_exact_for_few_distinct() {
        // 3 distinct values, 10 buckets available: exact representation.
        let vals = ints([1, 1, 1, 1, 5, 5, 9, 9, 9, 9]);
        let h = Histogram::build(HistogramKind::MaxDiff, &vals, 10);
        assert_eq!(h.buckets().len(), 3);
        assert!((h.selectivity_eq(&Value::Int(1)) - 0.4).abs() < 1e-12);
        assert!((h.selectivity_eq(&Value::Int(5)) - 0.2).abs() < 1e-12);
        assert_eq!(h.selectivity_eq(&Value::Int(7)), 0.0);
    }

    #[test]
    fn maxdiff_respects_bucket_budget() {
        let vals = ints((0..500).map(|i| (i * i) % 251));
        let h = Histogram::build(HistogramKind::MaxDiff, &vals, 8);
        assert!(h.buckets().len() <= 8);
        let total: f64 = h.buckets().iter().map(|b| b.fraction).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skewed_distribution_eq_estimates() {
        // 900 copies of 1, 100 distinct others.
        let mut vals = ints(std::iter::repeat_n(1, 900));
        vals.extend(ints(1000..1100));
        let h = Histogram::build(HistogramKind::MaxDiff, &vals, 20);
        let hot = h.selectivity_eq(&Value::Int(1));
        assert!(hot > 0.5, "hot value underestimated: {hot}");
    }

    #[test]
    fn ndv_counts_distincts() {
        let h = Histogram::build(HistogramKind::EquiDepth, &uniform_0_99(), 10);
        assert_eq!(h.ndv(), 100.0);
    }

    #[test]
    fn complement_identities() {
        let h = Histogram::build(HistogramKind::EquiDepth, &uniform_0_99(), 16);
        let v = Value::Int(37);
        assert!((h.selectivity_le(&v) + h.selectivity_gt(&v) - 1.0).abs() < 1e-9);
        assert!((h.selectivity_lt(&v) + h.selectivity_ge(&v) - 1.0).abs() < 1e-9);
        assert!((h.selectivity_eq(&v) + h.selectivity_ne(&v) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn join_selectivity_uniform_matches_textbook() {
        // Two uniform columns over 0..99: textbook sel = 1/100.
        let a = Histogram::build(HistogramKind::EquiDepth, &uniform_0_99(), 20);
        let b = Histogram::build(HistogramKind::EquiDepth, &uniform_0_99(), 20);
        let sel = join_selectivity(&a, &b);
        assert!((sel - 0.01).abs() < 0.004, "sel={sel}");
    }

    #[test]
    fn join_selectivity_skew_exceeds_textbook() {
        // 90% of both sides is the single value 1: the join fan-out is huge
        // and 1/max(ndv) would wildly underestimate it.
        let mut vals = ints(std::iter::repeat_n(1, 900));
        vals.extend(ints(1000..1100));
        let a = Histogram::build(HistogramKind::MaxDiff, &vals, 30);
        let sel = join_selectivity(&a, &a);
        let textbook = 1.0 / a.ndv();
        assert!(sel > 0.5, "sel={sel}");
        assert!(sel > 10.0 * textbook);
    }

    #[test]
    fn join_selectivity_disjoint_domains_is_zero() {
        let a = Histogram::build(HistogramKind::EquiDepth, &ints(0..100), 10);
        let b = Histogram::build(HistogramKind::EquiDepth, &ints(1000..1100), 10);
        assert_eq!(join_selectivity(&a, &b), 0.0);
    }

    #[test]
    fn join_selectivity_empty_side_is_zero() {
        let a = Histogram::build(HistogramKind::EquiDepth, &ints(0..10), 4);
        let e = Histogram::build(HistogramKind::EquiDepth, &[], 4);
        assert_eq!(join_selectivity(&a, &e), 0.0);
    }

    #[test]
    fn shared_prefix_strings_stay_distinct() {
        // Label columns like "Supplier#000000042" share a long prefix; the
        // histogram must still distinguish them.
        let vals: Vec<Value> = (0..100)
            .map(|i| Value::Str(format!("Supplier#{i:09}")))
            .collect();
        let h = Histogram::build(HistogramKind::MaxDiff, &vals, 64);
        assert_eq!(h.ndv(), 100.0);
        let eq = h.selectivity_eq(&Value::Str("Supplier#000000042".into()));
        assert!((eq - 0.01).abs() < 0.01, "eq={eq}");
        let ne = h.selectivity_ne(&Value::Str("Supplier#000000042".into()));
        assert!(ne > 0.9, "ne={ne}");
        // A probe outside the shared prefix falls outside the key domain and
        // gets the out-of-domain floor (1/100 here), not a hard zero.
        assert_eq!(h.selectivity_eq(&Value::Str("Customer#1".into())), 0.01);
        assert_eq!(h.selectivity_lt(&Value::Str("A".into())), 0.01);
        assert!((h.selectivity_lt(&Value::Str("Z".into())) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_prefix_join_falls_back_to_ndv() {
        let a: Vec<Value> = (0..50).map(|i| Value::Str(format!("aa{i:03}"))).collect();
        let b: Vec<Value> = (0..50).map(|i| Value::Str(format!("bb{i:03}"))).collect();
        let ha = Histogram::build(HistogramKind::EquiDepth, &a, 16);
        let hb = Histogram::build(HistogramKind::EquiDepth, &b, 16);
        let sel = join_selectivity(&ha, &hb);
        assert!((sel - 1.0 / 50.0).abs() < 1e-9, "sel={sel}");
    }

    #[test]
    fn out_of_domain_probes_are_floored_not_zero() {
        // Build over 0..=99, then probe keys the build never saw — the
        // post-insert drift case. Every out-of-domain estimator must return
        // the ~one-row floor (1/1000), never a hard 0.0.
        let h = Histogram::build(HistogramKind::EquiDepth, &uniform_0_99(), 20);
        let floor = 1.0 / 1000.0;
        for probe in [Value::Int(150), Value::Int(-7)] {
            let eq = h.selectivity_eq(&probe);
            assert!((eq - floor).abs() < 1e-12, "eq({probe:?})={eq}");
        }
        assert!((h.selectivity_gt(&Value::Int(150)) - floor).abs() < 1e-12);
        assert!((h.selectivity_ge(&Value::Int(150)) - floor).abs() < 1e-12);
        assert!((h.selectivity_lt(&Value::Int(-7)) - floor).abs() < 1e-12);
        let btw = h.selectivity_between(&Value::Int(120), &Value::Int(140));
        assert!((btw - floor).abs() < 1e-12, "between={btw}");
        // In-domain gaps stay exact zeros: the build scan witnessed absence.
        let sparse = ints([1, 1, 1, 5, 5, 9]);
        let g = Histogram::build(HistogramKind::MaxDiff, &sparse, 10);
        assert_eq!(g.selectivity_eq(&Value::Int(3)), 0.0);
        // Empty histograms have no domain and keep their exact zeros.
        let e = Histogram::build(HistogramKind::EquiDepth, &[], 4);
        assert_eq!(e.selectivity_eq(&Value::Int(1)), 0.0);
        assert_eq!(e.selectivity_lt(&Value::Int(1)), 0.0);
    }

    #[test]
    fn stale_histogram_estimates_survive_domain_extension() {
        // The regression scenario from the drift bugfix: a histogram built
        // before an append only covers the old domain, but probes on the
        // appended range must still estimate at least one row.
        let old: Vec<Value> = (0..500).map(Value::Int).collect();
        let h = Histogram::build(HistogramKind::EquiDepth, &old, 16);
        // "Append" 500..1000 to the table; the stale histogram never sees it.
        for v in [500i64, 750, 999] {
            assert!(
                h.selectivity_eq(&Value::Int(v)) > 0.0,
                "eq({v}) collapsed to zero on stale histogram"
            );
            assert!(
                h.selectivity_ge(&Value::Int(v)) > 0.0,
                "ge({v}) collapsed to zero on stale histogram"
            );
        }
    }

    #[test]
    fn single_bucket_histogram() {
        let h = Histogram::build(HistogramKind::EquiDepth, &ints(0..100), 1);
        assert_eq!(h.buckets().len(), 1);
        assert!((h.selectivity_lt(&Value::Int(50)) - 0.5).abs() < 0.02);
    }
}
