//! Deterministic cost model for statistics creation and update.
//!
//! The paper's experiments report *relative* reductions in "statistics
//! creation time" (Figures 3 and 4) and "update cost" (Table 1). We reproduce
//! those as ratios of deterministic work units: building a statistic costs a
//! scan of the referenced column bytes plus one sort per column of the
//! statistic. The knobs below let benches ablate the weighting; the defaults
//! are what every experiment uses.

use serde::{Deserialize, Serialize};

/// Tunable weights of the statistics build/update cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Work units per 8 bytes of column data scanned.
    pub scan_weight: f64,
    /// Work units per comparison in the per-column sort.
    pub sort_weight: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            scan_weight: 1.0,
            sort_weight: 1.0,
        }
    }
}

impl CostModel {
    /// Cost of building (or rebuilding) a statistic that reads `rows_read`
    /// rows of `col_bytes` total referenced bytes per row, over `n_cols`
    /// statistic columns.
    pub fn build_cost(&self, rows_read: usize, col_bytes: usize, n_cols: usize) -> f64 {
        let n = rows_read as f64;
        let scan = self.scan_weight * n * (col_bytes as f64 / 8.0);
        let sort = self.sort_weight * n_cols as f64 * n * n.max(2.0).log2();
        scan + sort
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_statistic_build_work() {
        let m = CostModel::default();
        assert_eq!(
            m.build_cost(1234, 16, 3),
            crate::statistic::build_work(1234, 16, 3)
        );
    }

    #[test]
    fn weights_scale_linearly() {
        let m = CostModel {
            scan_weight: 2.0,
            sort_weight: 0.0,
        };
        assert_eq!(m.build_cost(100, 8, 1), 200.0);
    }
}
