//! The statistic object and its construction from table data.

use crate::histogram::{Histogram, HistogramKind};
use crate::mhist::Histogram2d;
use crate::ndv::{estimate_ndv, estimate_tuple_ndv};
use crate::sampler::SampleSpec;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use storage::{Table, TableId, Value};

/// Identifier of a statistic within a [`StatsCatalog`](crate::StatsCatalog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StatId(pub u32);

impl fmt::Display for StatId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// What a statistic is *on*: a table and an ordered column list. Two
/// statistics with the same descriptor are the same statistic for the
/// purposes of candidate matching and the aging registry.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StatDescriptor {
    pub table: TableId,
    /// Column ordinals, leading column first. Single-column statistics have
    /// exactly one entry.
    pub columns: Vec<usize>,
}

impl StatDescriptor {
    pub fn single(table: TableId, column: usize) -> Self {
        StatDescriptor {
            table,
            columns: vec![column],
        }
    }

    pub fn multi(table: TableId, columns: Vec<usize>) -> Self {
        assert!(!columns.is_empty());
        StatDescriptor { table, columns }
    }

    pub fn leading_column(&self) -> usize {
        self.columns[0]
    }

    pub fn is_multi_column(&self) -> bool {
        self.columns.len() > 1
    }

    /// True if equality predicates on exactly `set` (unordered) can be
    /// answered by a prefix density of this statistic: `set` must equal the
    /// set of the first `set.len()` columns.
    pub fn prefix_covers_set(&self, set: &[usize]) -> bool {
        if set.is_empty() || set.len() > self.columns.len() {
            return false;
        }
        let prefix = &self.columns[..set.len()];
        set.iter().all(|c| prefix.contains(c)) && prefix.iter().all(|c| set.contains(c))
    }
}

/// How a statistic should be built.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BuildOptions {
    pub histogram_kind: HistogramKind,
    pub max_buckets: usize,
    pub sample: SampleSpec,
    /// Also build a Phased 2-D histogram over the first two columns of
    /// multi-column statistics (§3's MHIST reference; off by default since
    /// SQL Server 7.0 carried only the asymmetric histogram+density form).
    pub joint_histograms: bool,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            histogram_kind: HistogramKind::EquiDepth,
            max_buckets: 64,
            sample: SampleSpec::FullScan,
            joint_histograms: false,
        }
    }
}

impl BuildOptions {
    /// Enable Phased 2-D histograms on multi-column statistics.
    pub fn with_joint_histograms(mut self) -> Self {
        self.joint_histograms = true;
        self
    }
}

/// A built statistic: histogram on the leading column plus density
/// information on every leading prefix — the SQL Server 7.0 asymmetric
/// multi-column structure described in §7.1 of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Statistic {
    pub id: StatId,
    pub descriptor: StatDescriptor,
    /// Histogram over the leading column's non-null values.
    pub histogram: Histogram,
    /// `prefix_densities[k-1]` = average fraction of rows per distinct
    /// combination of the first `k` columns, i.e. `1 / NDV(prefix_k)`.
    pub prefix_densities: Vec<f64>,
    /// Fraction of rows where the leading column is NULL.
    pub null_fraction: f64,
    /// Table row count at build time.
    pub row_count_at_build: usize,
    /// Deterministic work units spent building this statistic.
    pub build_cost: f64,
    /// Times this statistic has been updated since creation (drives the
    /// auto-drop policy of §6).
    pub update_count: u32,
    /// Value of the table's row-modification counter when this statistic was
    /// (re)built. Staleness is `counter_now - mods_at_build`, so two
    /// statistics on one table age independently instead of sharing an
    /// all-or-nothing counter reset.
    pub mods_at_build: u64,
    /// Catalog epoch at which this statistic was created.
    pub created_epoch: u64,
    /// Optional Phased 2-D histogram over the first two columns (only on
    /// multi-column statistics built with `joint_histograms`).
    pub joint: Option<Histogram2d>,
}

impl Statistic {
    /// NDV of the leading `k`-column prefix implied by the stored density.
    pub fn prefix_ndv(&self, k: usize) -> f64 {
        let d = self.prefix_densities[k - 1];
        if d <= 0.0 {
            0.0
        } else {
            1.0 / d
        }
    }

    /// NDV of the leading column.
    pub fn leading_ndv(&self) -> f64 {
        self.histogram.ndv()
    }

    /// Density (1/NDV) over all columns of the statistic.
    pub fn full_density(&self) -> f64 {
        // Descriptors are validated non-empty at creation; an empty density
        // list (hand-built statistic) degrades to "no density information".
        self.prefix_densities.last().copied().unwrap_or(0.0)
    }
}

/// Deterministic work-unit cost of building a statistic on `columns` of a
/// table with `rows` rows, reading `rows_read` of them.
///
/// Model: the builder scans `rows_read` rows paying for the referenced column
/// bytes, then sorts the extracted rows once per column of the statistic
/// (`n log n` comparisons each). This makes multi-column statistics and
/// statistics on wide/large tables proportionally more expensive, which is
/// all the paper's relative "statistics creation time" results require.
pub fn build_work(rows_read: usize, col_bytes: usize, n_cols: usize) -> f64 {
    let n = rows_read as f64;
    let scan = n * (col_bytes as f64 / 8.0);
    let sort = n_cols as f64 * n * (n.max(2.0)).log2();
    scan + sort
}

/// Build a [`Statistic`] over `descriptor.columns` of `table`.
///
/// `seed` keys the row sample so rebuilds are reproducible but different
/// statistics draw different samples (see module docs of [`sampler`]).
pub fn build_statistic(
    id: StatId,
    table: &Table,
    descriptor: StatDescriptor,
    options: &BuildOptions,
    seed: u64,
    epoch: u64,
) -> Statistic {
    let total_rows = table.row_count();
    let rows = options.sample.pick_rows(total_rows, seed);
    let rows_read = rows.len();

    // Extract sampled column values.
    let mut cols: Vec<Vec<Value>> = Vec::with_capacity(descriptor.columns.len());
    for &c in &descriptor.columns {
        let mut vals = Vec::with_capacity(rows_read);
        for &r in &rows {
            vals.push(table.value(r, c));
        }
        cols.push(vals);
    }

    // Leading column: histogram over non-null values + null fraction.
    let leading: Vec<Value> = cols[0].iter().filter(|v| !v.is_null()).cloned().collect();
    let null_fraction = if rows_read == 0 {
        0.0
    } else {
        (rows_read - leading.len()) as f64 / rows_read as f64
    };
    let mut histogram = Histogram::build(options.histogram_kind, &leading, options.max_buckets);
    // Scale the sample NDV up to the table with the jackknife estimator.
    if rows_read < total_rows {
        histogram.set_ndv(estimate_ndv(&leading, total_rows));
    }

    // Prefix densities.
    let mut prefix_densities = Vec::with_capacity(descriptor.columns.len());
    for k in 1..=descriptor.columns.len() {
        let slices: Vec<&[Value]> = cols[..k].iter().map(|c| c.as_slice()).collect();
        let ndv = estimate_tuple_ndv(&slices, total_rows);
        prefix_densities.push(if ndv <= 0.0 { 0.0 } else { 1.0 / ndv });
    }

    // Optional joint (2-D) histogram over the first two columns.
    let joint = if options.joint_histograms && descriptor.columns.len() >= 2 {
        Some(Histogram2d::build(&cols[0], &cols[1], 16, 8))
    } else {
        None
    };

    let col_bytes: usize = descriptor
        .columns
        .iter()
        .map(|&c| table.schema().column(c).data_type.byte_width())
        .sum();
    let mut build_cost = build_work(rows_read, col_bytes, descriptor.columns.len());
    if joint.is_some() {
        // The second phase of the Phased construction is one more sort.
        build_cost += build_work(rows_read, 0, 1);
    }

    Statistic {
        id,
        descriptor,
        histogram,
        prefix_densities,
        null_fraction,
        row_count_at_build: total_rows,
        build_cost,
        update_count: 0,
        mods_at_build: table.modification_counter(),
        created_epoch: epoch,
        joint,
    }
}

/// Shared-scan build context for a batch of statistics on one table.
///
/// [`build_statistic`] extracts, filters, and sorts its columns from scratch
/// on every call, so creating k statistics that share columns (the common
/// case in an MNSA round: several single- and multi-column statistics on one
/// table) re-scans the table k times. `SharedTableScan` memoizes the four
/// expensive intermediates across calls —
///
/// * the extracted value vector per column ordinal,
/// * the histogram + null fraction per leading column,
/// * the tuple-NDV per column prefix,
/// * the Phased 2-D histogram per leading column pair,
///
/// — so each is computed once per table scan no matter how many statistics
/// need it. The result of [`SharedTableScan::build`] is **identical** to
/// `build_statistic` under full-scan sampling (every field, including the
/// `build_cost` charged per statistic); sharing is unsound under sampling
/// because each statistic's sample is keyed by its own seed, which is why
/// [`StatsCatalog::create_statistics_batch`](crate::StatsCatalog::create_statistics_batch)
/// falls back to per-statistic builds in that case.
pub struct SharedTableScan<'a> {
    table: &'a Table,
    options: BuildOptions,
    cols: HashMap<usize, Vec<Value>>,
    /// leading column → (histogram over non-null values, null fraction)
    leading: HashMap<usize, (Histogram, f64)>,
    prefix_ndvs: HashMap<Vec<usize>, f64>,
    joints: HashMap<(usize, usize), Histogram2d>,
}

impl<'a> SharedTableScan<'a> {
    pub fn new(table: &'a Table, options: &BuildOptions) -> Self {
        SharedTableScan {
            table,
            options: options.clone(),
            cols: HashMap::new(),
            leading: HashMap::new(),
            prefix_ndvs: HashMap::new(),
            joints: HashMap::new(),
        }
    }

    fn ensure_col(&mut self, c: usize) {
        if !self.cols.contains_key(&c) {
            let col = self.table.column(c);
            let vals: Vec<Value> = (0..col.len()).map(|r| col.get(r)).collect();
            self.cols.insert(c, vals);
        }
    }

    /// Build one statistic from the shared pass. The caller must have
    /// validated the descriptor (non-empty, in-range columns) exactly as
    /// [`StatsCatalog::create_statistic`](crate::StatsCatalog::create_statistic)
    /// does.
    pub fn build(&mut self, id: StatId, descriptor: StatDescriptor, epoch: u64) -> Statistic {
        let total_rows = self.table.row_count();
        let rows_read = total_rows; // full scan
        for &c in &descriptor.columns {
            self.ensure_col(c);
        }

        // Leading column: histogram over non-null values + null fraction,
        // computed once per leading column.
        let lead = descriptor.leading_column();
        if !self.leading.contains_key(&lead) {
            let vals = &self.cols[&lead];
            let non_null: Vec<Value> = vals.iter().filter(|v| !v.is_null()).cloned().collect();
            let null_fraction = if rows_read == 0 {
                0.0
            } else {
                (rows_read - non_null.len()) as f64 / rows_read as f64
            };
            let histogram = Histogram::build(
                self.options.histogram_kind,
                &non_null,
                self.options.max_buckets,
            );
            // No jackknife scaling: a full scan reads every row, so the
            // histogram's own distinct count is exact (mirrors
            // `build_statistic`'s `rows_read < total_rows` guard).
            self.leading.insert(lead, (histogram, null_fraction));
        }
        let (histogram, null_fraction) = self.leading[&lead].clone();

        // Prefix densities, one tuple-NDV estimation per distinct prefix.
        let mut prefix_densities = Vec::with_capacity(descriptor.columns.len());
        for k in 1..=descriptor.columns.len() {
            let prefix = &descriptor.columns[..k];
            if !self.prefix_ndvs.contains_key(prefix) {
                let slices: Vec<&[Value]> =
                    prefix.iter().map(|c| self.cols[c].as_slice()).collect();
                let ndv = estimate_tuple_ndv(&slices, total_rows);
                self.prefix_ndvs.insert(prefix.to_vec(), ndv);
            }
            let ndv = self.prefix_ndvs[prefix];
            prefix_densities.push(if ndv <= 0.0 { 0.0 } else { 1.0 / ndv });
        }

        // Optional joint (2-D) histogram over the first two columns.
        let joint = if self.options.joint_histograms && descriptor.columns.len() >= 2 {
            let pair = (descriptor.columns[0], descriptor.columns[1]);
            if !self.joints.contains_key(&pair) {
                let h = Histogram2d::build(&self.cols[&pair.0], &self.cols[&pair.1], 16, 8);
                self.joints.insert(pair, h);
            }
            Some(self.joints[&pair].clone())
        } else {
            None
        };

        // Work is charged per statistic exactly as a standalone build would:
        // the shared pass is a wall-clock optimization, not a discount in
        // the deterministic cost model.
        let col_bytes: usize = descriptor
            .columns
            .iter()
            .map(|&c| self.table.schema().column(c).data_type.byte_width())
            .sum();
        let mut build_cost = build_work(rows_read, col_bytes, descriptor.columns.len());
        if joint.is_some() {
            build_cost += build_work(rows_read, 0, 1);
        }

        Statistic {
            id,
            descriptor,
            histogram,
            prefix_densities,
            null_fraction,
            row_count_at_build: total_rows,
            build_cost,
            update_count: 0,
            mods_at_build: self.table.modification_counter(),
            created_epoch: epoch,
            joint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::{ColumnDef, DataType, Schema};

    fn table() -> Table {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("b", DataType::Int),
                ColumnDef::new("c", DataType::Int).nullable(),
            ]),
        );
        for i in 0..1000i64 {
            let c = if i % 10 == 0 {
                Value::Null
            } else {
                Value::Int(i % 7)
            };
            t.insert(vec![Value::Int(i % 100), Value::Int(i % 4), c])
                .unwrap();
        }
        t
    }

    fn build(desc: StatDescriptor) -> Statistic {
        build_statistic(StatId(0), &table(), desc, &BuildOptions::default(), 7, 0)
    }

    #[test]
    fn single_column_statistic() {
        let t = table();
        let s = build(StatDescriptor::single(TableId(0), 0));
        assert_eq!(s.leading_ndv(), 100.0);
        assert_eq!(s.prefix_densities.len(), 1);
        assert!((s.full_density() - 0.01).abs() < 1e-9);
        assert_eq!(s.row_count_at_build, t.row_count());
        assert_eq!(s.null_fraction, 0.0);
    }

    #[test]
    fn multi_column_prefix_densities() {
        let s = build(StatDescriptor::multi(TableId(0), vec![0, 1]));
        // a has 100 distincts; (a, b): i%100 determines i%4 unless 100 % 4 !=0
        // 100 is divisible by 4 so (i%100, i%4) has exactly 100 combinations.
        assert_eq!(s.prefix_ndv(1), 100.0);
        assert_eq!(s.prefix_ndv(2), 100.0);
    }

    #[test]
    fn null_fraction_measured() {
        let s = build(StatDescriptor::single(TableId(0), 2));
        assert!((s.null_fraction - 0.1).abs() < 1e-9);
        assert_eq!(s.leading_ndv(), 7.0);
    }

    #[test]
    fn sampled_build_costs_less() {
        let t = table();
        let full = build_statistic(
            StatId(0),
            &t,
            StatDescriptor::single(TableId(0), 0),
            &BuildOptions::default(),
            1,
            0,
        );
        let sampled = build_statistic(
            StatId(1),
            &t,
            StatDescriptor::single(TableId(0), 0),
            &BuildOptions {
                sample: SampleSpec::Fraction {
                    fraction: 0.1,
                    min_rows: 10,
                },
                ..Default::default()
            },
            1,
            0,
        );
        assert!(sampled.build_cost < full.build_cost / 5.0);
        // Sampled NDV estimate should be in a sane band around 100.
        assert!(sampled.leading_ndv() >= 50.0 && sampled.leading_ndv() <= 400.0);
    }

    #[test]
    fn prefix_covers_set_semantics() {
        let d = StatDescriptor::multi(TableId(0), vec![2, 0, 1]);
        assert!(d.prefix_covers_set(&[2]));
        assert!(d.prefix_covers_set(&[0, 2]));
        assert!(d.prefix_covers_set(&[1, 0, 2]));
        assert!(!d.prefix_covers_set(&[0]));
        assert!(!d.prefix_covers_set(&[0, 1]));
        assert!(!d.prefix_covers_set(&[]));
        assert!(!d.prefix_covers_set(&[0, 1, 2, 3]));
    }

    #[test]
    fn build_work_scales_with_columns_and_rows() {
        assert!(build_work(1000, 8, 2) > build_work(1000, 8, 1));
        assert!(build_work(2000, 8, 1) > 2.0 * build_work(1000, 8, 1) * 0.9);
        assert!(build_work(0, 8, 1) == 0.0);
    }
}
