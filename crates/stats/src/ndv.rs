//! Estimating the number of distinct values from a sample.
//!
//! When statistics are built from a row sample rather than a full scan, the
//! distinct count observed in the sample underestimates the table's true NDV.
//! We use the first-order jackknife estimator of Haas, Naughton, Seshadri and
//! Stokes (VLDB 1995) — reference [9] of the paper — which corrects the
//! sample distinct count by the fraction of values observed exactly once:
//!
//! ```text
//! D̂ = d / (1 - f1 * (1 - q) / n)
//! ```
//!
//! where `d` is the number of distinct values in the sample, `f1` the number
//! of values appearing exactly once, `n` the sample size, and `q = n / N` the
//! sampling fraction.

use rustc_hash::FxHashMap;
use storage::Value;

/// Estimate the table-level NDV from a sample of `sample` values drawn from a
/// table with `total_rows` rows. Returns the exact distinct count when the
/// sample covers the whole table.
pub fn estimate_ndv(sample: &[Value], total_rows: usize) -> f64 {
    if sample.is_empty() {
        return 0.0;
    }
    let n = sample.len();
    let mut freq: FxHashMap<&Value, usize> =
        FxHashMap::with_capacity_and_hasher(n, Default::default());
    for v in sample {
        *freq.entry(v).or_insert(0) += 1;
    }
    let d = freq.len() as f64;
    if n >= total_rows {
        return d;
    }
    let f1 = freq.values().filter(|&&c| c == 1).count() as f64;
    let q = n as f64 / total_rows as f64;
    let denom = 1.0 - f1 * (1.0 - q) / n as f64;
    let est = if denom <= 0.0 {
        total_rows as f64
    } else {
        d / denom
    };
    est.clamp(d, total_rows as f64)
}

/// Estimate the NDV of value *tuples* (multi-column combinations) from
/// parallel sample columns: `columns[c][i]` is column `c` of sample row `i`.
pub fn estimate_tuple_ndv(columns: &[&[Value]], total_rows: usize) -> f64 {
    if columns.is_empty() || columns[0].is_empty() {
        return 0.0;
    }
    let n = columns[0].len();
    debug_assert!(columns.iter().all(|c| c.len() == n));
    let mut freq: FxHashMap<Vec<&Value>, usize> =
        FxHashMap::with_capacity_and_hasher(n, Default::default());
    for i in 0..n {
        let tuple: Vec<&Value> = columns.iter().map(|c| &c[i]).collect();
        *freq.entry(tuple).or_insert(0) += 1;
    }
    let d = freq.len() as f64;
    if n >= total_rows {
        return d;
    }
    let f1 = freq.values().filter(|&&c| c == 1).count() as f64;
    let q = n as f64 / total_rows as f64;
    let denom = 1.0 - f1 * (1.0 - q) / n as f64;
    let est = if denom <= 0.0 {
        total_rows as f64
    } else {
        d / denom
    };
    est.clamp(d, total_rows as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scan_is_exact() {
        let vals: Vec<Value> = (0..100).map(|i| Value::Int(i % 10)).collect();
        assert_eq!(estimate_ndv(&vals, 100), 10.0);
    }

    #[test]
    fn empty_sample() {
        assert_eq!(estimate_ndv(&[], 100), 0.0);
    }

    #[test]
    fn jackknife_scales_up_unique_heavy_samples() {
        // Sample of 100 all-distinct values from 10_000 rows: true NDV is
        // likely much larger than 100; the estimator must say > 100.
        let vals: Vec<Value> = (0..100).map(Value::Int).collect();
        let est = estimate_ndv(&vals, 10_000);
        assert!(est > 100.0, "est={est}");
        assert!(est <= 10_000.0);
    }

    #[test]
    fn low_cardinality_sample_stays_low() {
        // 1000-row sample with only 3 distinct values, each frequent: the
        // estimate should stay close to 3 (no singletons).
        let vals: Vec<Value> = (0..1000).map(|i| Value::Int(i % 3)).collect();
        let est = estimate_ndv(&vals, 1_000_000);
        assert_eq!(est, 3.0);
    }

    #[test]
    fn tuple_ndv_counts_combinations() {
        let a: Vec<Value> = (0..100).map(|i| Value::Int(i % 4)).collect();
        let b: Vec<Value> = (0..100).map(|i| Value::Int(i % 5)).collect();
        let est = estimate_tuple_ndv(&[&a, &b], 100);
        assert_eq!(est, 20.0); // 4 * 5 combinations, all present
    }

    #[test]
    fn estimate_clamped_to_total_rows() {
        let vals: Vec<Value> = (0..10).map(Value::Int).collect();
        let est = estimate_ndv(&vals, 12);
        assert!(est <= 12.0);
        assert!(est >= 10.0);
    }
}
