//! Self-tuning histograms corrected from execution feedback.
//!
//! The paper's framework treats statistics as build-only artifacts that a
//! staleness policy rebuilds with full scans. This module closes the loop in
//! the STGrid style (*A Learning Framework for Self-Tuning Histograms*,
//! PAPERS.md): the executor reports, per scan predicate, the key range it
//! selected and the cardinality it actually produced; the corrector adjusts
//! the histogram's bucket frequencies toward those observations with a
//! damped error-distribution rule, occasionally restructuring — splitting
//! the most-mispredicted bucket and merging the coldest adjacent pair — so
//! resolution migrates to where the workload looks.
//!
//! Two properties matter to the rest of the workspace:
//!
//! - **Determinism.** Corrections depend only on the histogram state, the
//!   observation sequence, and the config. Observations apply in ingest
//!   order, restructuring ties break on the lowest bucket index, and the
//!   store iterates in `BTreeMap` order — a replayed feedback stream yields
//!   a bit-identical histogram.
//! - **Near-zero cost.** Correction work is metered per observation × bucket
//!   touched, orders of magnitude below a scan rebuild's
//!   [`cost`](crate::cost) charge, which is what makes it attractive to the
//!   staleness tracker and to MNSA's build-cost weighing.

use crate::histogram::{Bucket, Histogram, HistogramKind};
use obsv::FeedbackRecord;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Tuning knobs for the feedback corrector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeedbackConfig {
    /// Fraction of each observed error applied per observation (STGrid's
    /// learning rate). 1.0 snaps to the latest observation; small values
    /// smooth over noisy feedback.
    pub damping: f64,
    /// Observations required on a (table, column) before feedback refresh
    /// is considered trustworthy enough to substitute for a scan rebuild.
    pub min_observations: usize,
    /// Restructure (split + merge) after this many applied observations.
    pub restructure_every: usize,
    /// Bucket-count ceiling maintained by restructuring.
    pub max_buckets: usize,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig {
            damping: 0.5,
            min_observations: 4,
            restructure_every: 8,
            max_buckets: 64,
        }
    }
}

/// One digested feedback observation: the predicate selected the inclusive
/// key range `[lo, hi]` and matched `fraction` of the table's rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    pub lo: f64,
    pub hi: f64,
    /// Observed selectivity (`rows_out / input_rows`), in [0, 1].
    pub fraction: f64,
    /// Live row count of the table at observation time.
    pub input_rows: f64,
}

impl Observation {
    /// Digest a raw executor record; `None` if it cannot inform a
    /// correction (empty table, NaN range, inverted range).
    pub fn from_record(r: &FeedbackRecord) -> Option<Observation> {
        if r.input_rows.is_nan()
            || r.input_rows <= 0.0
            || r.lo.is_nan()
            || r.hi.is_nan()
            || r.lo > r.hi
        {
            return None;
        }
        let fraction = (r.rows_out / r.input_rows).clamp(0.0, 1.0);
        if !fraction.is_finite() {
            return None;
        }
        Some(Observation {
            lo: r.lo,
            hi: r.hi,
            fraction,
            input_rows: r.input_rows,
        })
    }
}

/// What one correction pass did to a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CorrectionOutcome {
    /// Observations actually applied (after digestion filters).
    pub applied: usize,
    /// Deterministic work units charged, comparable to
    /// [`cost::build_work`](crate::cost) units.
    pub work: f64,
    /// Buckets split by restructuring.
    pub splits: usize,
    /// Bucket pairs merged by restructuring.
    pub merges: usize,
    /// Whether any observation extended the histogram's key domain.
    pub domain_extended: bool,
}

/// Accumulates digested observations per (raw table id, column ordinal).
/// Iteration order is fixed by the `BTreeMap` key order; within a key,
/// observations keep ingest order — both matter for determinism.
#[derive(Debug, Clone, Default)]
pub struct FeedbackStore {
    observations: BTreeMap<(u64, u32), Vec<Observation>>,
}

impl FeedbackStore {
    pub fn new() -> FeedbackStore {
        FeedbackStore::default()
    }

    /// Digest and file raw executor records in order.
    pub fn ingest(&mut self, records: &[FeedbackRecord]) {
        for r in records {
            if let Some(obs) = Observation::from_record(r) {
                self.observations
                    .entry((r.table, r.column))
                    .or_default()
                    .push(obs);
            }
        }
    }

    /// Observations filed for one (table, column), in ingest order.
    pub fn observations(&self, table: u64, column: u32) -> &[Observation] {
        self.observations
            .get(&(table, column))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    pub fn count(&self, table: u64, column: u32) -> usize {
        self.observations(table, column).len()
    }

    /// Remove and return one key's observations (consumed on apply so the
    /// same feedback never corrects a histogram twice).
    pub fn take(&mut self, table: u64, column: u32) -> Vec<Observation> {
        self.observations
            .remove(&(table, column))
            .unwrap_or_default()
    }

    /// Total buffered observations across all keys.
    pub fn total(&self) -> usize {
        self.observations.values().map(Vec::len).sum()
    }

    /// The (table, column) keys with at least `min` observations, in key
    /// order.
    pub fn ready_keys(&self, min: usize) -> Vec<(u64, u32)> {
        self.observations
            .iter()
            .filter(|(_, v)| v.len() >= min)
            .map(|(&k, _)| k)
            .collect()
    }
}

/// Fraction of bucket `b`'s mass the inclusive range `[lo, hi]` claims, in
/// (0, 1]. Point buckets are covered entirely or not at all. The overlap is
/// padded by one inter-value spacing so a point probe (equality feedback)
/// inside a wide bucket claims one value's share instead of zero.
fn overlap_fraction(b: &Bucket, lo: f64, hi: f64) -> f64 {
    let olo = b.lo.max(lo);
    let ohi = b.hi.min(hi);
    if ohi < olo {
        return 0.0;
    }
    let width = b.hi - b.lo;
    if width <= 0.0 {
        return 1.0;
    }
    let s = width / (b.distinct - 1.0).max(1.0);
    (((ohi - olo) + s) / (width + s)).clamp(0.0, 1.0)
}

/// Whether a histogram is eligible for feedback correction: feedback ranges
/// carry raw numeric keys, which only align with histograms that key values
/// directly (no stripped string prefix) and that have at least one bucket.
pub fn correctable(h: &Histogram) -> bool {
    h.str_prefix().is_none() && !h.buckets().is_empty()
}

/// Correct `histogram` in place from `observations` (applied in order).
///
/// Per observation: estimate the range's selectivity from the current
/// buckets, distribute `damping × (observed − estimated)` across the
/// overlapping buckets in proportion to their overlap, clamp fractions at
/// zero, and rescale if the total mass exceeds one. Observations beyond the
/// key domain extend the edge bucket toward the observed range (the
/// post-insert drift case). Every `restructure_every` applications the
/// most-mispredicted splittable bucket is split at its midpoint and, when
/// over `max_buckets`, the coldest adjacent pair is merged.
pub fn correct_histogram(
    histogram: &mut Histogram,
    observations: &[Observation],
    config: &FeedbackConfig,
) -> CorrectionOutcome {
    let mut outcome = CorrectionOutcome::default();
    if !correctable(histogram) || observations.is_empty() {
        return outcome;
    }
    let damping = config.damping.clamp(0.0, 1.0);
    let mut live_rows = histogram.rows();
    // Per-bucket accumulated |error|, feeding the split heuristic. Kept
    // index-aligned with the bucket vec through splits/merges.
    let mut errors: Vec<f64> = vec![0.0; histogram.buckets().len()];
    let mut since_restructure = 0usize;

    for obs in observations {
        live_rows = live_rows.max(obs.input_rows);
        let buckets = histogram.buckets_mut();
        // Domain extension: stretch the edge bucket toward an observed range
        // the build never covered, so later corrections have somewhere to
        // put the mass. Infinite endpoints (open ranges) never stretch.
        if let (Some(first), Some(last)) = (buckets.first().copied(), buckets.last().copied()) {
            if obs.hi > last.hi && obs.hi.is_finite() && obs.fraction > 0.0 {
                if let Some(b) = buckets.last_mut() {
                    b.hi = obs.hi;
                    b.distinct += 1.0;
                    outcome.domain_extended = true;
                }
            }
            if obs.lo < first.lo && obs.lo.is_finite() && obs.fraction > 0.0 {
                if let Some(b) = buckets.first_mut() {
                    b.lo = obs.lo;
                    b.distinct += 1.0;
                    outcome.domain_extended = true;
                }
            }
        }

        // Estimate the observed range from the current buckets.
        let overlaps: Vec<(usize, f64)> = buckets
            .iter()
            .enumerate()
            .map(|(i, b)| (i, overlap_fraction(b, obs.lo, obs.hi)))
            .filter(|&(_, o)| o > 0.0)
            .collect();
        if overlaps.is_empty() {
            continue;
        }
        let estimated: f64 = overlaps
            .iter()
            .map(|&(i, o)| buckets.get(i).map(|b| b.fraction * o).unwrap_or(0.0))
            .sum();
        let error = damping * (obs.fraction - estimated);
        // Distribute the damped error in proportion to each bucket's share
        // of the estimate (falling back to overlap share when the estimate
        // is all-zero, so empty regions can still learn mass).
        let est_total = estimated.max(0.0);
        let overlap_total: f64 = overlaps.iter().map(|&(_, o)| o).sum();
        for &(i, o) in &overlaps {
            let Some(b) = buckets.get_mut(i) else {
                continue;
            };
            let share = if est_total > 0.0 {
                (b.fraction * o) / est_total
            } else if overlap_total > 0.0 {
                o / overlap_total
            } else {
                0.0
            };
            b.fraction = (b.fraction + error * share).max(0.0);
            if let Some(e) = errors.get_mut(i) {
                *e += (error * share).abs();
            }
        }
        // Keep total mass a probability: rescale if corrections pushed the
        // sum past one.
        let total: f64 = buckets.iter().map(|b| b.fraction).sum();
        if total > 1.0 {
            for b in buckets.iter_mut() {
                b.fraction /= total;
            }
        }
        outcome.applied += 1;
        outcome.work += (overlaps.len() as f64).max(1.0);
        since_restructure += 1;

        if config.restructure_every > 0 && since_restructure >= config.restructure_every {
            since_restructure = 0;
            let (splits, merges) = restructure(histogram.buckets_mut(), &mut errors, config);
            outcome.splits += splits;
            outcome.merges += merges;
        }
    }
    if outcome.applied > 0 {
        histogram.set_rows(live_rows);
    }
    outcome
}

/// One restructuring step: split the bucket with the highest accumulated
/// error (midpoint halving; ties → lowest index), then merge the adjacent
/// pair with the least combined mass while over the bucket budget.
fn restructure(
    buckets: &mut Vec<Bucket>,
    errors: &mut Vec<f64>,
    config: &FeedbackConfig,
) -> (usize, usize) {
    let mut splits = 0usize;
    let mut merges = 0usize;
    // Split: only buckets with positive width and error can be refined.
    let split_at = buckets
        .iter()
        .enumerate()
        .filter(|(i, b)| b.hi > b.lo && errors.get(*i).copied().unwrap_or(0.0) > 0.0)
        .max_by(|(i, _), (j, _)| {
            let (ei, ej) = (
                errors.get(*i).copied().unwrap_or(0.0),
                errors.get(*j).copied().unwrap_or(0.0),
            );
            // Strictly-greater wins; on a tie the lower index wins, so take
            // `Less` when i > j to keep max_by's last-wins bias off.
            ei.partial_cmp(&ej)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(j.cmp(i))
        })
        .map(|(i, _)| i);
    if let Some(i) = split_at {
        if let Some(b) = buckets.get(i).copied() {
            let mid = b.lo + (b.hi - b.lo) / 2.0;
            if mid > b.lo && mid < b.hi {
                let half_distinct = (b.distinct / 2.0).max(1.0);
                let left = Bucket {
                    lo: b.lo,
                    hi: mid,
                    fraction: b.fraction / 2.0,
                    distinct: half_distinct,
                };
                let right = Bucket {
                    lo: mid,
                    hi: b.hi,
                    fraction: b.fraction / 2.0,
                    distinct: half_distinct,
                };
                if let Some(slot) = buckets.get_mut(i) {
                    *slot = left;
                }
                buckets.insert((i + 1).min(buckets.len()), right);
                if let Some(slot) = errors.get_mut(i) {
                    *slot = 0.0;
                }
                errors.insert((i + 1).min(errors.len()), 0.0);
                splits += 1;
            }
        }
    }
    // Merge back under budget: coldest adjacent pair, lowest index on ties.
    while buckets.len() > config.max_buckets.max(1) && buckets.len() >= 2 {
        let mut best = 0usize;
        let mut best_mass = f64::INFINITY;
        for i in 0..buckets.len() - 1 {
            let mass = buckets.get(i).map(|b| b.fraction).unwrap_or(0.0)
                + buckets.get(i + 1).map(|b| b.fraction).unwrap_or(0.0);
            if mass < best_mass {
                best_mass = mass;
                best = i;
            }
        }
        let Some(right) = buckets.get(best + 1).copied() else {
            break;
        };
        if let Some(left) = buckets.get_mut(best) {
            left.hi = right.hi;
            left.fraction += right.fraction;
            left.distinct += right.distinct;
        }
        buckets.remove(best + 1);
        let carried = errors.get(best + 1).copied().unwrap_or(0.0);
        if let Some(e) = errors.get_mut(best) {
            *e += carried;
        }
        if best + 1 < errors.len() {
            errors.remove(best + 1);
        }
        merges += 1;
    }
    (splits, merges)
}

/// Synthesize a histogram purely from feedback, with no table scan: seed a
/// single bucket over the observed key span, then run the corrector over
/// every observation. Returns `None` when the observations cannot span a
/// finite domain. The result is coarse but costs only correction work —
/// the "near-zero build cost" candidate MNSA weighs against scan builds.
pub fn build_from_feedback(
    observations: &[Observation],
    config: &FeedbackConfig,
) -> Option<(Histogram, CorrectionOutcome)> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut rows = 0.0f64;
    let mut seed_fraction = 0.0f64;
    for o in observations {
        if o.lo.is_finite() {
            lo = lo.min(o.lo);
        }
        if o.hi.is_finite() {
            hi = hi.max(o.hi);
        }
        rows = rows.max(o.input_rows);
        seed_fraction = seed_fraction.max(o.fraction);
    }
    if !lo.is_finite() || !hi.is_finite() || hi < lo || rows <= 0.0 {
        return None;
    }
    let seed = Bucket {
        lo,
        hi,
        fraction: seed_fraction.clamp(0.0, 1.0).max(1.0 / rows),
        distinct: (observations.len() as f64).max(1.0),
    };
    let mut histogram = Histogram::from_parts(
        HistogramKind::default(),
        vec![seed],
        (observations.len() as f64).max(1.0),
        rows,
    );
    let outcome = correct_histogram(&mut histogram, observations, config);
    Some((histogram, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::Value;

    fn obs(lo: f64, hi: f64, fraction: f64) -> Observation {
        Observation {
            lo,
            hi,
            fraction,
            input_rows: 1000.0,
        }
    }

    fn uniform_histogram() -> Histogram {
        let values: Vec<Value> = (0..1000).map(|i| Value::Int(i % 100)).collect();
        Histogram::build(HistogramKind::EquiDepth, &values, 10)
    }

    fn total_fraction(h: &Histogram) -> f64 {
        h.buckets().iter().map(|b| b.fraction).sum()
    }

    fn assert_invariants(h: &Histogram) {
        assert!(total_fraction(h) <= 1.0 + 1e-9, "mass > 1");
        for w in h.buckets().windows(2) {
            assert!(w[0].hi <= w[1].lo, "buckets overlap: {w:?}");
        }
        for b in h.buckets() {
            assert!(b.lo <= b.hi && b.fraction >= 0.0 && b.fraction.is_finite());
        }
    }

    #[test]
    fn correction_moves_estimate_toward_observation() {
        let mut h = uniform_histogram();
        // The histogram says [0, 50) holds ~50% of rows; feedback insists
        // it holds 10%. Repeated corrections must converge downward.
        let before = h.selectivity_lt(&Value::Int(50));
        let stream: Vec<Observation> = (0..20).map(|_| obs(0.0, 49.0, 0.10)).collect();
        let out = correct_histogram(&mut h, &stream, &FeedbackConfig::default());
        assert_eq!(out.applied, 20);
        let after = h.selectivity_lt(&Value::Int(50));
        assert!(
            after < before && (after - 0.10).abs() < 0.1,
            "before={before} after={after}"
        );
        assert_invariants(&h);
    }

    #[test]
    fn correction_is_deterministic_under_fixed_order() {
        let stream: Vec<Observation> = (0..30)
            .map(|i| obs((i % 7) as f64 * 10.0, (i % 7) as f64 * 10.0 + 15.0, 0.2))
            .collect();
        let mut a = uniform_histogram();
        let mut b = uniform_histogram();
        let oa = correct_histogram(&mut a, &stream, &FeedbackConfig::default());
        let ob = correct_histogram(&mut b, &stream, &FeedbackConfig::default());
        assert_eq!(oa, ob);
        assert_eq!(a, b, "same stream, same order, different histograms");
    }

    #[test]
    fn out_of_domain_observation_extends_domain() {
        let mut h = uniform_histogram(); // domain [0, 99]
        let stream: Vec<Observation> = (0..8).map(|_| obs(150.0, 150.0, 0.05)).collect();
        let out = correct_histogram(&mut h, &stream, &FeedbackConfig::default());
        assert!(out.domain_extended);
        let (_, hi) = h.bounds().unwrap();
        assert_eq!(hi, 150.0);
        assert!(h.selectivity_eq(&Value::Int(150)) > 0.0);
        assert_invariants(&h);
    }

    #[test]
    fn restructuring_respects_bucket_budget() {
        let mut h = uniform_histogram();
        let config = FeedbackConfig {
            restructure_every: 2,
            max_buckets: 10,
            ..Default::default()
        };
        let stream: Vec<Observation> = (0..40)
            .map(|i| obs((i % 9) as f64 * 11.0, (i % 9) as f64 * 11.0 + 5.0, 0.3))
            .collect();
        let out = correct_histogram(&mut h, &stream, &config);
        assert!(out.splits > 0, "no bucket was ever split");
        assert!(h.buckets().len() <= config.max_buckets);
        assert_invariants(&h);
    }

    #[test]
    fn store_digests_and_consumes_in_order() {
        let mut store = FeedbackStore::new();
        let rec = |table: u64, column: u32, rows_out: f64| FeedbackRecord {
            fingerprint: 0,
            table,
            column,
            lo: 1.0,
            hi: 2.0,
            est_rows: 1.0,
            rows_out,
            input_rows: 10.0,
        };
        store.ingest(&[rec(1, 0, 1.0), rec(1, 0, 2.0), rec(2, 1, 3.0)]);
        // A record on an empty table digests to nothing.
        store.ingest(&[FeedbackRecord {
            input_rows: 0.0,
            ..rec(3, 0, 1.0)
        }]);
        assert_eq!(store.count(1, 0), 2);
        assert_eq!(store.count(2, 1), 1);
        assert_eq!(store.count(3, 0), 0);
        assert_eq!(store.total(), 3);
        assert_eq!(store.ready_keys(2), vec![(1, 0)]);
        let taken = store.take(1, 0);
        assert_eq!(taken.len(), 2);
        assert!((taken[0].fraction - 0.1).abs() < 1e-12);
        assert!((taken[1].fraction - 0.2).abs() < 1e-12);
        assert_eq!(store.total(), 1);
    }

    #[test]
    fn string_prefix_histograms_are_not_correctable() {
        let vals: Vec<Value> = (0..50)
            .map(|i| Value::Str(format!("Supplier#{i:06}")))
            .collect();
        let mut h = Histogram::build(HistogramKind::EquiDepth, &vals, 8);
        assert!(!correctable(&h));
        let before = h.clone();
        let out = correct_histogram(&mut h, &[obs(0.0, 1.0, 0.5)], &FeedbackConfig::default());
        assert_eq!(out.applied, 0);
        assert_eq!(h, before);
    }

    use proptest::prelude::*;

    /// Raw executor records with hostile floats: NaN/±∞ endpoints, inverted
    /// ranges, zero-row inputs, rows_out far above input_rows.
    fn arb_endpoint() -> impl Strategy<Value = f64> {
        prop_oneof![
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
            -1e6..1e6f64,
        ]
    }

    fn arb_record() -> impl Strategy<Value = FeedbackRecord> {
        (
            arb_endpoint(),
            arb_endpoint(),
            0.0f64..1e6,
            prop_oneof![Just(0.0f64), 0.0..1e6f64],
            0.0f64..2e6,
        )
            .prop_map(|(lo, hi, est_rows, input_rows, rows_out)| FeedbackRecord {
                fingerprint: 0,
                table: 1,
                column: 0,
                lo,
                hi,
                est_rows,
                rows_out,
                input_rows,
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The satellite invariants: under ANY feedback stream the corrected
        /// histogram keeps total mass ≤ 1, sorted disjoint buckets, finite
        /// non-negative fractions, and every selectivity probe lands finite
        /// in [0, 1]. Corrections are also deterministic (same stream twice
        /// → bit-identical histograms), and an empty stream is a no-op.
        #[test]
        fn arbitrary_feedback_streams_preserve_invariants(
            records in prop::collection::vec(arb_record(), 0..60),
            damping in 0.0f64..1.5,
            restructure_every in 0usize..6,
            max_buckets in 1usize..24,
        ) {
            let config = FeedbackConfig {
                damping,
                min_observations: 1,
                restructure_every,
                max_buckets,
            };
            let mut store = FeedbackStore::new();
            store.ingest(&records);
            let observations = store.take(1, 0);

            let mut h = uniform_histogram();
            let mut twin = uniform_histogram();
            let out = correct_histogram(&mut h, &observations, &config);
            let out_twin = correct_histogram(&mut twin, &observations, &config);
            prop_assert_eq!(out, out_twin);
            prop_assert_eq!(&h, &twin, "same stream, different histograms");
            prop_assert!(out.work.is_finite() && out.work >= 0.0);
            prop_assert!(out.applied <= observations.len());

            let total: f64 = h.buckets().iter().map(|b| b.fraction).sum();
            prop_assert!(total <= 1.0 + 1e-9, "mass {total} > 1");
            for w in h.buckets().windows(2) {
                prop_assert!(w[0].hi <= w[1].lo, "buckets overlap: {w:?}");
            }
            for b in h.buckets() {
                prop_assert!(b.lo <= b.hi && b.fraction >= 0.0 && b.fraction.is_finite());
            }
            for v in [i64::MIN / 2, -1000, 0, 37, 99, 1000, i64::MAX / 2] {
                let probes = [
                    h.selectivity_eq(&Value::Int(v)),
                    h.selectivity_lt(&Value::Int(v)),
                    h.selectivity_gt(&Value::Int(v)),
                    h.selectivity_between(&Value::Int(v), &Value::Int(v.saturating_add(10))),
                ];
                for sel in probes {
                    prop_assert!(
                        sel.is_finite() && (0.0..=1.0).contains(&sel),
                        "selectivity {sel} out of range at {v}"
                    );
                }
            }

            // Feedback-off contract, histogram edition: no observations,
            // no change — bit-identical to the untouched build.
            let mut untouched = uniform_histogram();
            let noop = correct_histogram(&mut untouched, &[], &config);
            prop_assert_eq!(noop, CorrectionOutcome::default());
            prop_assert_eq!(untouched, uniform_histogram());
        }

        /// Feedback-synthesized histograms obey the same invariants, and
        /// refuse (return `None`) rather than build from unseedable streams.
        #[test]
        fn build_from_feedback_is_sound_under_arbitrary_streams(
            records in prop::collection::vec(arb_record(), 0..40),
        ) {
            let mut store = FeedbackStore::new();
            store.ingest(&records);
            let observations = store.take(1, 0);
            let Some((h, out)) = build_from_feedback(&observations, &FeedbackConfig::default())
            else {
                return Ok(());
            };
            prop_assert!(h.rows() > 0.0);
            prop_assert!(out.work.is_finite());
            let total: f64 = h.buckets().iter().map(|b| b.fraction).sum();
            prop_assert!(total <= 1.0 + 1e-9);
            for w in h.buckets().windows(2) {
                prop_assert!(w[0].hi <= w[1].lo);
            }
            for b in h.buckets() {
                prop_assert!(b.lo <= b.hi && b.fraction >= 0.0 && b.fraction.is_finite());
            }
            let sel = h.selectivity_lt(&Value::Int(0));
            prop_assert!(sel.is_finite() && (0.0..=1.0).contains(&sel));
        }
    }

    #[test]
    fn build_from_feedback_synthesizes_usable_histogram() {
        let stream: Vec<Observation> = (0..12)
            .map(|i| obs((i % 4) as f64 * 25.0, (i % 4) as f64 * 25.0 + 20.0, 0.25))
            .collect();
        let (h, out) = build_from_feedback(&stream, &FeedbackConfig::default()).unwrap();
        assert!(out.applied > 0);
        assert!(h.rows() == 1000.0);
        assert_invariants(&h);
        let sel = h.selectivity_between(&Value::Int(0), &Value::Int(20));
        assert!(sel > 0.0 && sel <= 1.0);
        // Open-range-only feedback has no finite span to seed from.
        assert!(build_from_feedback(
            &[obs(f64::NEG_INFINITY, f64::INFINITY, 0.5)],
            &FeedbackConfig::default()
        )
        .is_none());
    }
}
