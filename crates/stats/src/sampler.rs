//! Row sampling for statistics construction.
//!
//! The paper (§2) notes that building every statistic from a *single* shared
//! sample can introduce unwanted correlation, so each statistic build draws
//! its own sample, seeded deterministically from the statistic's descriptor
//! so that experiments are reproducible.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How to read the base data when building a statistic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum SampleSpec {
    /// Scan every row.
    #[default]
    FullScan,
    /// Uniform row-level sample of the given fraction (0, 1], with a floor of
    /// `min_rows` rows so tiny samples don't produce junk histograms.
    Fraction { fraction: f64, min_rows: usize },
    /// Block-level sample: whole runs of `block_rows` consecutive rows are
    /// taken until the fraction is covered. Cheaper to read on disk-resident
    /// systems, but values correlated with physical position (clustered
    /// columns) bias the sample — the §2 caveat about block-level sampling.
    Blocks {
        fraction: f64,
        block_rows: usize,
        min_rows: usize,
    },
}

use crate::error::StatsError;
use serde::{Deserialize, Serialize};

/// Sampling fraction restricted to its valid domain (0, 1]; NaN and other
/// out-of-range values fall back to a full scan (fraction 1.0).
fn sane_fraction(fraction: f64) -> f64 {
    if fraction.is_finite() && fraction > 0.0 {
        fraction.min(1.0)
    } else {
        1.0
    }
}

impl SampleSpec {
    /// Validated row-level sample. Errors on a fraction outside (0, 1] or a
    /// zero row floor — a spec that could draw an *empty* sample from a
    /// non-empty table and build a `rows: 0` histogram that silently
    /// estimates zero for every predicate.
    pub fn fraction(fraction: f64, min_rows: usize) -> Result<Self, StatsError> {
        if !(fraction.is_finite() && fraction > 0.0 && fraction <= 1.0) {
            return Err(StatsError::InvalidSampleSpec {
                detail: format!("fraction {fraction} is outside (0, 1]"),
            });
        }
        if min_rows == 0 {
            return Err(StatsError::InvalidSampleSpec {
                detail: "min_rows must be at least 1".to_string(),
            });
        }
        Ok(SampleSpec::Fraction { fraction, min_rows })
    }

    /// Validated block-level sample; same domain rules as [`Self::fraction`]
    /// plus a non-zero block size.
    pub fn blocks(fraction: f64, block_rows: usize, min_rows: usize) -> Result<Self, StatsError> {
        Self::fraction(fraction, min_rows)?; // same fraction/min_rows domain
        if block_rows == 0 {
            return Err(StatsError::InvalidSampleSpec {
                detail: "block_rows must be at least 1".to_string(),
            });
        }
        Ok(SampleSpec::Blocks {
            fraction,
            block_rows,
            min_rows,
        })
    }

    /// Number of rows this spec reads from a table of `total_rows` rows.
    ///
    /// Degenerate field values in a literal-constructed spec (fraction
    /// outside (0, 1], `min_rows: 0`) are clamped here rather than trusted:
    /// a non-empty table always yields at least one sampled row.
    pub fn rows_read(&self, total_rows: usize) -> usize {
        match *self {
            SampleSpec::FullScan => total_rows,
            SampleSpec::Fraction { fraction, min_rows }
            | SampleSpec::Blocks {
                fraction, min_rows, ..
            } => {
                let n = (total_rows as f64 * sane_fraction(fraction)).ceil() as usize;
                n.max(min_rows.max(1)).min(total_rows)
            }
        }
    }

    /// Pick the sampled row indices of a table with `total_rows` rows.
    /// Deterministic for a given `seed`.
    pub fn pick_rows(&self, total_rows: usize, seed: u64) -> Vec<usize> {
        match *self {
            SampleSpec::FullScan => (0..total_rows).collect(),
            SampleSpec::Fraction { .. } => {
                let n = self.rows_read(total_rows);
                let mut rng = StdRng::seed_from_u64(seed);
                let mut all: Vec<usize> = (0..total_rows).collect();
                all.shuffle(&mut rng);
                all.truncate(n);
                all.sort_unstable();
                all
            }
            SampleSpec::Blocks { block_rows, .. } => {
                let n = self.rows_read(total_rows);
                let block = block_rows.max(1);
                let n_blocks = total_rows.div_ceil(block);
                let mut rng = StdRng::seed_from_u64(seed);
                let mut blocks: Vec<usize> = (0..n_blocks).collect();
                blocks.shuffle(&mut rng);
                let mut rows = Vec::with_capacity(n);
                for b in blocks {
                    if rows.len() >= n {
                        break;
                    }
                    let start = b * block;
                    let end = (start + block).min(total_rows);
                    rows.extend(start..end);
                }
                rows.truncate(n);
                rows.sort_unstable();
                rows
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scan_reads_everything() {
        let s = SampleSpec::FullScan;
        assert_eq!(s.rows_read(100), 100);
        assert_eq!(s.pick_rows(5, 0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn fraction_respects_floor_and_cap() {
        let s = SampleSpec::Fraction {
            fraction: 0.01,
            min_rows: 50,
        };
        assert_eq!(s.rows_read(100), 50); // floor binds
        assert_eq!(s.rows_read(10), 10); // cap at table size
        assert_eq!(s.rows_read(100_000), 1000);
    }

    #[test]
    fn block_sampling_takes_contiguous_runs() {
        let s = SampleSpec::Blocks {
            fraction: 0.2,
            block_rows: 50,
            min_rows: 1,
        };
        let rows = s.pick_rows(1000, 3);
        assert_eq!(rows.len(), 200);
        // All rows group into exactly 4 blocks of 50 consecutive indices.
        let mut blocks: Vec<usize> = rows.iter().map(|r| r / 50).collect();
        blocks.dedup();
        assert_eq!(blocks.len(), 4);
        for chunk in rows.chunks(50) {
            assert!(chunk.windows(2).all(|w| w[1] == w[0] + 1));
        }
    }

    #[test]
    fn block_sampling_deterministic() {
        let s = SampleSpec::Blocks {
            fraction: 0.1,
            block_rows: 16,
            min_rows: 8,
        };
        assert_eq!(s.pick_rows(500, 9), s.pick_rows(500, 9));
        assert_ne!(s.pick_rows(500, 9), s.pick_rows(500, 10));
    }

    #[test]
    fn degenerate_specs_rejected_at_construction() {
        assert!(SampleSpec::fraction(0.0, 10).is_err());
        assert!(SampleSpec::fraction(-0.5, 10).is_err());
        assert!(SampleSpec::fraction(1.5, 10).is_err());
        assert!(SampleSpec::fraction(f64::NAN, 10).is_err());
        assert!(SampleSpec::fraction(0.1, 0).is_err());
        assert!(SampleSpec::blocks(0.1, 0, 10).is_err());
        assert!(SampleSpec::fraction(0.1, 10).is_ok());
        assert!(SampleSpec::blocks(1.0, 64, 1).is_ok());
    }

    #[test]
    fn literal_degenerate_spec_never_draws_empty_sample() {
        // A hand-built spec bypassing the validating constructor is clamped:
        // it can no longer produce the empty sample behind the "rows: 0.0
        // histogram estimates 0 for everything" failure mode.
        let s = SampleSpec::Fraction {
            fraction: 0.0,
            min_rows: 0,
        };
        assert_eq!(s.rows_read(1000), 1000); // zero fraction falls back to full scan
        assert_eq!(s.pick_rows(1000, 7).len(), 1000);
        assert_eq!(s.rows_read(0), 0);

        let tiny = SampleSpec::Fraction {
            fraction: 1e-9,
            min_rows: 0,
        };
        assert_eq!(tiny.rows_read(1000), 1); // min_rows: 0 still yields one row

        let nan = SampleSpec::Fraction {
            fraction: f64::NAN,
            min_rows: 0,
        };
        assert_eq!(nan.rows_read(50), 50); // NaN fraction falls back to full scan

        let b = SampleSpec::Blocks {
            fraction: -1.0,
            block_rows: 0,
            min_rows: 0,
        };
        assert_eq!(b.pick_rows(10, 3).len(), 10);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let s = SampleSpec::Fraction {
            fraction: 0.1,
            min_rows: 1,
        };
        let a = s.pick_rows(1000, 42);
        let b = s.pick_rows(1000, 42);
        let c = s.pick_rows(1000, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 100);
        // sorted unique indices in range
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(*a.last().unwrap() < 1000);
    }
}
