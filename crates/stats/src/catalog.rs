//! The statistics catalog: creation, lookup, ignore-views, the drop-list,
//! aging, and the SQL Server-style auto-maintenance policy.

use crate::cost::CostModel;
use crate::error::StatsError;
use crate::feedback::{build_from_feedback, correct_histogram, FeedbackConfig, FeedbackStore};
use crate::sampler::SampleSpec;
use crate::statistic::{
    build_statistic, BuildOptions, SharedTableScan, StatDescriptor, StatId, Statistic,
};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt;
use std::sync::Weak;
use storage::{Database, TableId};

/// Aging (§6): a statistic that was recently dropped as non-essential should
/// not be immediately re-created when a similar workload repeats — unless
/// the query at hand is expensive enough that a bad plan would hurt.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgingPolicy {
    /// A dropped statistic is dampened for this many catalog epochs.
    pub window_epochs: u64,
    /// Queries whose optimizer-estimated cost exceeds this value override
    /// aging and may re-create the statistic anyway.
    pub expensive_query_cost: f64,
}

impl Default for AgingPolicy {
    fn default() -> Self {
        AgingPolicy {
            window_epochs: 5,
            expensive_query_cost: f64::INFINITY,
        }
    }
}

/// The SQL Server 7.0 maintenance policy (§6): statistics on a table are
/// updated when the table's modification counter exceeds a fraction of its
/// size; a statistic updated more than `max_updates` times is physically
/// dropped. Our modification restricts the physical drop to statistics on
/// the drop-list (`drop_only_droplisted = true`), which is exactly the
/// improvement the paper proposes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaintenancePolicy {
    /// Update statistics when `modification_counter > update_fraction * rows`.
    pub update_fraction: f64,
    /// Minimum modified-row count before an update can trigger.
    pub min_modified_rows: u64,
    /// Physically drop a statistic after this many updates.
    pub max_updates: u32,
    /// If true (the paper's improved policy) only drop-listed statistics are
    /// physically dropped; if false (vanilla SQL Server 7.0) any statistic
    /// hitting `max_updates` is dropped.
    pub drop_only_droplisted: bool,
}

impl Default for MaintenancePolicy {
    fn default() -> Self {
        MaintenancePolicy {
            update_fraction: 0.2,
            min_modified_rows: 500,
            max_updates: 4,
            drop_only_droplisted: true,
        }
    }
}

impl MaintenancePolicy {
    /// Modified-row threshold for a table with `rows` rows — the SQL
    /// Server-style `max(500, 20% of rows)` rule. A statistic is stale when
    /// the modifications since its build are **strictly greater** than this
    /// (exactly the threshold is still fresh).
    pub fn threshold(&self, rows: usize) -> u64 {
        ((rows as f64 * self.update_fraction) as u64).max(self.min_modified_rows)
    }
}

/// What one `maintain` pass did.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MaintenanceReport {
    pub tables_updated: Vec<TableId>,
    pub statistics_updated: usize,
    pub statistics_dropped: usize,
    pub update_work: f64,
}

/// Serializable catalog state (see [`StatsCatalog::snapshot`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatalogSnapshot {
    pub stats: Vec<Statistic>,
    pub drop_list: Vec<StatId>,
    pub next_id: u32,
    pub epoch: u64,
    pub creation_work: f64,
    pub update_work: f64,
    pub build_options: BuildOptions,
}

#[derive(Debug, Clone, Copy)]
struct AgingEntry {
    dropped_epoch: u64,
    build_cost: f64,
}

/// Callback interface for catalog mutations.
///
/// Observers are notified whenever the set of optimizer-visible statistics
/// on a table changes (create, drop-list, reactivate, physical drop) or the
/// content of a table's statistics changes (refresh). The optimizer's
/// `OptimizeCache` registers itself here to evict affected entries.
pub trait CatalogObserver: Send + Sync {
    fn on_table_mutation(&self, table: TableId);
    /// Catalog-wide reset (bulk state replacement).
    fn on_reset(&self) {}
}

/// Cached observability handles. Disabled by default: the tracer no-ops
/// and the counters are detached (never snapshotted). All of it is
/// observation-only — nothing here feeds back into build results, id
/// allocation, or work accounting, so catalogs are bit-identical with
/// observability on or off.
#[derive(Debug, Default)]
struct CatalogObs {
    tracer: obsv::Tracer,
    builds: obsv::Counter,
    shared_builds: obsv::Counter,
    build_work: obsv::FloatCounter,
    feedback_refreshes: obsv::Counter,
    feedback_builds: obsv::Counter,
    feedback_work: obsv::FloatCounter,
}

/// Weakly-held observer registry. Weak references keep the catalog from
/// prolonging observer lifetimes; dead entries are pruned on registration.
#[derive(Default)]
struct ObserverList(Vec<Weak<dyn CatalogObserver>>);

impl fmt::Debug for ObserverList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObserverList({} registered)", self.0.len())
    }
}

impl ObserverList {
    fn notify_table(&self, table: TableId) {
        for obs in &self.0 {
            if let Some(obs) = obs.upgrade() {
                obs.on_table_mutation(table);
            }
        }
    }
}

/// The statistics catalog.
///
/// Statistics are **active** (visible to the optimizer), **drop-listed**
/// (built but hidden — candidates for physical deletion, reactivatable for
/// free, §5), or physically absent. All creation/update work is accumulated
/// in deterministic work units.
#[derive(Debug)]
pub struct StatsCatalog {
    stats: BTreeMap<StatId, Statistic>,
    by_descriptor: FxHashMap<StatDescriptor, StatId>,
    drop_list: BTreeSet<StatId>,
    aging: FxHashMap<StatDescriptor, AgingEntry>,
    next_id: u32,
    epoch: u64,
    creation_work: f64,
    update_work: f64,
    cost_model: CostModel,
    build_options: BuildOptions,
    /// Base seed for per-statistic sampling.
    seed: u64,
    observers: ObserverList,
    obs: CatalogObs,
}

impl Default for StatsCatalog {
    fn default() -> Self {
        Self::new()
    }
}

impl StatsCatalog {
    pub fn new() -> Self {
        StatsCatalog {
            stats: BTreeMap::new(),
            by_descriptor: FxHashMap::default(),
            drop_list: BTreeSet::new(),
            aging: FxHashMap::default(),
            next_id: 0,
            epoch: 0,
            creation_work: 0.0,
            update_work: 0.0,
            cost_model: CostModel::default(),
            build_options: BuildOptions::default(),
            seed: 0x000A_0705_2000, // ICDE 2000
            observers: ObserverList::default(),
            obs: CatalogObs::default(),
        }
    }

    /// Attach an observability context: statistic builds get `stats.build`
    /// spans and feed the `stats.builds` / `stats.shared_scan_builds` /
    /// `stats.build_work` metrics. Not persisted by [`StatsCatalog::snapshot`].
    pub fn set_obs(&mut self, obs: &obsv::Obs) {
        self.obs = CatalogObs {
            tracer: obs.tracer.clone(),
            builds: obs.metrics.counter("stats.builds"),
            shared_builds: obs.metrics.counter("stats.shared_scan_builds"),
            build_work: obs.metrics.float_counter("stats.build_work"),
            feedback_refreshes: obs.metrics.counter("stats.feedback.refreshes"),
            feedback_builds: obs.metrics.counter("stats.feedback.builds"),
            feedback_work: obs.metrics.float_counter("stats.feedback.work"),
        };
    }

    /// Register a mutation observer (weakly held; see [`CatalogObserver`]).
    pub fn register_observer(&mut self, observer: Weak<dyn CatalogObserver>) {
        self.observers.0.retain(|o| o.upgrade().is_some());
        self.observers.0.push(observer);
    }

    pub fn with_build_options(mut self, options: BuildOptions) -> Self {
        self.build_options = options;
        self
    }

    /// Replace the build options on a live catalog. Only statistics built
    /// *after* the change use the new options; existing ones keep the
    /// content they were built with (a refresh rebuilds under the new
    /// options). Fault-injection harnesses use this to degrade the sampler
    /// or bucket budget mid-run.
    pub fn set_build_options(&mut self, options: BuildOptions) {
        self.build_options = options;
    }

    pub fn build_options(&self) -> &BuildOptions {
        &self.build_options
    }

    /// Current catalog epoch (advanced by the policy layer once per workload
    /// pass or tuning round).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn advance_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Total deterministic work spent creating statistics.
    pub fn creation_work(&self) -> f64 {
        self.creation_work
    }

    /// Total deterministic work spent updating (rebuilding) statistics.
    pub fn update_work(&self) -> f64 {
        self.update_work
    }

    /// Number of active (optimizer-visible) statistics.
    pub fn active_count(&self) -> usize {
        self.stats.len() - self.drop_list.len()
    }

    /// Number of built statistics including drop-listed ones.
    pub fn total_count(&self) -> usize {
        self.stats.len()
    }

    /// Create (and build) a statistic, or reactivate/reuse an existing one.
    ///
    /// * If an active statistic with this descriptor exists, its id is
    ///   returned and no work is charged.
    /// * If a drop-listed statistic with this descriptor exists, it is
    ///   reactivated for free (§5: "instead of re-creating the statistic, it
    ///   can simply be removed from the drop-list").
    /// * Otherwise the statistic is built from the table data and charged to
    ///   the creation-work meter.
    ///
    /// Errors (rather than panics) when the descriptor is degenerate: a
    /// stale table id, an empty column list, or a column ordinal the table
    /// does not have.
    pub fn create_statistic(
        &mut self,
        db: &Database,
        descriptor: StatDescriptor,
    ) -> Result<StatId, StatsError> {
        let table = db.try_table(descriptor.table)?;
        if descriptor.columns.is_empty() {
            return Err(StatsError::EmptyColumnSet);
        }
        if let Some(&c) = descriptor
            .columns
            .iter()
            .find(|&&c| c >= table.schema().len())
        {
            return Err(StatsError::UnknownColumn {
                table: table.name().to_string(),
                column: c,
            });
        }
        if let Some(&id) = self.by_descriptor.get(&descriptor) {
            if self.drop_list.remove(&id) {
                self.observers.notify_table(descriptor.table);
            }
            return Ok(id);
        }
        let id = StatId(self.next_id);
        self.next_id += 1;
        let seed = self.seed ^ ((id.0 as u64) << 17) ^ descriptor.table.0 as u64;
        let mut span = self.obs.tracer.span("stats.build");
        span.arg("table", descriptor.table.0 as i64);
        span.arg("columns", descriptor.columns.len());
        span.arg("shared", false);
        let stat = build_statistic(
            id,
            table,
            descriptor.clone(),
            &self.build_options,
            seed,
            self.epoch,
        );
        span.arg("build_work", stat.build_cost);
        drop(span);
        self.obs.builds.inc();
        self.obs.build_work.add(stat.build_cost);
        self.creation_work += stat.build_cost;
        self.observers.notify_table(descriptor.table);
        self.by_descriptor.insert(descriptor, id);
        self.stats.insert(id, stat);
        Ok(id)
    }

    /// Create a batch of statistics on one table with a shared scan.
    ///
    /// Semantically this is exactly `descriptors.iter().map(|d|
    /// self.create_statistic(db, d))` run in order — same validation, same
    /// dedup/reactivation, same id allocation order, same observer
    /// notifications, same per-statistic `build_cost` charged to the
    /// creation-work meter, and (under full-scan sampling) bit-identical
    /// statistic contents. The difference is wall clock: all statistics that
    /// actually need building on `table` are served from one
    /// [`SharedTableScan`], so each column is extracted once and each
    /// histogram / tuple-NDV / joint is computed once per table pass instead
    /// of once per statistic.
    ///
    /// Descriptors on other tables, and every descriptor when the catalog
    /// samples rows (per-statistic sample seeds make sharing unsound), fall
    /// back to the serial path — so the batch call is always safe to use.
    ///
    /// On error the batch stops at the failing descriptor; statistics created
    /// before it remain, exactly as a serial `?`-propagating loop would
    /// leave them.
    pub fn create_statistics_batch(
        &mut self,
        db: &Database,
        table: TableId,
        descriptors: &[StatDescriptor],
    ) -> Result<Vec<StatId>, StatsError> {
        let shareable = self.build_options.sample == SampleSpec::FullScan;
        let mut shared: Option<SharedTableScan<'_>> = None;
        let mut ids = Vec::with_capacity(descriptors.len());
        for descriptor in descriptors {
            if !shareable || descriptor.table != table {
                ids.push(self.create_statistic(db, descriptor.clone())?);
                continue;
            }
            // Mirror `create_statistic`'s checks and bookkeeping exactly.
            let t = db.try_table(descriptor.table)?;
            if descriptor.columns.is_empty() {
                return Err(StatsError::EmptyColumnSet);
            }
            if let Some(&c) = descriptor.columns.iter().find(|&&c| c >= t.schema().len()) {
                return Err(StatsError::UnknownColumn {
                    table: t.name().to_string(),
                    column: c,
                });
            }
            if let Some(&id) = self.by_descriptor.get(descriptor) {
                if self.drop_list.remove(&id) {
                    self.observers.notify_table(descriptor.table);
                }
                ids.push(id);
                continue;
            }
            let id = StatId(self.next_id);
            self.next_id += 1;
            let mut span = self.obs.tracer.span("stats.build");
            span.arg("table", descriptor.table.0 as i64);
            span.arg("columns", descriptor.columns.len());
            span.arg("shared", true);
            let scan = shared.get_or_insert_with(|| SharedTableScan::new(t, &self.build_options));
            let stat = scan.build(id, descriptor.clone(), self.epoch);
            span.arg("build_work", stat.build_cost);
            drop(span);
            self.obs.builds.inc();
            self.obs.shared_builds.inc();
            self.obs.build_work.add(stat.build_cost);
            self.creation_work += stat.build_cost;
            self.observers.notify_table(descriptor.table);
            self.by_descriptor.insert(descriptor.clone(), id);
            self.stats.insert(id, stat);
            ids.push(id);
        }
        Ok(ids)
    }

    /// Look up an **active** statistic by descriptor.
    pub fn find_active(&self, descriptor: &StatDescriptor) -> Option<StatId> {
        self.by_descriptor
            .get(descriptor)
            .copied()
            .filter(|id| !self.drop_list.contains(id))
    }

    /// Look up any built statistic (active or drop-listed) by descriptor.
    pub fn find_built(&self, descriptor: &StatDescriptor) -> Option<StatId> {
        self.by_descriptor.get(descriptor).copied()
    }

    pub fn statistic(&self, id: StatId) -> Option<&Statistic> {
        self.stats.get(&id)
    }

    /// Iterate over active statistics.
    pub fn active(&self) -> impl Iterator<Item = &Statistic> {
        self.stats
            .values()
            .filter(move |s| !self.drop_list.contains(&s.id))
    }

    /// Iterate over active statistics on one table.
    pub fn active_on_table(&self, table: TableId) -> impl Iterator<Item = &Statistic> {
        self.active().filter(move |s| s.descriptor.table == table)
    }

    /// Iterate over **all built** statistics on one table (active and
    /// drop-listed), in id order.
    pub fn built_on_table(&self, table: TableId) -> impl Iterator<Item = &Statistic> {
        self.stats
            .values()
            .filter(move |s| s.descriptor.table == table)
    }

    /// All active statistic ids.
    pub fn active_ids(&self) -> Vec<StatId> {
        self.active().map(|s| s.id).collect()
    }

    /// Move a statistic to the drop-list (mark non-essential, §5). The
    /// statistic stays built but becomes invisible to the optimizer.
    pub fn move_to_drop_list(&mut self, id: StatId) {
        if let Some(stat) = self.stats.get(&id) {
            let table = stat.descriptor.table;
            if self.drop_list.insert(id) {
                self.observers.notify_table(table);
            }
        }
    }

    /// Remove a statistic from the drop-list, making it optimizer-visible
    /// again at zero cost.
    pub fn reactivate(&mut self, id: StatId) {
        if self.drop_list.remove(&id) {
            if let Some(stat) = self.stats.get(&id) {
                self.observers.notify_table(stat.descriptor.table);
            }
        }
    }

    pub fn is_drop_listed(&self, id: StatId) -> bool {
        self.drop_list.contains(&id)
    }

    pub fn drop_list(&self) -> impl Iterator<Item = StatId> + '_ {
        self.drop_list.iter().copied()
    }

    /// Physically delete a statistic and record it in the aging registry.
    pub fn physically_drop(&mut self, id: StatId) -> bool {
        let Some(stat) = self.stats.remove(&id) else {
            return false;
        };
        self.drop_list.remove(&id);
        self.by_descriptor.remove(&stat.descriptor);
        self.observers.notify_table(stat.descriptor.table);
        self.aging.insert(
            stat.descriptor.clone(),
            AgingEntry {
                dropped_epoch: self.epoch,
                build_cost: stat.build_cost,
            },
        );
        true
    }

    /// Aging test (§6): true when re-creating `descriptor` should be
    /// dampened — it was physically dropped within the policy window and the
    /// requesting query's estimated cost does not qualify as "expensive".
    pub fn is_aged_out(
        &self,
        descriptor: &StatDescriptor,
        policy: &AgingPolicy,
        query_cost: f64,
    ) -> bool {
        let Some(entry) = self.aging.get(descriptor) else {
            return false;
        };
        if query_cost >= policy.expensive_query_cost {
            return false;
        }
        self.epoch.saturating_sub(entry.dropped_epoch) < policy.window_epochs
    }

    /// Recorded build cost of an aged (dropped) statistic, if any.
    pub fn aged_build_cost(&self, descriptor: &StatDescriptor) -> Option<f64> {
        self.aging.get(descriptor).map(|e| e.build_cost)
    }

    /// Rebuild the given built statistics on `table`, charging the
    /// update-work meter and bumping per-statistic update counts. Each
    /// rebuilt statistic records the table's *current* modification counter
    /// as its new staleness baseline (`mods_at_build`); the shared table
    /// counter itself is left untouched, so other statistics on the table
    /// keep aging independently.
    ///
    /// Ids that are not built statistics on `table` are silently skipped.
    /// Under full-scan build options a batch of two or more rebuilds shares
    /// one table scan ([`SharedTableScan`], bit-identical to the serial
    /// path); sampled builds fall back to per-statistic seeded builds.
    ///
    /// Returns `(id, work)` per refreshed statistic, in the order given.
    pub fn refresh_statistics(
        &mut self,
        db: &Database,
        table: TableId,
        ids: &[StatId],
    ) -> Vec<(StatId, f64)> {
        let Ok(t) = db.try_table(table) else {
            return Vec::new(); // stale table id (e.g. restored snapshot)
        };
        let targets: Vec<StatId> = ids
            .iter()
            .copied()
            .filter(|id| {
                self.stats
                    .get(id)
                    .is_some_and(|s| s.descriptor.table == table)
            })
            .collect();
        if targets.is_empty() {
            return Vec::new();
        }
        let mut span = self.obs.tracer.span("stats.refresh");
        span.arg("table", table.0 as u64);
        span.arg("count", targets.len());
        let mut scan = (self.build_options.sample == SampleSpec::FullScan && targets.len() > 1)
            .then(|| SharedTableScan::new(t, &self.build_options));
        let mut refreshed = Vec::with_capacity(targets.len());
        for id in targets {
            let Some((descriptor, update_count, created_epoch)) = self
                .stats
                .get(&id)
                .map(|s| (s.descriptor.clone(), s.update_count, s.created_epoch))
            else {
                continue;
            };
            let mut rebuilt = match &mut scan {
                Some(scan) => scan.build(id, descriptor, created_epoch),
                None => {
                    let seed = self.seed
                        ^ ((id.0 as u64) << 17)
                        ^ table.0 as u64
                        ^ (update_count as u64 + 1);
                    build_statistic(id, t, descriptor, &self.build_options, seed, created_epoch)
                }
            };
            rebuilt.update_count = update_count + 1;
            self.update_work += rebuilt.build_cost;
            refreshed.push((id, rebuilt.build_cost));
            self.stats.insert(id, rebuilt);
        }
        self.observers.notify_table(table);
        refreshed
    }

    /// True when `id` is a built statistic that could be refreshed from
    /// feedback instead of a scan: single-column, numeric histogram with at
    /// least one bucket, and `store` holds at least
    /// `config.min_observations` observations for its (table, column).
    pub fn feedback_refreshable(
        &self,
        id: StatId,
        store: &FeedbackStore,
        config: &FeedbackConfig,
    ) -> bool {
        let Some(s) = self.stats.get(&id) else {
            return false;
        };
        !s.descriptor.is_multi_column()
            && crate::feedback::correctable(&s.histogram)
            && store.count(
                s.descriptor.table.0 as u64,
                s.descriptor.leading_column() as u32,
            ) >= config.min_observations
    }

    /// Feedback-correct the given built statistics on `table` in place —
    /// the STGrid-style cheap refresh path. Instead of re-scanning the
    /// table, each statistic's histogram is corrected from the observed
    /// cardinalities accumulated in `store` (which are consumed). The
    /// corrected statistic records the table's current modification counter
    /// as its new staleness baseline, exactly like a scan refresh, but the
    /// work charged to the update meter is the tiny correction work (bucket
    /// touches), not a table scan.
    ///
    /// Ids that are not feedback-refreshable (see
    /// [`StatsCatalog::feedback_refreshable`]) or whose observations fail to
    /// apply are silently skipped — callers fall back to
    /// [`StatsCatalog::refresh_statistics`] for those.
    ///
    /// Returns `(id, work)` per corrected statistic, in the order given.
    pub fn feedback_refresh(
        &mut self,
        db: &Database,
        table: TableId,
        ids: &[StatId],
        store: &mut FeedbackStore,
        config: &FeedbackConfig,
    ) -> Vec<(StatId, f64)> {
        let Ok(t) = db.try_table(table) else {
            return Vec::new();
        };
        let mut refreshed = Vec::new();
        for &id in ids {
            if !self.feedback_refreshable(id, store, config) {
                continue;
            }
            let Some(s) = self.stats.get(&id) else {
                continue;
            };
            if s.descriptor.table != table {
                continue;
            }
            let column = s.descriptor.leading_column() as u32;
            let observations = store.take(table.0 as u64, column);
            let Some(s) = self.stats.get_mut(&id) else {
                continue;
            };
            let mut span = self.obs.tracer.span("stats.feedback_refresh");
            span.arg("table", table.0 as u64);
            span.arg("stat", id.0 as u64);
            span.arg("observations", observations.len());
            let outcome = correct_histogram(&mut s.histogram, &observations, config);
            span.arg("applied", outcome.applied);
            span.arg("work", outcome.work);
            drop(span);
            if outcome.applied == 0 {
                continue;
            }
            s.update_count += 1;
            s.mods_at_build = t.modification_counter();
            s.row_count_at_build = t.row_count();
            self.update_work += outcome.work;
            self.obs.feedback_refreshes.inc();
            self.obs.feedback_work.add(outcome.work);
            refreshed.push((id, outcome.work));
        }
        if !refreshed.is_empty() {
            self.observers.notify_table(table);
        }
        refreshed
    }

    /// Create a single-column statistic synthesized purely from feedback
    /// observations — no table scan at all. Used when `FindNextStatToBuild`
    /// selects a candidate whose (table, column) already has enough observed
    /// cardinalities: the build cost is the correction work, which is orders
    /// of magnitude below a scan build.
    ///
    /// Returns `Ok(None)` when the store lacks `config.min_observations`
    /// observations for the column or no usable histogram can be seeded from
    /// them (the caller should fall back to a scan build). Like
    /// [`StatsCatalog::create_statistic`], an existing statistic with this
    /// descriptor is reused/reactivated for free.
    pub fn create_statistic_from_feedback(
        &mut self,
        db: &Database,
        descriptor: StatDescriptor,
        store: &mut FeedbackStore,
        config: &FeedbackConfig,
    ) -> Result<Option<StatId>, StatsError> {
        let table = db.try_table(descriptor.table)?;
        if descriptor.columns.is_empty() {
            return Err(StatsError::EmptyColumnSet);
        }
        if let Some(&c) = descriptor
            .columns
            .iter()
            .find(|&&c| c >= table.schema().len())
        {
            return Err(StatsError::UnknownColumn {
                table: table.name().to_string(),
                column: c,
            });
        }
        if let Some(&id) = self.by_descriptor.get(&descriptor) {
            if self.drop_list.remove(&id) {
                self.observers.notify_table(descriptor.table);
            }
            return Ok(Some(id));
        }
        if descriptor.is_multi_column() {
            return Ok(None); // density prefixes need a real scan
        }
        let column = descriptor.leading_column() as u32;
        if store.count(descriptor.table.0 as u64, column) < config.min_observations {
            return Ok(None);
        }
        let observations = store.take(descriptor.table.0 as u64, column);
        let Some((histogram, outcome)) = build_from_feedback(&observations, config) else {
            return Ok(None);
        };
        let id = StatId(self.next_id);
        self.next_id += 1;
        let ndv = histogram.ndv();
        let stat = Statistic {
            id,
            descriptor: descriptor.clone(),
            histogram,
            prefix_densities: vec![if ndv > 0.0 { 1.0 / ndv } else { 0.0 }],
            null_fraction: 0.0,
            row_count_at_build: table.row_count(),
            build_cost: outcome.work,
            update_count: 0,
            mods_at_build: table.modification_counter(),
            created_epoch: self.epoch,
            joint: None,
        };
        let mut span = self.obs.tracer.span("stats.feedback_build");
        span.arg("table", descriptor.table.0 as i64);
        span.arg("observations", observations.len());
        span.arg("build_work", stat.build_cost);
        drop(span);
        self.obs.feedback_builds.inc();
        self.obs.feedback_work.add(stat.build_cost);
        self.creation_work += stat.build_cost;
        self.observers.notify_table(descriptor.table);
        self.by_descriptor.insert(descriptor, id);
        self.stats.insert(id, stat);
        Ok(Some(id))
    }

    /// Rebuild every built statistic on `table` (active and drop-listed).
    /// Returns the number of statistics updated. See
    /// [`StatsCatalog::refresh_statistics`] for the staleness-baseline
    /// semantics.
    pub fn update_table_statistics(&mut self, db: &Database, table: TableId) -> usize {
        let ids: Vec<StatId> = self
            .stats
            .values()
            .filter(|s| s.descriptor.table == table)
            .map(|s| s.id)
            .collect();
        self.refresh_statistics(db, table, &ids).len()
    }

    /// Built statistics (active and drop-listed) that are stale under
    /// `policy`: more table modifications since their build than
    /// `max(min_modified_rows, update_fraction × rows)`, strictly greater.
    /// Returned in id order so scans are deterministic.
    pub fn stale_statistics(&self, db: &Database, policy: &MaintenancePolicy) -> Vec<StatId> {
        self.stats
            .values()
            .filter(|s| {
                let Ok(t) = db.try_table(s.descriptor.table) else {
                    return false;
                };
                t.modification_counter().saturating_sub(s.mods_at_build)
                    > policy.threshold(t.row_count())
            })
            .map(|s| s.id)
            .collect()
    }

    /// One pass of the auto-maintenance policy (§6) over every table.
    pub fn maintain(&mut self, db: &Database, policy: &MaintenancePolicy) -> MaintenanceReport {
        let mut report = MaintenanceReport::default();
        let before_update_work = self.update_work;
        let stale = self.stale_statistics(db, policy);
        let mut by_table: BTreeMap<TableId, Vec<StatId>> = BTreeMap::new();
        for id in stale {
            if let Some(s) = self.stats.get(&id) {
                by_table.entry(s.descriptor.table).or_default().push(id);
            }
        }
        for (table, ids) in by_table {
            report.statistics_updated += self.refresh_statistics(db, table, &ids).len();
            report.tables_updated.push(table);
        }
        // Physical drop of over-updated statistics.
        let to_drop: Vec<StatId> = self
            .stats
            .values()
            .filter(|s| s.update_count > policy.max_updates)
            .filter(|s| !policy.drop_only_droplisted || self.drop_list.contains(&s.id))
            .map(|s| s.id)
            .collect();
        for id in to_drop {
            if self.physically_drop(id) {
                report.statistics_dropped += 1;
            }
        }
        report.update_work = self.update_work - before_update_work;
        report
    }

    /// Sum of the *current* rebuild cost of the given statistics — the
    /// "cost of updating the set of statistics left behind" metric of §8.2
    /// (Table 1).
    pub fn update_cost_of(&self, db: &Database, ids: impl IntoIterator<Item = StatId>) -> f64 {
        let mut total = 0.0;
        for id in ids {
            if let Some(s) = self.stats.get(&id) {
                let Ok(table) = db.try_table(s.descriptor.table) else {
                    continue; // stale table id: no rebuild cost to charge
                };
                let rows_read = self.build_options.sample.rows_read(table.row_count());
                let col_bytes: usize = s
                    .descriptor
                    .columns
                    .iter()
                    .map(|&c| table.schema().column(c).data_type.byte_width())
                    .sum();
                total +=
                    self.cost_model
                        .build_cost(rows_read, col_bytes, s.descriptor.columns.len());
            }
        }
        total
    }

    /// Serializable snapshot of the catalog (statistics, drop-list, epoch,
    /// work meters). Lets a deployment persist tuned statistics across
    /// restarts instead of re-learning the workload from scratch.
    pub fn snapshot(&self) -> CatalogSnapshot {
        CatalogSnapshot {
            stats: self.stats.values().cloned().collect(),
            drop_list: self.drop_list.iter().copied().collect(),
            next_id: self.next_id,
            epoch: self.epoch,
            creation_work: self.creation_work,
            update_work: self.update_work,
            build_options: self.build_options.clone(),
        }
    }

    /// Rebuild a catalog from a snapshot. The aging registry is not
    /// persisted (it dampens only the recent past).
    pub fn restore(snapshot: CatalogSnapshot) -> StatsCatalog {
        let mut cat = StatsCatalog::new().with_build_options(snapshot.build_options);
        for stat in snapshot.stats {
            cat.by_descriptor.insert(stat.descriptor.clone(), stat.id);
            cat.stats.insert(stat.id, stat);
        }
        cat.drop_list = snapshot.drop_list.into_iter().collect();
        cat.next_id = snapshot.next_id;
        cat.epoch = snapshot.epoch;
        cat.creation_work = snapshot.creation_work;
        cat.update_work = snapshot.update_work;
        cat
    }

    /// A read view with an ignore set — the `Ignore_Statistics_Subset`
    /// server extension of §7.2.
    pub fn view<'a>(&'a self, ignore: &'a HashSet<StatId>) -> StatsView<'a> {
        StatsView {
            catalog: self,
            ignore,
        }
    }

    /// A view that ignores nothing.
    pub fn full_view(&self) -> StatsView<'_> {
        static EMPTY: std::sync::OnceLock<HashSet<StatId>> = std::sync::OnceLock::new();
        StatsView {
            catalog: self,
            ignore: EMPTY.get_or_init(HashSet::new),
        }
    }
}

/// Read-only view of the catalog with a subset of statistics hidden — the
/// optimizer-side embodiment of `Ignore_Statistics_Subset(db_id,
/// stat_id_list)` from §7.2 of the paper.
#[derive(Clone, Copy)]
pub struct StatsView<'a> {
    catalog: &'a StatsCatalog,
    ignore: &'a HashSet<StatId>,
}

impl<'a> StatsView<'a> {
    fn visible(&self, s: &Statistic) -> bool {
        !self.ignore.contains(&s.id) && !self.catalog.is_drop_listed(s.id)
    }

    /// Best statistic whose histogram can answer a predicate on
    /// `(table, column)`: an exact single-column statistic wins, otherwise a
    /// multi-column statistic with this leading column (its histogram is on
    /// the leading column, per the SQL Server asymmetry).
    pub fn histogram_for(&self, table: TableId, column: usize) -> Option<&'a Statistic> {
        let mut fallback = None;
        for s in self.catalog.active_on_table(table) {
            if !self.visible(s) || s.descriptor.leading_column() != column {
                continue;
            }
            if !s.descriptor.is_multi_column() {
                return Some(s);
            }
            fallback.get_or_insert(s);
        }
        fallback
    }

    /// Statistic providing a prefix density for an (unordered) equality
    /// column set; prefers the tightest statistic (fewest total columns).
    pub fn density_for_set(&self, table: TableId, set: &[usize]) -> Option<(&'a Statistic, f64)> {
        let mut best: Option<&Statistic> = None;
        for s in self.catalog.active_on_table(table) {
            if self.visible(s) && s.descriptor.prefix_covers_set(set) {
                match best {
                    Some(b) if b.descriptor.columns.len() <= s.descriptor.columns.len() => {}
                    _ => best = Some(s),
                }
            }
        }
        // `.get` tolerates hand-built statistics (snapshot injection) whose
        // density list is shorter than the descriptor claims.
        best.and_then(|s| s.prefix_densities.get(set.len() - 1).map(|&d| (s, d)))
    }

    /// NDV of a single column, from the best visible statistic.
    pub fn ndv_for(&self, table: TableId, column: usize) -> Option<f64> {
        self.histogram_for(table, column)
            .map(|s| s.leading_ndv())
            .or_else(|| {
                self.density_for_set(table, &[column])
                    .map(|(_, d)| if d > 0.0 { 1.0 / d } else { 0.0 })
            })
    }

    pub fn statistic(&self, id: StatId) -> Option<&'a Statistic> {
        self.catalog.statistic(id).filter(|s| self.visible(s))
    }

    /// A visible multi-column statistic carrying a Phased 2-D histogram over
    /// exactly the unordered column pair `(a, b)`. The returned flag is true
    /// when `(a, b)` is flipped relative to the statistic's column order.
    pub fn joint_for(&self, table: TableId, a: usize, b: usize) -> Option<(&'a Statistic, bool)> {
        for s in self.catalog.active_on_table(table) {
            if !self.visible(s) || s.joint.is_none() || s.descriptor.columns.len() < 2 {
                continue;
            }
            let c0 = s.descriptor.columns[0];
            let c1 = s.descriptor.columns[1];
            if c0 == a && c1 == b {
                return Some((s, false));
            }
            if c0 == b && c1 == a {
                return Some((s, true));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::{ColumnDef, DataType, Schema, Value};

    fn test_db() -> (Database, TableId) {
        let mut db = Database::new();
        let id = db
            .create_table(
                "t",
                Schema::new(vec![
                    ColumnDef::new("a", DataType::Int),
                    ColumnDef::new("b", DataType::Int),
                ]),
            )
            .unwrap();
        for i in 0..2000i64 {
            db.table_mut(id)
                .insert(vec![Value::Int(i % 50), Value::Int(i % 8)])
                .unwrap();
        }
        (db, id)
    }

    #[test]
    fn create_is_idempotent_and_charges_once() {
        let (db, t) = test_db();
        let mut cat = StatsCatalog::new();
        let s1 = cat
            .create_statistic(&db, StatDescriptor::single(t, 0))
            .unwrap();
        let work = cat.creation_work();
        assert!(work > 0.0);
        let s2 = cat
            .create_statistic(&db, StatDescriptor::single(t, 0))
            .unwrap();
        assert_eq!(s1, s2);
        assert_eq!(cat.creation_work(), work);
    }

    #[test]
    fn batch_create_matches_serial_exactly() {
        let (db, t) = test_db();
        let descs = vec![
            StatDescriptor::single(t, 0),
            StatDescriptor::multi(t, vec![0, 1]),
            StatDescriptor::single(t, 1),
            StatDescriptor::single(t, 0), // duplicate: dedup inside the batch
        ];

        let mut serial = StatsCatalog::new();
        let serial_ids: Vec<StatId> = descs
            .iter()
            .map(|d| serial.create_statistic(&db, d.clone()).unwrap())
            .collect();

        let mut batched = StatsCatalog::new();
        let batch_ids = batched.create_statistics_batch(&db, t, &descs).unwrap();

        assert_eq!(batch_ids, serial_ids);
        assert_eq!(batched.snapshot(), serial.snapshot());
        assert_eq!(
            batched.creation_work().to_bits(),
            serial.creation_work().to_bits()
        );
    }

    #[test]
    fn batch_create_with_joint_histograms_matches_serial() {
        let (db, t) = test_db();
        let descs = vec![
            StatDescriptor::multi(t, vec![0, 1]),
            StatDescriptor::multi(t, vec![1, 0]),
        ];
        let mut serial = StatsCatalog::new();
        serial.set_build_options(BuildOptions::default().with_joint_histograms());
        for d in &descs {
            serial.create_statistic(&db, d.clone()).unwrap();
        }
        let mut batched = StatsCatalog::new();
        batched.set_build_options(BuildOptions::default().with_joint_histograms());
        batched.create_statistics_batch(&db, t, &descs).unwrap();
        assert_eq!(batched.snapshot(), serial.snapshot());
    }

    #[test]
    fn batch_create_reactivates_droplisted_for_free() {
        let (db, t) = test_db();
        let mut cat = StatsCatalog::new();
        let id = cat
            .create_statistic(&db, StatDescriptor::single(t, 0))
            .unwrap();
        cat.move_to_drop_list(id);
        let work = cat.creation_work();
        let ids = cat
            .create_statistics_batch(&db, t, &[StatDescriptor::single(t, 0)])
            .unwrap();
        assert_eq!(ids, vec![id]);
        assert_eq!(cat.creation_work(), work, "reactivation must be free");
        assert_eq!(cat.active_count(), 1);
    }

    #[test]
    fn batch_create_falls_back_under_sampling() {
        let (db, t) = test_db();
        let sampled = BuildOptions {
            sample: crate::sampler::SampleSpec::Fraction {
                fraction: 0.2,
                min_rows: 10,
            },
            ..Default::default()
        };
        let mut serial = StatsCatalog::new();
        serial.set_build_options(sampled.clone());
        serial
            .create_statistic(&db, StatDescriptor::single(t, 0))
            .unwrap();
        let mut batched = StatsCatalog::new();
        batched.set_build_options(sampled);
        batched
            .create_statistics_batch(&db, t, &[StatDescriptor::single(t, 0)])
            .unwrap();
        assert_eq!(
            batched.snapshot(),
            serial.snapshot(),
            "sampled builds must take the per-statistic seeded path"
        );
    }

    #[test]
    fn batch_create_rejects_bad_descriptors_like_serial() {
        let (db, t) = test_db();
        let mut cat = StatsCatalog::new();
        let err = cat
            .create_statistics_batch(
                &db,
                t,
                &[StatDescriptor::single(t, 0), StatDescriptor::single(t, 99)],
            )
            .unwrap_err();
        assert!(matches!(err, StatsError::UnknownColumn { .. }));
        // The statistic created before the failing descriptor remains, as in
        // a serial ?-propagating loop.
        assert_eq!(cat.active_count(), 1);
    }

    #[test]
    fn obs_records_builds_without_changing_outcomes() {
        let (db, t) = test_db();
        let descs = vec![
            StatDescriptor::single(t, 0),
            StatDescriptor::multi(t, vec![0, 1]),
        ];
        let mut plain = StatsCatalog::new();
        for d in &descs {
            plain.create_statistic(&db, d.clone()).unwrap();
        }
        let obs = obsv::Obs::enabled();
        let mut observed = StatsCatalog::new();
        observed.set_obs(&obs);
        observed.create_statistics_batch(&db, t, &descs).unwrap();
        // Observation never changes the catalog.
        assert_eq!(observed.snapshot(), plain.snapshot());
        // Metrics mirror the work meter bit-for-bit.
        assert_eq!(obs.metrics.counter("stats.builds").get(), 2,);
        assert_eq!(obs.metrics.counter("stats.shared_scan_builds").get(), 2);
        assert_eq!(
            obs.metrics
                .float_counter("stats.build_work")
                .get()
                .to_bits(),
            observed.creation_work().to_bits()
        );
        // Spans are well-formed and flagged as shared-scan builds.
        let events = obs.tracer.flush();
        assert!(obsv::trace::validate(&events).is_empty());
        assert_eq!(
            events
                .iter()
                .filter(|e| e.kind == obsv::EventKind::Begin && e.name == "stats.build")
                .count(),
            2
        );
        assert!(events.iter().any(|e| e
            .args
            .iter()
            .any(|(k, v)| *k == "shared" && *v == obsv::ArgValue::Bool(true))));
    }

    #[test]
    fn drop_list_hides_and_reactivates_free() {
        let (db, t) = test_db();
        let mut cat = StatsCatalog::new();
        let id = cat
            .create_statistic(&db, StatDescriptor::single(t, 0))
            .unwrap();
        cat.move_to_drop_list(id);
        assert_eq!(cat.active_count(), 0);
        assert!(cat.find_active(&StatDescriptor::single(t, 0)).is_none());
        assert!(cat.find_built(&StatDescriptor::single(t, 0)).is_some());
        let work = cat.creation_work();
        let again = cat
            .create_statistic(&db, StatDescriptor::single(t, 0))
            .unwrap();
        assert_eq!(again, id);
        assert_eq!(cat.creation_work(), work, "reactivation must be free");
        assert_eq!(cat.active_count(), 1);
    }

    #[test]
    fn physical_drop_registers_aging() {
        let (db, t) = test_db();
        let mut cat = StatsCatalog::new();
        let id = cat
            .create_statistic(&db, StatDescriptor::single(t, 0))
            .unwrap();
        let desc = StatDescriptor::single(t, 0);
        assert!(cat.physically_drop(id));
        assert!(!cat.physically_drop(id));
        let policy = AgingPolicy {
            window_epochs: 3,
            expensive_query_cost: 1000.0,
        };
        assert!(cat.is_aged_out(&desc, &policy, 10.0));
        assert!(
            !cat.is_aged_out(&desc, &policy, 5000.0),
            "expensive query overrides aging"
        );
        cat.advance_epoch();
        cat.advance_epoch();
        cat.advance_epoch();
        assert!(!cat.is_aged_out(&desc, &policy, 10.0), "window expired");
        assert!(cat.aged_build_cost(&desc).is_some());
    }

    #[test]
    fn ignore_view_hides_statistics() {
        let (db, t) = test_db();
        let mut cat = StatsCatalog::new();
        let id = cat
            .create_statistic(&db, StatDescriptor::single(t, 0))
            .unwrap();
        assert!(cat.full_view().histogram_for(t, 0).is_some());
        let ignore: HashSet<StatId> = [id].into_iter().collect();
        assert!(cat.view(&ignore).histogram_for(t, 0).is_none());
    }

    #[test]
    fn histogram_prefers_exact_single_column() {
        let (db, t) = test_db();
        let mut cat = StatsCatalog::new();
        let multi = cat
            .create_statistic(&db, StatDescriptor::multi(t, vec![0, 1]))
            .unwrap();
        let single = cat
            .create_statistic(&db, StatDescriptor::single(t, 0))
            .unwrap();
        let view = cat.full_view();
        assert_eq!(view.histogram_for(t, 0).unwrap().id, single);
        // For leading column of only the multi stat, fallback applies.
        let ignore: HashSet<StatId> = [single].into_iter().collect();
        assert_eq!(cat.view(&ignore).histogram_for(t, 0).unwrap().id, multi);
        // Column 1 is not the leading column of any stat: no histogram.
        assert!(view.histogram_for(t, 1).is_none());
    }

    #[test]
    fn density_for_set_prefers_tightest() {
        let (db, t) = test_db();
        let mut cat = StatsCatalog::new();
        cat.create_statistic(&db, StatDescriptor::multi(t, vec![0, 1]))
            .unwrap();
        let pair = cat.full_view().density_for_set(t, &[1, 0]).unwrap();
        // (a, b) over i%50, i%8 has lcm(50,8)=200 combos in 2000 rows.
        assert!((pair.1 - 1.0 / 200.0).abs() < 1e-9);
        assert!(cat.full_view().density_for_set(t, &[1]).is_none());
    }

    #[test]
    fn maintenance_updates_and_drops() {
        let (mut db, t) = test_db();
        let mut cat = StatsCatalog::new();
        let id = cat
            .create_statistic(&db, StatDescriptor::single(t, 0))
            .unwrap();
        // Simulate heavy modification.
        let policy = MaintenancePolicy {
            update_fraction: 0.1,
            min_modified_rows: 10,
            max_updates: 1,
            drop_only_droplisted: true,
        };
        for i in 0..500 {
            db.table_mut(t)
                .insert(vec![Value::Int(i), Value::Int(i)])
                .unwrap();
        }
        let r1 = cat.maintain(&db, &policy);
        assert_eq!(r1.statistics_updated, 1);
        assert!(r1.update_work > 0.0);
        assert_eq!(r1.statistics_dropped, 0);
        // The shared table counter is no longer reset; the refreshed
        // statistic instead records it as its new staleness baseline.
        let counter = db.table(t).modification_counter();
        assert!(counter > 0);
        assert_eq!(cat.statistic(id).unwrap().mods_at_build, counter);
        assert!(cat.stale_statistics(&db, &policy).is_empty());

        // Second heavy modification round: update_count exceeds max_updates,
        // but the stat is not drop-listed, so the improved policy keeps it.
        for i in 0..500 {
            db.table_mut(t)
                .insert(vec![Value::Int(i), Value::Int(i)])
                .unwrap();
        }
        let r2 = cat.maintain(&db, &policy);
        assert_eq!(r2.statistics_dropped, 0);

        // Drop-list it; the next maintenance pass may drop it physically.
        cat.move_to_drop_list(id);
        let r3 = cat.maintain(&db, &policy);
        assert_eq!(r3.statistics_dropped, 1);
        assert_eq!(cat.total_count(), 0);
    }

    #[test]
    fn statistics_on_one_table_age_independently() {
        let (mut db, t) = test_db();
        let mut cat = StatsCatalog::new();
        let policy = MaintenancePolicy {
            update_fraction: 0.1,
            min_modified_rows: 10,
            max_updates: 10,
            drop_only_droplisted: true,
        };
        let s1 = cat
            .create_statistic(&db, StatDescriptor::single(t, 0))
            .unwrap();
        // DML between the two builds: only s1 sees it as aging.
        for i in 0..500 {
            db.table_mut(t)
                .insert(vec![Value::Int(i), Value::Int(i)])
                .unwrap();
        }
        let s2 = cat
            .create_statistic(&db, StatDescriptor::single(t, 1))
            .unwrap();
        assert_eq!(cat.stale_statistics(&db, &policy), vec![s1]);
        let r = cat.maintain(&db, &policy);
        assert_eq!(r.statistics_updated, 1);
        assert_eq!(cat.statistic(s1).unwrap().update_count, 1);
        assert_eq!(cat.statistic(s2).unwrap().update_count, 0);
    }

    #[test]
    fn vanilla_policy_drops_useful_statistics() {
        let (mut db, t) = test_db();
        let mut cat = StatsCatalog::new();
        cat.create_statistic(&db, StatDescriptor::single(t, 0))
            .unwrap();
        let policy = MaintenancePolicy {
            update_fraction: 0.01,
            min_modified_rows: 1,
            max_updates: 0,
            drop_only_droplisted: false,
        };
        for i in 0..500 {
            db.table_mut(t)
                .insert(vec![Value::Int(i), Value::Int(i)])
                .unwrap();
        }
        let r = cat.maintain(&db, &policy);
        assert_eq!(
            r.statistics_dropped, 1,
            "vanilla policy drops regardless of usefulness"
        );
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let (db, t) = test_db();
        let mut cat = StatsCatalog::new();
        let a = cat
            .create_statistic(&db, StatDescriptor::single(t, 0))
            .unwrap();
        let b = cat
            .create_statistic(&db, StatDescriptor::multi(t, vec![0, 1]))
            .unwrap();
        cat.move_to_drop_list(b);
        cat.advance_epoch();

        let snap = cat.snapshot();
        let restored = StatsCatalog::restore(snap);
        assert_eq!(restored.active_count(), 1);
        assert_eq!(restored.total_count(), 2);
        assert!(restored.is_drop_listed(b));
        assert_eq!(restored.epoch(), 1);
        assert_eq!(restored.creation_work(), cat.creation_work());
        // Lookups and histograms survive.
        assert_eq!(restored.find_active(&StatDescriptor::single(t, 0)), Some(a));
        let s = restored.statistic(a).unwrap();
        assert_eq!(s.leading_ndv(), 50.0);
        // New statistics continue from the persisted id counter.
        let mut restored = restored;
        let c = restored
            .create_statistic(&db, StatDescriptor::single(t, 1))
            .unwrap();
        assert!(c.0 >= 2);
    }

    fn feedback_records(t: TableId, column: u32, n: usize) -> Vec<obsv::FeedbackRecord> {
        (0..n)
            .map(|i| obsv::FeedbackRecord {
                fingerprint: obsv::template_fingerprint(t.0 as u64, column, 2),
                table: t.0 as u64,
                column,
                lo: 0.0,
                hi: 10.0 + (i % 3) as f64,
                est_rows: 400.0,
                rows_out: 440.0,
                input_rows: 2000.0,
            })
            .collect()
    }

    #[test]
    fn feedback_refresh_corrects_in_place_and_resets_staleness() {
        let (mut db, t) = test_db();
        let mut cat = StatsCatalog::new();
        let id = cat
            .create_statistic(&db, StatDescriptor::single(t, 0))
            .unwrap();
        // Age the statistic with DML so it shows up stale.
        for i in 0..600 {
            db.table_mut(t)
                .insert(vec![Value::Int(i % 50), Value::Int(i)])
                .unwrap();
        }
        let policy = MaintenancePolicy::default();
        assert_eq!(cat.stale_statistics(&db, &policy), vec![id]);

        let mut store = FeedbackStore::new();
        store.ingest(&feedback_records(t, 0, 6));
        let config = FeedbackConfig::default();
        assert!(cat.feedback_refreshable(id, &store, &config));
        let scan_cost = cat.update_cost_of(&db, [id]);
        let refreshed = cat.feedback_refresh(&db, t, &[id], &mut store, &config);
        assert_eq!(refreshed.len(), 1);
        let (rid, work) = refreshed[0];
        assert_eq!(rid, id);
        assert!(
            work > 0.0 && work < scan_cost / 100.0,
            "feedback work {work} must be far below scan cost {scan_cost}"
        );
        // Observations are consumed; staleness baseline reset like a rebuild.
        assert_eq!(store.total(), 0);
        let s = cat.statistic(id).unwrap();
        assert_eq!(s.update_count, 1);
        assert_eq!(s.mods_at_build, db.table(t).modification_counter());
        assert!(cat.stale_statistics(&db, &policy).is_empty());
        assert_eq!(cat.update_work(), work);
    }

    #[test]
    fn feedback_refresh_skips_ineligible_statistics() {
        let (db, t) = test_db();
        let mut cat = StatsCatalog::new();
        let multi = cat
            .create_statistic(&db, StatDescriptor::multi(t, vec![0, 1]))
            .unwrap();
        let mut store = FeedbackStore::new();
        store.ingest(&feedback_records(t, 0, 6));
        let config = FeedbackConfig::default();
        // Multi-column statistics need scans (prefix densities).
        assert!(!cat.feedback_refreshable(multi, &store, &config));
        assert!(cat
            .feedback_refresh(&db, t, &[multi], &mut store, &config)
            .is_empty());
        // Too few observations.
        let single = cat
            .create_statistic(&db, StatDescriptor::single(t, 1))
            .unwrap();
        let mut sparse = FeedbackStore::new();
        sparse.ingest(&feedback_records(t, 1, 2));
        assert!(!cat.feedback_refreshable(single, &sparse, &config));
        assert_eq!(cat.update_work(), 0.0);
    }

    #[test]
    fn create_statistic_from_feedback_is_near_free_and_idempotent() {
        let (db, t) = test_db();
        let mut cat = StatsCatalog::new();
        let mut store = FeedbackStore::new();
        store.ingest(&feedback_records(t, 1, 8));
        let config = FeedbackConfig::default();
        let desc = StatDescriptor::single(t, 1);

        let id = cat
            .create_statistic_from_feedback(&db, desc.clone(), &mut store, &config)
            .unwrap()
            .expect("enough observations to synthesize");
        let s = cat.statistic(id).unwrap();
        assert!(s.build_cost > 0.0);
        assert!(s.build_cost < cat.update_cost_of(&db, [id]) / 100.0);
        assert!(s.histogram.selectivity_lt(&Value::Int(11)) > 0.0);
        assert_eq!(cat.find_active(&desc), Some(id));
        // Observations were consumed; a second call reuses the built stat.
        let again = cat
            .create_statistic_from_feedback(&db, desc, &mut store, &config)
            .unwrap();
        assert_eq!(again, Some(id));
        // Insufficient observations: decline rather than build garbage.
        let none = cat
            .create_statistic_from_feedback(&db, StatDescriptor::single(t, 0), &mut store, &config)
            .unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn update_cost_of_reflects_table_growth() {
        let (mut db, t) = test_db();
        let mut cat = StatsCatalog::new();
        let id = cat
            .create_statistic(&db, StatDescriptor::single(t, 0))
            .unwrap();
        let before = cat.update_cost_of(&db, [id]);
        for i in 0..2000 {
            db.table_mut(t)
                .insert(vec![Value::Int(i), Value::Int(i)])
                .unwrap();
        }
        let after = cat.update_cost_of(&db, [id]);
        assert!(after > before * 1.5);
    }
}
