//! Two-dimensional histograms over the joint distribution of a column pair.
//!
//! §3 of the paper: "Multi-dimensional histogram structures can be
//! constructed using Phased or MHIST-p [14] strategy over the joint
//! distribution of multiple columns of a relation." This module implements
//! the **Phased** strategy for two dimensions: partition the leading
//! dimension into equi-depth slabs, then partition each slab independently
//! on the second dimension. The result estimates *conjunctive* predicates
//! over both columns without the attribute-value-independence assumption
//! that multiplying two 1-D selectivities makes.
//!
//! SQL Server 7.0 (the paper's substrate) does not carry such structures —
//! its multi-column statistics are the asymmetric histogram+density form of
//! §7.1 — so [`Histogram2d`] is an *optional* extra: enable it per catalog
//! via [`BuildOptions::with_joint_histograms`](crate::BuildOptions) and the
//! optimizer will prefer it for two-column conjunctions when present.

use serde::{Deserialize, Serialize};
use storage::Value;

/// One cell: a slab of the leading dimension crossed with a bucket of the
/// second dimension inside that slab.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    pub x_lo: f64,
    pub x_hi: f64,
    pub y_lo: f64,
    pub y_hi: f64,
    /// Fraction of all rows falling in this cell.
    pub fraction: f64,
}

/// A Phased 2-D histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram2d {
    cells: Vec<Cell>,
    rows: f64,
}

/// Inclusive numeric ranges a predicate restricts each dimension to
/// (`None` bound = unbounded).
#[derive(Debug, Clone, Copy, Default)]
pub struct RangeQuery {
    pub x_lo: Option<f64>,
    pub x_hi: Option<f64>,
    pub y_lo: Option<f64>,
    pub y_hi: Option<f64>,
}

impl Histogram2d {
    /// Build from parallel value slices (`xs[i]`, `ys[i]` = row i), using at
    /// most `slabs` partitions of x and `buckets_per_slab` of y per slab.
    pub fn build(xs: &[Value], ys: &[Value], slabs: usize, buckets_per_slab: usize) -> Histogram2d {
        assert_eq!(xs.len(), ys.len(), "parallel column slices required");
        assert!(slabs >= 1 && buckets_per_slab >= 1);
        let mut pairs: Vec<(f64, f64)> = xs
            .iter()
            .zip(ys)
            .filter(|(x, y)| !x.is_null() && !y.is_null())
            .map(|(x, y)| (x.numeric_key(), y.numeric_key()))
            .collect();
        let rows = pairs.len() as f64;
        if pairs.is_empty() {
            return Histogram2d {
                cells: Vec::new(),
                rows: 0.0,
            };
        }
        // Phase 1: equi-depth slabs on x.
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let n = pairs.len();
        let per_slab = n.div_ceil(slabs);
        let mut cells = Vec::new();
        let mut start = 0usize;
        while start < n {
            // Extend the slab so equal x values never straddle a boundary.
            let mut end = (start + per_slab).min(n);
            while end < n && pairs[end].0 == pairs[end - 1].0 {
                end += 1;
            }
            let slab = &pairs[start..end];
            let x_lo = slab[0].0;
            let x_hi = slab[slab.len() - 1].0;
            // Phase 2: equi-depth buckets on y within the slab.
            let mut ys_in: Vec<f64> = slab.iter().map(|&(_, y)| y).collect();
            ys_in.sort_by(f64::total_cmp);
            let m = ys_in.len();
            let per_bucket = m.div_ceil(buckets_per_slab);
            let mut bstart = 0usize;
            while bstart < m {
                let mut bend = (bstart + per_bucket).min(m);
                while bend < m && ys_in[bend] == ys_in[bend - 1] {
                    bend += 1;
                }
                cells.push(Cell {
                    x_lo,
                    x_hi,
                    y_lo: ys_in[bstart],
                    y_hi: ys_in[bend - 1],
                    fraction: (bend - bstart) as f64 / rows,
                });
                bstart = bend;
            }
            start = end;
        }
        Histogram2d { cells, rows }
    }

    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    pub fn rows(&self) -> f64 {
        self.rows
    }

    /// Estimated selectivity of a conjunctive range query over both
    /// dimensions, with uniform interpolation inside each cell.
    pub fn selectivity(&self, q: &RangeQuery) -> f64 {
        let overlap = |lo: f64, hi: f64, qlo: Option<f64>, qhi: Option<f64>| -> f64 {
            let qlo = qlo.unwrap_or(f64::NEG_INFINITY);
            let qhi = qhi.unwrap_or(f64::INFINITY);
            if qhi < lo || qlo > hi {
                return 0.0;
            }
            let w = hi - lo;
            if w <= 0.0 {
                // Point span: either covered or not.
                return if qlo <= lo && hi <= qhi { 1.0 } else { 0.5 };
            }
            ((qhi.min(hi) - qlo.max(lo)) / w).clamp(0.0, 1.0)
        };
        let mut sel = 0.0;
        for c in &self.cells {
            let fx = overlap(c.x_lo, c.x_hi, q.x_lo, q.x_hi);
            if fx == 0.0 {
                continue;
            }
            let fy = overlap(c.y_lo, c.y_hi, q.y_lo, q.y_hi);
            sel += c.fraction * fx * fy;
        }
        sel.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(v: impl IntoIterator<Item = i64>) -> Vec<Value> {
        v.into_iter().map(Value::Int).collect()
    }

    /// Perfectly correlated columns: y == x. The independence assumption
    /// would estimate sel(x < 50 AND y >= 50) = 0.25; the truth is 0, and a
    /// joint histogram should be close to the truth.
    #[test]
    fn captures_correlation_independence_misses() {
        let xs = ints(0..1000);
        let ys = ints(0..1000);
        let h = Histogram2d::build(&xs, &ys, 16, 8);
        let contradictory = h.selectivity(&RangeQuery {
            x_hi: Some(499.0),
            y_lo: Some(500.0),
            ..Default::default()
        });
        assert!(
            contradictory < 0.05,
            "joint estimate {contradictory} should be near 0"
        );
        let consistent = h.selectivity(&RangeQuery {
            x_hi: Some(499.0),
            y_hi: Some(499.0),
            ..Default::default()
        });
        assert!(
            (consistent - 0.5).abs() < 0.1,
            "joint estimate {consistent} should be ~0.5"
        );
    }

    #[test]
    fn independent_columns_match_product() {
        let xs: Vec<Value> = ints((0..2000).map(|i| i % 40));
        let ys: Vec<Value> = ints((0..2000).map(|i| (i * 7) % 50));
        let h = Histogram2d::build(&xs, &ys, 10, 10);
        let est = h.selectivity(&RangeQuery {
            x_hi: Some(19.0),
            y_hi: Some(24.0),
            ..Default::default()
        });
        // True: P(x <= 19) ~ 0.5, P(y <= 24) ~ 0.5, independent → 0.25.
        assert!((est - 0.25).abs() < 0.08, "est={est}");
    }

    #[test]
    fn fractions_sum_to_one() {
        let xs = ints((0..500).map(|i| i % 13));
        let ys = ints((0..500).map(|i| i % 29));
        let h = Histogram2d::build(&xs, &ys, 8, 8);
        let total: f64 = h.cells().iter().map(|c| c.fraction).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unbounded_query_is_one() {
        let xs = ints(0..100);
        let ys = ints(0..100);
        let h = Histogram2d::build(&xs, &ys, 4, 4);
        assert!((h.selectivity(&RangeQuery::default()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_null_inputs() {
        let h = Histogram2d::build(&[], &[], 4, 4);
        assert_eq!(h.selectivity(&RangeQuery::default()), 0.0);
        let xs = vec![Value::Null, Value::Int(1)];
        let ys = vec![Value::Int(1), Value::Null];
        let h = Histogram2d::build(&xs, &ys, 4, 4);
        assert_eq!(h.rows(), 0.0, "rows with any NULL dimension are excluded");
    }

    #[test]
    fn slabs_never_split_equal_x() {
        let xs = ints(std::iter::repeat_n(5, 100).chain(0..50));
        let ys = ints(0..150);
        let h = Histogram2d::build(&xs, &ys, 10, 4);
        // Every cell with x range touching 5 must have x_lo <= 5 <= x_hi and
        // no two distinct slabs may both claim x == 5 exclusively.
        let slabs_with_5: std::collections::HashSet<(u64, u64)> = h
            .cells()
            .iter()
            .filter(|c| c.x_lo <= 5.0 && 5.0 <= c.x_hi)
            .map(|c| (c.x_lo.to_bits(), c.x_hi.to_bits()))
            .collect();
        assert_eq!(
            slabs_with_5.len(),
            1,
            "x=5 straddles slabs: {slabs_with_5:?}"
        );
    }
}
