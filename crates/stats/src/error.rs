//! Statistics-subsystem errors.
//!
//! Every fallible entry point of the stats layer returns [`StatsError`]
//! instead of panicking, so a corrupt descriptor or a stale table id degrades
//! into a typed, reportable failure rather than aborting the tuning process.

use std::fmt;
use storage::StorageError;

/// Errors raised while building, storing, or querying statistics.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// An underlying storage failure (unknown table id, etc.).
    Storage(StorageError),
    /// A statistic descriptor names a column ordinal the table does not have.
    UnknownColumn { table: String, column: usize },
    /// A statistic descriptor with an empty column list.
    EmptyColumnSet,
    /// A sample specification outside its valid domain (fraction not in
    /// (0, 1], zero row floor, zero block size, or a non-finite fraction).
    InvalidSampleSpec { detail: String },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::Storage(e) => write!(f, "storage error: {e}"),
            StatsError::UnknownColumn { table, column } => {
                write!(
                    f,
                    "statistic names column #{column}, which table '{table}' does not have"
                )
            }
            StatsError::EmptyColumnSet => {
                write!(f, "statistic descriptor has an empty column list")
            }
            StatsError::InvalidSampleSpec { detail } => {
                write!(f, "invalid sample specification: {detail}")
            }
        }
    }
}

impl std::error::Error for StatsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StatsError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for StatsError {
    fn from(e: StorageError) -> Self {
        StatsError::Storage(e)
    }
}
