//! The statistics subsystem.
//!
//! A *statistic* (§3 of the paper) is a summary structure on one or more
//! columns of a relation. Mirroring Microsoft SQL Server 7.0 as described in
//! §7.1, a multi-column statistic on `(a, b, c)` is **asymmetric**: it holds
//! a full histogram on the leading column `a` plus *density* information
//! (average fraction of rows per distinct combination, i.e. `1/NDV`) for each
//! leading prefix `(a)`, `(a, b)`, `(a, b, c)`.
//!
//! The [`StatsCatalog`] stores built statistics, supports the
//! `Ignore_Statistics_Subset` server extension (§7.2) via [`StatsView`],
//! maintains the **drop-list** of statistics identified as non-essential
//! (§5), the **aging registry** that dampens re-creation of recently dropped
//! statistics (§6), and the per-table auto-update/auto-drop counters of the
//! SQL Server policy (§6).
//!
//! All creation and update work is metered through a deterministic cost model
//! ([`cost`]) so that the paper's "statistics creation time" and "update
//! cost" results can be reproduced as ratios without hardware timing noise.

// Library code must stay panic-free on arbitrary input; tests may unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod catalog;
pub mod cost;
pub mod error;
pub mod feedback;
pub mod histogram;
pub mod mhist;
pub mod ndv;
pub mod sampler;
pub mod statistic;

pub use catalog::{
    AgingPolicy, CatalogObserver, CatalogSnapshot, MaintenancePolicy, MaintenanceReport,
    StatsCatalog, StatsView,
};
pub use cost::CostModel;
pub use error::StatsError;
pub use feedback::{
    build_from_feedback, correct_histogram, CorrectionOutcome, FeedbackConfig, FeedbackStore,
    Observation,
};
pub use histogram::{join_selectivity, Histogram, HistogramKind};
pub use mhist::{Histogram2d, RangeQuery};
pub use ndv::estimate_ndv;
pub use sampler::SampleSpec;
pub use statistic::{BuildOptions, StatDescriptor, StatId, Statistic};
