//! The name-based abstract syntax tree.
//!
//! The supported surface is deliberately the paper's scope: conjunctive
//! Select-Project-Join queries with simple comparison/BETWEEN predicates and
//! an optional GROUP BY, plus single-table INSERT/UPDATE/DELETE.

use serde::{Deserialize, Serialize};
use std::fmt;
use storage::Value;

/// Comparison operators usable in selection predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// A (possibly qualified) column reference, e.g. `l.quantity` or `name`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColumnRef {
    pub qualifier: Option<String>,
    pub column: String,
}

impl ColumnRef {
    pub fn new(qualifier: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            qualifier: Some(qualifier.into()),
            column: column.into(),
        }
    }

    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef {
            qualifier: None,
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{}.{}", q, self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// A table in the FROM clause, with an optional alias.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

impl TableRef {
    pub fn new(table: impl Into<String>) -> Self {
        TableRef {
            table: table.into(),
            alias: None,
        }
    }

    pub fn aliased(table: impl Into<String>, alias: impl Into<String>) -> Self {
        TableRef {
            table: table.into(),
            alias: Some(alias.into()),
        }
    }

    /// Name this relation is addressed by in the query.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// One conjunct of the WHERE clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Condition {
    /// `column op literal` (literal-first inputs are normalized by the
    /// parser using [`CmpOp::flipped`]).
    Compare {
        column: ColumnRef,
        op: CmpOp,
        value: Value,
    },
    /// `column BETWEEN low AND high` (inclusive on both ends).
    Between {
        column: ColumnRef,
        low: Value,
        high: Value,
    },
    /// Equi-join conjunct `left = right` between two columns.
    Join { left: ColumnRef, right: ColumnRef },
}

/// Aggregate functions in the SELECT list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectItem {
    /// `*`
    Star,
    Column(ColumnRef),
    /// `COUNT(*)` is `Aggregate(Count, None)`.
    Aggregate(AggFunc, Option<ColumnRef>),
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrderKey {
    pub column: ColumnRef,
    pub descending: bool,
}

/// A SELECT statement in the supported subset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectStmt {
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    /// Conjunctive WHERE clause.
    pub conditions: Vec<Condition>,
    pub group_by: Vec<ColumnRef>,
    /// ORDER BY keys. Per the paper's footnote 1, columns referenced *only*
    /// here are not relevant for statistics selection: they cannot affect
    /// cost estimation or plan choice below the final sort.
    pub order_by: Vec<OrderKey>,
}

impl SelectStmt {
    /// `SELECT * FROM <tables>` skeleton, for programmatic construction.
    pub fn star_from(tables: impl IntoIterator<Item = TableRef>) -> Self {
        SelectStmt {
            items: vec![SelectItem::Star],
            from: tables.into_iter().collect(),
            conditions: Vec::new(),
            group_by: Vec::new(),
            order_by: Vec::new(),
        }
    }

    pub fn with_condition(mut self, c: Condition) -> Self {
        self.conditions.push(c);
        self
    }

    pub fn with_group_by(mut self, c: ColumnRef) -> Self {
        self.group_by.push(c);
        self
    }
}

/// `INSERT INTO table VALUES (...)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InsertStmt {
    pub table: String,
    pub values: Vec<Value>,
}

/// `UPDATE table SET column = value [WHERE ...]` (single assignment,
/// conjunctive filter — all the Rags-style workloads need).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateStmt {
    pub table: String,
    pub set_column: String,
    pub set_value: Value,
    pub conditions: Vec<Condition>,
}

/// `DELETE FROM table [WHERE ...]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeleteStmt {
    pub table: String,
    pub conditions: Vec<Condition>,
}

/// Any supported statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    Select(SelectStmt),
    Insert(InsertStmt),
    Update(UpdateStmt),
    Delete(DeleteStmt),
}

impl Statement {
    pub fn is_query(&self) -> bool {
        matches!(self, Statement::Select(_))
    }

    pub fn as_select(&self) -> Option<&SelectStmt> {
        match self {
            Statement::Select(s) => Some(s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flipped_is_involutive() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.flipped().flipped(), op);
        }
    }

    #[test]
    fn binding_name_prefers_alias() {
        assert_eq!(TableRef::new("orders").binding_name(), "orders");
        assert_eq!(TableRef::aliased("orders", "o").binding_name(), "o");
    }

    #[test]
    fn builder_chains() {
        let q = SelectStmt::star_from([TableRef::new("t")])
            .with_condition(Condition::Compare {
                column: ColumnRef::bare("a"),
                op: CmpOp::Lt,
                value: Value::Int(5),
            })
            .with_group_by(ColumnRef::bare("b"));
        assert_eq!(q.conditions.len(), 1);
        assert_eq!(q.group_by.len(), 1);
    }
}
