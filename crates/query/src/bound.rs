//! Bound (name-resolved) statements.
//!
//! Binding turns name-based AST references into `(relation ordinal, column
//! ordinal)` pairs against a concrete `storage::Database`, groups equi-join
//! conjuncts into per-table-pair **join edges**, and enumerates the query's
//! **selectivity variables** — the central concept of §4.1 of the paper: one
//! variable per selection predicate, one per join edge, and one for the
//! GROUP BY clause (the fraction of rows with distinct grouping values).

use crate::ast::{AggFunc, CmpOp};
use serde::{Deserialize, Serialize};
use std::fmt;
use storage::{TableId, Value};

/// A column of one of the query's relations: `(relation ordinal within the
/// query, column ordinal within the table)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BoundColumn {
    pub relation: usize,
    pub column: usize,
}

impl BoundColumn {
    pub fn new(relation: usize, column: usize) -> Self {
        BoundColumn { relation, column }
    }
}

/// The comparison part of a selection predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PredOp {
    Cmp(CmpOp, Value),
    Between(Value, Value),
}

impl PredOp {
    /// Predicate class used for magic-number lookup when no statistics apply.
    pub fn class(&self) -> PredClass {
        match self {
            PredOp::Cmp(CmpOp::Eq, _) => PredClass::Equality,
            PredOp::Cmp(CmpOp::Ne, _) => PredClass::Inequality,
            PredOp::Cmp(_, _) => PredClass::Range,
            PredOp::Between(_, _) => PredClass::Between,
        }
    }
}

/// Classes of predicates that carry distinct default "magic numbers"
/// (system-wide selectivity constants, §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredClass {
    Equality,
    Inequality,
    Range,
    Between,
    Join,
    GroupBy,
}

/// A selection predicate on a single column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectionPredicate {
    pub column: BoundColumn,
    pub op: PredOp,
}

/// All equi-join conjuncts between one unordered pair of relations, fused
/// into a single join edge. A k-column join edge is exactly the situation in
/// §3.1 where multi-column statistics on `(a1..ak)` and `(b1..bk)` are useful,
/// and §4.2's note that join statistics must be created in **pairs**.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinEdge {
    pub left_rel: usize,
    pub right_rel: usize,
    /// Column pairs `(left column ordinal, right column ordinal)`.
    pub pairs: Vec<(usize, usize)>,
}

impl JoinEdge {
    /// Left-side columns as bound columns.
    pub fn left_columns(&self) -> Vec<BoundColumn> {
        self.pairs
            .iter()
            .map(|&(l, _)| BoundColumn::new(self.left_rel, l))
            .collect()
    }

    /// Right-side columns as bound columns.
    pub fn right_columns(&self) -> Vec<BoundColumn> {
        self.pairs
            .iter()
            .map(|&(_, r)| BoundColumn::new(self.right_rel, r))
            .collect()
    }

    /// True if this edge connects the two given relation ordinals.
    pub fn connects(&self, a: usize, b: usize) -> bool {
        (self.left_rel == a && self.right_rel == b) || (self.left_rel == b && self.right_rel == a)
    }
}

/// Identifier of one selectivity variable of a bound query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PredicateId {
    /// Index into [`BoundSelect::selections`].
    Selection(usize),
    /// Index into [`BoundSelect::join_edges`].
    JoinEdge(usize),
    /// The GROUP BY distinct-fraction variable.
    GroupBy,
}

impl fmt::Display for PredicateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredicateId::Selection(i) => write!(f, "sel#{i}"),
            PredicateId::JoinEdge(i) => write!(f, "join#{i}"),
            PredicateId::GroupBy => write!(f, "groupby"),
        }
    }
}

/// An aggregate expression in the SELECT list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundAggregate {
    pub func: AggFunc,
    /// `None` means `COUNT(*)`.
    pub input: Option<BoundColumn>,
}

/// What the query projects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Projection {
    Star,
    Columns(Vec<BoundColumn>),
}

/// A bound SELECT query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundSelect {
    /// `(table id, binding name)` per relation, in FROM order.
    pub relations: Vec<(TableId, String)>,
    pub projection: Projection,
    pub aggregates: Vec<BoundAggregate>,
    pub selections: Vec<SelectionPredicate>,
    pub join_edges: Vec<JoinEdge>,
    pub group_by: Vec<BoundColumn>,
    /// ORDER BY keys `(column, descending)`. Deliberately **not** part of
    /// [`BoundSelect::relevant_columns`]: the paper's footnote 1 observes
    /// that a column referenced only in ORDER BY cannot affect cost
    /// estimation or plan choice, so no statistics are proposed for it.
    pub order_by: Vec<(BoundColumn, bool)>,
}

impl BoundSelect {
    /// Table id of relation ordinal `rel`.
    pub fn table_of(&self, rel: usize) -> TableId {
        self.relations[rel].0
    }

    /// Stable structural fingerprint of the bound query (FNV-1a over the
    /// `Debug` rendering, which is deterministic: every field is a `Vec`).
    /// Used as the query component of optimizer cache keys.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in format!("{self:?}").bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// All selectivity variables of this query, in a stable order.
    pub fn predicate_ids(&self) -> Vec<PredicateId> {
        let mut ids = Vec::with_capacity(self.selections.len() + self.join_edges.len() + 1);
        ids.extend((0..self.selections.len()).map(PredicateId::Selection));
        ids.extend((0..self.join_edges.len()).map(PredicateId::JoinEdge));
        if !self.group_by.is_empty() {
            ids.push(PredicateId::GroupBy);
        }
        ids
    }

    /// Selection predicates on the given relation ordinal.
    pub fn selections_on(&self, rel: usize) -> impl Iterator<Item = (usize, &SelectionPredicate)> {
        self.selections
            .iter()
            .enumerate()
            .filter(move |(_, p)| p.column.relation == rel)
    }

    /// The *relevant columns* of the query in the paper's sense (§3.1):
    /// columns in the WHERE clause or the GROUP BY clause. Returned as
    /// `(table id, column ordinal)` pairs, deduplicated, in first-occurrence
    /// order.
    pub fn relevant_columns(&self) -> Vec<(TableId, usize)> {
        let mut out: Vec<(TableId, usize)> = Vec::new();
        let push = |t: TableId, c: usize, out: &mut Vec<(TableId, usize)>| {
            if !out.contains(&(t, c)) {
                out.push((t, c));
            }
        };
        for p in &self.selections {
            push(self.table_of(p.column.relation), p.column.column, &mut out);
        }
        for e in &self.join_edges {
            for &(l, r) in &e.pairs {
                push(self.table_of(e.left_rel), l, &mut out);
                push(self.table_of(e.right_rel), r, &mut out);
            }
        }
        for g in &self.group_by {
            push(self.table_of(g.relation), g.column, &mut out);
        }
        out
    }

    /// True if the named table participates in this query.
    pub fn references_table(&self, table: TableId) -> bool {
        self.relations.iter().any(|(t, _)| *t == table)
    }
}

/// Bound `INSERT`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundInsert {
    pub table: TableId,
    pub values: Vec<Value>,
}

/// Bound `UPDATE`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundUpdate {
    pub table: TableId,
    pub set_column: usize,
    pub set_value: Value,
    pub selections: Vec<SelectionPredicate>,
}

/// Bound `DELETE`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundDelete {
    pub table: TableId,
    pub selections: Vec<SelectionPredicate>,
}

/// Any bound statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BoundStatement {
    Select(BoundSelect),
    Insert(BoundInsert),
    Update(BoundUpdate),
    Delete(BoundDelete),
}

impl BoundStatement {
    pub fn as_select(&self) -> Option<&BoundSelect> {
        match self {
            BoundStatement::Select(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_query(&self) -> bool {
        matches!(self, BoundStatement::Select(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_rel_query() -> BoundSelect {
        BoundSelect {
            relations: vec![(TableId(0), "a".into()), (TableId(1), "b".into())],
            projection: Projection::Star,
            aggregates: vec![],
            selections: vec![SelectionPredicate {
                column: BoundColumn::new(0, 2),
                op: PredOp::Cmp(CmpOp::Lt, Value::Int(10)),
            }],
            join_edges: vec![JoinEdge {
                left_rel: 0,
                right_rel: 1,
                pairs: vec![(0, 0), (1, 3)],
            }],
            group_by: vec![BoundColumn::new(1, 1)],
            order_by: vec![(BoundColumn::new(0, 3), true)],
        }
    }

    #[test]
    fn predicate_ids_stable_order() {
        let q = two_rel_query();
        assert_eq!(
            q.predicate_ids(),
            vec![
                PredicateId::Selection(0),
                PredicateId::JoinEdge(0),
                PredicateId::GroupBy
            ]
        );
    }

    #[test]
    fn relevant_columns_cover_where_and_group_by() {
        let q = two_rel_query();
        let rel = q.relevant_columns();
        // selection col, join cols (both sides, two pairs), group-by col
        assert!(rel.contains(&(TableId(0), 2)));
        assert!(rel.contains(&(TableId(0), 0)));
        assert!(rel.contains(&(TableId(1), 0)));
        assert!(rel.contains(&(TableId(0), 1)));
        assert!(rel.contains(&(TableId(1), 3)));
        assert!(rel.contains(&(TableId(1), 1)));
        assert_eq!(rel.len(), 6);
    }

    #[test]
    fn join_edge_connects_unordered() {
        let e = JoinEdge {
            left_rel: 0,
            right_rel: 1,
            pairs: vec![(0, 0)],
        };
        assert!(e.connects(0, 1));
        assert!(e.connects(1, 0));
        assert!(!e.connects(0, 2));
    }

    #[test]
    fn pred_class_mapping() {
        assert_eq!(
            PredOp::Cmp(CmpOp::Eq, Value::Int(1)).class(),
            PredClass::Equality
        );
        assert_eq!(
            PredOp::Cmp(CmpOp::Ge, Value::Int(1)).class(),
            PredClass::Range
        );
        assert_eq!(
            PredOp::Between(Value::Int(1), Value::Int(2)).class(),
            PredClass::Between
        );
        assert_eq!(
            PredOp::Cmp(CmpOp::Ne, Value::Int(1)).class(),
            PredClass::Inequality
        );
    }
}
