//! Query representation for the reproduction.
//!
//! The paper's techniques are defined over Select-Project-Join (SPJ) queries
//! with optional GROUP BY, plus the insert/update/delete statements that the
//! Rags-generated workloads contain (§8.1). This crate provides:
//!
//! * a name-based [`ast`] built either programmatically or by the SQL
//!   [`parser`] for that subset,
//! * a [`binder`] that resolves names against a `storage::Database` and
//!   produces the bound form consumed by the optimizer, and
//! * a [`render`] module that prints statements back to SQL (the parser and
//!   renderer round-trip, which the property tests exercise).

// Library code must stay panic-free on arbitrary input; tests may unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod ast;
pub mod binder;
pub mod bound;
pub mod parser;
pub mod render;

pub use ast::{
    AggFunc, CmpOp, ColumnRef, Condition, DeleteStmt, InsertStmt, SelectItem, SelectStmt,
    Statement, TableRef, UpdateStmt,
};
pub use binder::{bind_statement, BindError};
pub use bound::{
    BoundAggregate, BoundColumn, BoundDelete, BoundInsert, BoundSelect, BoundStatement,
    BoundUpdate, JoinEdge, PredClass, PredOp, PredicateId, Projection, SelectionPredicate,
};
pub use parser::{parse_statement, ParseError};
pub use render::render;
