//! Rendering statements back to SQL text.
//!
//! `parse_statement(render(s)) == s` for every statement the workload
//! generator produces; the property tests in this crate and in `datagen`
//! rely on that round-trip.

use crate::ast::*;
use std::fmt::Write;

fn render_condition(c: &Condition, out: &mut String) {
    match c {
        Condition::Compare { column, op, value } => {
            let _ = write!(out, "{column} {op} {value}");
        }
        Condition::Between { column, low, high } => {
            let _ = write!(out, "{column} BETWEEN {low} AND {high}");
        }
        Condition::Join { left, right } => {
            let _ = write!(out, "{left} = {right}");
        }
    }
}

fn render_conditions(conds: &[Condition], out: &mut String) {
    for (i, c) in conds.iter().enumerate() {
        if i == 0 {
            out.push_str(" WHERE ");
        } else {
            out.push_str(" AND ");
        }
        render_condition(c, out);
    }
}

/// Render a statement as SQL text.
pub fn render(stmt: &Statement) -> String {
    let mut out = String::new();
    match stmt {
        Statement::Select(q) => {
            out.push_str("SELECT ");
            for (i, item) in q.items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                match item {
                    SelectItem::Star => out.push('*'),
                    SelectItem::Column(c) => {
                        let _ = write!(out, "{c}");
                    }
                    SelectItem::Aggregate(f, arg) => {
                        let _ = write!(out, "{}(", f.name());
                        match arg {
                            Some(c) => {
                                let _ = write!(out, "{c}");
                            }
                            None => out.push('*'),
                        }
                        out.push(')');
                    }
                }
            }
            out.push_str(" FROM ");
            for (i, t) in q.from.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&t.table);
                if let Some(a) = &t.alias {
                    let _ = write!(out, " {a}");
                }
            }
            render_conditions(&q.conditions, &mut out);
            if !q.group_by.is_empty() {
                out.push_str(" GROUP BY ");
                for (i, c) in q.group_by.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{c}");
                }
            }
            if !q.order_by.is_empty() {
                out.push_str(" ORDER BY ");
                for (i, k) in q.order_by.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{}", k.column);
                    if k.descending {
                        out.push_str(" DESC");
                    }
                }
            }
        }
        Statement::Insert(ins) => {
            let _ = write!(out, "INSERT INTO {} VALUES (", ins.table);
            for (i, v) in ins.values.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{v}");
            }
            out.push(')');
        }
        Statement::Update(u) => {
            let _ = write!(
                out,
                "UPDATE {} SET {} = {}",
                u.table, u.set_column, u.set_value
            );
            render_conditions(&u.conditions, &mut out);
        }
        Statement::Delete(d) => {
            let _ = write!(out, "DELETE FROM {}", d.table);
            render_conditions(&d.conditions, &mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;
    use storage::Value;

    fn roundtrip(sql: &str) {
        let stmt = parse_statement(sql).unwrap();
        let rendered = render(&stmt);
        let reparsed = parse_statement(&rendered)
            .unwrap_or_else(|e| panic!("re-parse of {rendered:?} failed: {e}"));
        assert_eq!(stmt, reparsed, "round-trip mismatch for {sql}");
    }

    #[test]
    fn roundtrips() {
        roundtrip("SELECT * FROM t WHERE a < 10");
        roundtrip("SELECT a.x, COUNT(*) FROM t1 a, t2 b WHERE a.x = b.y AND a.z BETWEEN 1 AND 2 GROUP BY a.x");
        roundtrip("INSERT INTO t VALUES (1, 'a''b', -2.5, DATE 77, NULL)");
        roundtrip("UPDATE t SET c = 'v' WHERE k = 3");
        roundtrip("DELETE FROM t WHERE a >= 100");
        roundtrip("SELECT SUM(x), MIN(y), MAX(z), AVG(w) FROM t");
        roundtrip("SELECT * FROM t ORDER BY a DESC, b");
        roundtrip("SELECT b, COUNT(*) FROM t WHERE a = 1 GROUP BY b ORDER BY b DESC");
    }

    #[test]
    fn renders_programmatic_query() {
        let q = SelectStmt::star_from([TableRef::aliased("orders", "o")]).with_condition(
            Condition::Compare {
                column: ColumnRef::new("o", "total"),
                op: CmpOp::Gt,
                value: Value::Float(100.0),
            },
        );
        assert_eq!(
            render(&Statement::Select(q)),
            "SELECT * FROM orders o WHERE o.total > 100"
        );
    }
}
