//! Name resolution against a `storage::Database`.

use crate::ast::*;
use crate::bound::*;
use std::collections::HashMap;
use std::fmt;
use storage::{DataType, Database, TableId, Value};

/// Binding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindError {
    UnknownTable(String),
    UnknownColumn(String),
    AmbiguousColumn(String),
    DuplicateBindingName(String),
    SelfJoinColumnPair(String),
    TypeMismatch {
        column: String,
        expected: String,
        found: String,
    },
    ArityMismatch {
        table: String,
        expected: usize,
        found: usize,
    },
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            BindError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            BindError::AmbiguousColumn(c) => write!(f, "ambiguous column '{c}'"),
            BindError::DuplicateBindingName(n) => {
                write!(f, "duplicate table binding name '{n}' in FROM")
            }
            BindError::SelfJoinColumnPair(c) => write!(
                f,
                "join predicate '{c}' relates two columns of the same relation; not supported"
            ),
            BindError::TypeMismatch {
                column,
                expected,
                found,
            } => {
                write!(
                    f,
                    "type mismatch on {column}: expected {expected}, found {found}"
                )
            }
            BindError::ArityMismatch {
                table,
                expected,
                found,
            } => write!(
                f,
                "INSERT into {table} expects {expected} values, found {found}"
            ),
        }
    }
}

impl std::error::Error for BindError {}

struct Scope<'a> {
    db: &'a Database,
    /// binding name (lowercased) → relation ordinal
    by_name: HashMap<String, usize>,
    relations: Vec<(TableId, String)>,
}

impl<'a> Scope<'a> {
    fn build(db: &'a Database, from: &[TableRef]) -> Result<Self, BindError> {
        let mut by_name = HashMap::new();
        let mut relations = Vec::with_capacity(from.len());
        for (ord, t) in from.iter().enumerate() {
            let id = db
                .table_id(&t.table)
                .ok_or_else(|| BindError::UnknownTable(t.table.clone()))?;
            let name = t.binding_name().to_string();
            if by_name.insert(name.to_ascii_lowercase(), ord).is_some() {
                return Err(BindError::DuplicateBindingName(name));
            }
            relations.push((id, name));
        }
        Ok(Scope {
            db,
            by_name,
            relations,
        })
    }

    fn resolve(&self, c: &ColumnRef) -> Result<BoundColumn, BindError> {
        if let Some(q) = &c.qualifier {
            let rel = *self
                .by_name
                .get(&q.to_ascii_lowercase())
                .ok_or_else(|| BindError::UnknownTable(q.clone()))?;
            let table = self.db.table(self.relations[rel].0);
            let col = table
                .schema()
                .index_of(&c.column)
                .ok_or_else(|| BindError::UnknownColumn(c.to_string()))?;
            return Ok(BoundColumn::new(rel, col));
        }
        let mut found: Option<BoundColumn> = None;
        for (rel, (tid, _)) in self.relations.iter().enumerate() {
            if let Some(col) = self.db.table(*tid).schema().index_of(&c.column) {
                if found.is_some() {
                    return Err(BindError::AmbiguousColumn(c.column.clone()));
                }
                found = Some(BoundColumn::new(rel, col));
            }
        }
        found.ok_or_else(|| BindError::UnknownColumn(c.column.clone()))
    }

    fn column_type(&self, c: BoundColumn) -> DataType {
        self.db
            .table(self.relations[c.relation].0)
            .schema()
            .column(c.column)
            .data_type
    }

    fn check_literal(
        &self,
        col: BoundColumn,
        name: &ColumnRef,
        v: &Value,
    ) -> Result<(), BindError> {
        let Some(vt) = v.data_type() else {
            return Ok(());
        };
        let expected = self.column_type(col);
        let ok = vt == expected
            || matches!(
                (vt, expected),
                (DataType::Int, DataType::Float | DataType::Date)
            );
        if ok {
            Ok(())
        } else {
            Err(BindError::TypeMismatch {
                column: name.to_string(),
                expected: expected.to_string(),
                found: vt.to_string(),
            })
        }
    }
}

/// Group raw join conjuncts into per-relation-pair join edges, pair columns
/// normalized so `left_rel < right_rel`.
fn build_join_edges(raw: Vec<(BoundColumn, BoundColumn)>) -> Vec<JoinEdge> {
    let mut edges: Vec<JoinEdge> = Vec::new();
    for (a, b) in raw {
        let (l, r) = if a.relation <= b.relation {
            (a, b)
        } else {
            (b, a)
        };
        if let Some(e) = edges
            .iter_mut()
            .find(|e| e.left_rel == l.relation && e.right_rel == r.relation)
        {
            if !e.pairs.contains(&(l.column, r.column)) {
                e.pairs.push((l.column, r.column));
            }
        } else {
            edges.push(JoinEdge {
                left_rel: l.relation,
                right_rel: r.relation,
                pairs: vec![(l.column, r.column)],
            });
        }
    }
    edges
}

fn bind_select(db: &Database, q: &SelectStmt) -> Result<BoundSelect, BindError> {
    let scope = Scope::build(db, &q.from)?;

    let mut selections = Vec::new();
    let mut raw_joins = Vec::new();
    for c in &q.conditions {
        match c {
            Condition::Compare { column, op, value } => {
                let col = scope.resolve(column)?;
                scope.check_literal(col, column, value)?;
                selections.push(SelectionPredicate {
                    column: col,
                    op: PredOp::Cmp(*op, value.clone()),
                });
            }
            Condition::Between { column, low, high } => {
                let col = scope.resolve(column)?;
                scope.check_literal(col, column, low)?;
                scope.check_literal(col, column, high)?;
                selections.push(SelectionPredicate {
                    column: col,
                    op: PredOp::Between(low.clone(), high.clone()),
                });
            }
            Condition::Join { left, right } => {
                let l = scope.resolve(left)?;
                let r = scope.resolve(right)?;
                if l.relation == r.relation {
                    return Err(BindError::SelfJoinColumnPair(format!("{left} = {right}")));
                }
                raw_joins.push((l, r));
            }
        }
    }

    let mut group_by = Vec::with_capacity(q.group_by.len());
    for g in &q.group_by {
        group_by.push(scope.resolve(g)?);
    }

    let mut order_by = Vec::with_capacity(q.order_by.len());
    for k in &q.order_by {
        order_by.push((scope.resolve(&k.column)?, k.descending));
    }

    let mut aggregates = Vec::new();
    let mut proj_cols = Vec::new();
    let mut star = false;
    for item in &q.items {
        match item {
            SelectItem::Star => star = true,
            SelectItem::Column(c) => proj_cols.push(scope.resolve(c)?),
            SelectItem::Aggregate(f, arg) => {
                let input = match arg {
                    Some(c) => Some(scope.resolve(c)?),
                    None => None,
                };
                aggregates.push(BoundAggregate { func: *f, input });
            }
        }
    }
    let projection = if star || proj_cols.is_empty() {
        Projection::Star
    } else {
        Projection::Columns(proj_cols)
    };

    Ok(BoundSelect {
        relations: scope.relations,
        projection,
        aggregates,
        selections,
        join_edges: build_join_edges(raw_joins),
        group_by,
        order_by,
    })
}

fn bind_filter_for_table(
    db: &Database,
    table: TableId,
    table_name: &str,
    conds: &[Condition],
) -> Result<Vec<SelectionPredicate>, BindError> {
    // Reuse the select machinery with a synthetic single-table scope.
    let scope = Scope::build(db, &[TableRef::new(table_name)])?;
    debug_assert_eq!(scope.relations[0].0, table);
    let mut out = Vec::new();
    for c in conds {
        match c {
            Condition::Compare { column, op, value } => {
                let col = scope.resolve(column)?;
                scope.check_literal(col, column, value)?;
                out.push(SelectionPredicate {
                    column: col,
                    op: PredOp::Cmp(*op, value.clone()),
                });
            }
            Condition::Between { column, low, high } => {
                let col = scope.resolve(column)?;
                out.push(SelectionPredicate {
                    column: col,
                    op: PredOp::Between(low.clone(), high.clone()),
                });
            }
            Condition::Join { left, right } => {
                return Err(BindError::SelfJoinColumnPair(format!("{left} = {right}")));
            }
        }
    }
    Ok(out)
}

/// Bind a statement against the database.
pub fn bind_statement(db: &Database, stmt: &Statement) -> Result<BoundStatement, BindError> {
    match stmt {
        Statement::Select(q) => Ok(BoundStatement::Select(bind_select(db, q)?)),
        Statement::Insert(i) => {
            let table = db
                .table_id(&i.table)
                .ok_or_else(|| BindError::UnknownTable(i.table.clone()))?;
            let schema = db.table(table).schema();
            if schema.len() != i.values.len() {
                return Err(BindError::ArityMismatch {
                    table: i.table.clone(),
                    expected: schema.len(),
                    found: i.values.len(),
                });
            }
            Ok(BoundStatement::Insert(BoundInsert {
                table,
                values: i.values.clone(),
            }))
        }
        Statement::Update(u) => {
            let table = db
                .table_id(&u.table)
                .ok_or_else(|| BindError::UnknownTable(u.table.clone()))?;
            let set_column = db
                .table(table)
                .schema()
                .index_of(&u.set_column)
                .ok_or_else(|| BindError::UnknownColumn(u.set_column.clone()))?;
            let selections = bind_filter_for_table(db, table, &u.table, &u.conditions)?;
            Ok(BoundStatement::Update(BoundUpdate {
                table,
                set_column,
                set_value: u.set_value.clone(),
                selections,
            }))
        }
        Statement::Delete(d) => {
            let table = db
                .table_id(&d.table)
                .ok_or_else(|| BindError::UnknownTable(d.table.clone()))?;
            let selections = bind_filter_for_table(db, table, &d.table, &d.conditions)?;
            Ok(BoundStatement::Delete(BoundDelete { table, selections }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;
    use storage::{ColumnDef, Schema};

    fn test_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "emp",
            Schema::new(vec![
                ColumnDef::new("empid", DataType::Int),
                ColumnDef::new("deptid", DataType::Int),
                ColumnDef::new("age", DataType::Int),
                ColumnDef::new("salary", DataType::Float),
            ]),
        )
        .unwrap();
        db.create_table(
            "dept",
            Schema::new(vec![
                ColumnDef::new("deptid", DataType::Int),
                ColumnDef::new("dname", DataType::Str),
            ]),
        )
        .unwrap();
        db
    }

    fn bind(db: &Database, sql: &str) -> Result<BoundStatement, BindError> {
        bind_statement(db, &parse_statement(sql).unwrap())
    }

    #[test]
    fn binds_example2_query() {
        // Example 2 from the paper.
        let db = test_db();
        let b = bind(
            &db,
            "SELECT e.empid, d.dname FROM emp e, dept d \
             WHERE e.deptid = d.deptid AND e.age < 30 AND e.salary > 200",
        )
        .unwrap();
        let q = b.as_select().unwrap();
        assert_eq!(q.relations.len(), 2);
        assert_eq!(q.selections.len(), 2);
        assert_eq!(q.join_edges.len(), 1);
        assert_eq!(q.join_edges[0].pairs, vec![(1, 0)]);
        assert_eq!(
            q.predicate_ids(),
            vec![
                PredicateId::Selection(0),
                PredicateId::Selection(1),
                PredicateId::JoinEdge(0)
            ]
        );
    }

    #[test]
    fn multi_column_join_fuses_into_one_edge() {
        let mut db = Database::new();
        for t in ["r1", "r2"] {
            db.create_table(
                t,
                Schema::new(vec![
                    ColumnDef::new("a", DataType::Int),
                    ColumnDef::new("b", DataType::Int),
                ]),
            )
            .unwrap();
        }
        let b = bind(
            &db,
            "SELECT * FROM r1, r2 WHERE r1.a = r2.a AND r1.b = r2.b",
        )
        .unwrap();
        let q = b.as_select().unwrap();
        assert_eq!(q.join_edges.len(), 1);
        assert_eq!(q.join_edges[0].pairs.len(), 2);
    }

    #[test]
    fn unqualified_ambiguous_column_rejected() {
        let db = test_db();
        let err = bind(&db, "SELECT * FROM emp, dept WHERE deptid = 1").unwrap_err();
        assert!(matches!(err, BindError::AmbiguousColumn(_)));
    }

    #[test]
    fn unqualified_unique_column_resolves() {
        let db = test_db();
        let b = bind(&db, "SELECT * FROM emp, dept WHERE age < 30").unwrap();
        let q = b.as_select().unwrap();
        assert_eq!(q.selections[0].column, BoundColumn::new(0, 2));
    }

    #[test]
    fn type_mismatch_rejected() {
        let db = test_db();
        let err = bind(&db, "SELECT * FROM emp WHERE age = 'old'").unwrap_err();
        assert!(matches!(err, BindError::TypeMismatch { .. }));
    }

    #[test]
    fn duplicate_binding_rejected() {
        let db = test_db();
        let err = bind(&db, "SELECT * FROM emp e, dept e").unwrap_err();
        assert!(matches!(err, BindError::DuplicateBindingName(_)));
    }

    #[test]
    fn self_join_pair_rejected() {
        let db = test_db();
        let err = bind(&db, "SELECT * FROM emp WHERE empid = deptid").unwrap_err();
        assert!(matches!(err, BindError::SelfJoinColumnPair(_)));
    }

    #[test]
    fn binds_dml() {
        let db = test_db();
        let ins = bind(&db, "INSERT INTO dept VALUES (1, 'eng')").unwrap();
        assert!(matches!(ins, BoundStatement::Insert(_)));
        let upd = bind(&db, "UPDATE emp SET salary = 100.0 WHERE age > 60").unwrap();
        match upd {
            BoundStatement::Update(u) => {
                assert_eq!(u.set_column, 3);
                assert_eq!(u.selections.len(), 1);
            }
            _ => panic!(),
        }
        let err = bind(&db, "INSERT INTO dept VALUES (1)").unwrap_err();
        assert!(matches!(err, BindError::ArityMismatch { .. }));
    }

    #[test]
    fn group_by_and_aggregates_bind() {
        let db = test_db();
        let b = bind(
            &db,
            "SELECT deptid, COUNT(*), AVG(salary) FROM emp GROUP BY deptid",
        )
        .unwrap();
        let q = b.as_select().unwrap();
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.aggregates.len(), 2);
        assert_eq!(q.predicate_ids(), vec![PredicateId::GroupBy]);
    }
}
