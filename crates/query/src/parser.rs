//! A hand-written recursive-descent parser for the supported SQL subset.
//!
//! Grammar (case-insensitive keywords, conjunctive WHERE only):
//!
//! ```text
//! statement   := select | insert | update | delete
//! select      := SELECT items FROM tables [WHERE conds] [GROUP BY columns]
//!                [ORDER BY column [ASC|DESC] (',' column [ASC|DESC])*]
//! items       := '*' | item (',' item)*
//! item        := column | agg '(' ('*' | column) ')'
//! tables      := table (',' table)*
//! table       := ident [AS] [ident]
//! conds       := cond (AND cond)*
//! cond        := column op literal | literal op column
//!              | column BETWEEN literal AND literal
//!              | column '=' column                       -- equi-join
//! insert      := INSERT INTO ident VALUES '(' literal (',' literal)* ')'
//! update      := UPDATE ident SET ident '=' literal [WHERE conds]
//! delete      := DELETE FROM ident [WHERE conds]
//! literal     := int | float | string | DATE int | NULL
//! ```

use crate::ast::*;
use std::fmt;
use storage::Value;

/// Parse failure with a human-readable message and byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Symbol(&'static str), // one of , ( ) * . = <> < <= > >=
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, pos: 0 }
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            message: msg.into(),
            offset: self.pos,
        }
    }

    fn tokenize(mut self) -> Result<Vec<(Token, usize)>, ParseError> {
        let bytes = self.src.as_bytes();
        let mut out = Vec::new();
        while self.pos < bytes.len() {
            let start = self.pos;
            let c = bytes[self.pos] as char;
            if c.is_ascii_whitespace() {
                self.pos += 1;
                continue;
            }
            if c.is_ascii_alphabetic() || c == '_' {
                let mut end = self.pos;
                while end < bytes.len()
                    && ((bytes[end] as char).is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                out.push((Token::Ident(self.src[self.pos..end].to_string()), start));
                self.pos = end;
                continue;
            }
            if c.is_ascii_digit()
                || (c == '-'
                    && self.pos + 1 < bytes.len()
                    && (bytes[self.pos + 1] as char).is_ascii_digit())
            {
                let mut end = self.pos + 1;
                let mut is_float = false;
                while end < bytes.len() {
                    let d = bytes[end] as char;
                    if d.is_ascii_digit() {
                        end += 1;
                    } else if d == '.'
                        && !is_float
                        && end + 1 < bytes.len()
                        && (bytes[end + 1] as char).is_ascii_digit()
                    {
                        is_float = true;
                        end += 1;
                    } else {
                        break;
                    }
                }
                let text = &self.src[self.pos..end];
                let tok = if is_float {
                    Token::Float(text.parse().map_err(|_| self.error("bad float literal"))?)
                } else {
                    Token::Int(text.parse().map_err(|_| self.error("bad int literal"))?)
                };
                out.push((tok, start));
                self.pos = end;
                continue;
            }
            if c == '\'' {
                let mut end = self.pos + 1;
                let mut s = String::new();
                loop {
                    if end >= bytes.len() {
                        return Err(self.error("unterminated string literal"));
                    }
                    if bytes[end] == b'\'' {
                        // '' is an escaped quote
                        if end + 1 < bytes.len() && bytes[end + 1] == b'\'' {
                            s.push('\'');
                            end += 2;
                            continue;
                        }
                        end += 1;
                        break;
                    }
                    s.push(bytes[end] as char);
                    end += 1;
                }
                out.push((Token::Str(s), start));
                self.pos = end;
                continue;
            }
            let sym: &'static str = match c {
                ',' => ",",
                '(' => "(",
                ')' => ")",
                '*' => "*",
                '.' => ".",
                '=' => "=",
                '<' => {
                    if self.pos + 1 < bytes.len() && bytes[self.pos + 1] == b'>' {
                        self.pos += 1;
                        "<>"
                    } else if self.pos + 1 < bytes.len() && bytes[self.pos + 1] == b'=' {
                        self.pos += 1;
                        "<="
                    } else {
                        "<"
                    }
                }
                '>' => {
                    if self.pos + 1 < bytes.len() && bytes[self.pos + 1] == b'=' {
                        self.pos += 1;
                        ">="
                    } else {
                        ">"
                    }
                }
                ';' => {
                    self.pos += 1;
                    continue; // trailing semicolons are allowed and ignored
                }
                _ => return Err(self.error(format!("unexpected character '{c}'"))),
            };
            out.push((Token::Symbol(sym), start));
            self.pos += 1;
        }
        Ok(out)
    }
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|&(_, o)| o)
            .unwrap_or(usize::MAX)
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            message: msg.into(),
            offset: self.offset(),
        }
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consume a keyword (case-insensitive); error if absent.
    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(self.error(format!("expected keyword {kw}, found {other:?}"))),
        }
    }

    /// Consume a keyword if it is next; return whether it was.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if let Some(Token::Symbol(s)) = self.peek() {
            if *s == sym {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<(), ParseError> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(self.error(format!("expected '{sym}'")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn is_keyword(s: &str) -> bool {
        const KEYWORDS: &[&str] = &[
            "select", "from", "where", "group", "by", "and", "between", "insert", "into", "values",
            "update", "set", "delete", "as", "date", "null", "order", "asc", "desc",
        ];
        KEYWORDS.iter().any(|k| s.eq_ignore_ascii_case(k))
    }

    fn literal(&mut self) -> Result<Value, ParseError> {
        match self.next() {
            Some(Token::Int(i)) => Ok(Value::Int(i)),
            Some(Token::Float(f)) => Ok(Value::Float(f)),
            Some(Token::Str(s)) => Ok(Value::Str(s)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("null") => Ok(Value::Null),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("date") => match self.next() {
                Some(Token::Int(d)) => Ok(Value::Date(d as i32)),
                _ => Err(self.error("expected integer after DATE")),
            },
            other => Err(self.error(format!("expected literal, found {other:?}"))),
        }
    }

    /// `ident['.'ident]` as a column reference.
    fn column_ref(&mut self) -> Result<ColumnRef, ParseError> {
        let first = self.ident()?;
        if self.eat_symbol(".") {
            let second = self.ident()?;
            Ok(ColumnRef::new(first, second))
        } else {
            Ok(ColumnRef::bare(first))
        }
    }

    fn looks_like_column(&self) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if !Self::is_keyword(s))
            || matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case("date"))
                && !matches!(
                    self.tokens.get(self.pos + 1).map(|(t, _)| t),
                    Some(Token::Int(_))
                )
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        match self.next() {
            Some(Token::Symbol("=")) => Ok(CmpOp::Eq),
            Some(Token::Symbol("<>")) => Ok(CmpOp::Ne),
            Some(Token::Symbol("<")) => Ok(CmpOp::Lt),
            Some(Token::Symbol("<=")) => Ok(CmpOp::Le),
            Some(Token::Symbol(">")) => Ok(CmpOp::Gt),
            Some(Token::Symbol(">=")) => Ok(CmpOp::Ge),
            other => Err(self.error(format!("expected comparison operator, found {other:?}"))),
        }
    }

    fn condition(&mut self) -> Result<Condition, ParseError> {
        if self.looks_like_column() {
            let column = self.column_ref()?;
            if self.eat_kw("between") {
                let low = self.literal()?;
                self.expect_kw("and")?;
                let high = self.literal()?;
                return Ok(Condition::Between { column, low, high });
            }
            let op = self.cmp_op()?;
            if self.looks_like_column() {
                let right = self.column_ref()?;
                if op != CmpOp::Eq {
                    return Err(self.error("column-to-column predicates must be equi-joins"));
                }
                return Ok(Condition::Join {
                    left: column,
                    right,
                });
            }
            let value = self.literal()?;
            Ok(Condition::Compare { column, op, value })
        } else {
            // literal op column  →  normalize to column-first
            let value = self.literal()?;
            let op = self.cmp_op()?;
            let column = self.column_ref()?;
            Ok(Condition::Compare {
                column,
                op: op.flipped(),
                value,
            })
        }
    }

    fn conditions(&mut self) -> Result<Vec<Condition>, ParseError> {
        let mut out = vec![self.condition()?];
        while self.eat_kw("and") {
            out.push(self.condition()?);
        }
        Ok(out)
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.eat_symbol("*") {
            return Ok(SelectItem::Star);
        }
        if let Some(Token::Ident(s)) = self.peek() {
            let agg = match s.to_ascii_lowercase().as_str() {
                "count" => Some(AggFunc::Count),
                "sum" => Some(AggFunc::Sum),
                "avg" => Some(AggFunc::Avg),
                "min" => Some(AggFunc::Min),
                "max" => Some(AggFunc::Max),
                _ => None,
            };
            if let Some(func) = agg {
                // Only treat as an aggregate when followed by '('.
                if matches!(
                    self.tokens.get(self.pos + 1).map(|(t, _)| t),
                    Some(Token::Symbol("("))
                ) {
                    self.pos += 1; // func name
                    self.expect_symbol("(")?;
                    let input = if self.eat_symbol("*") {
                        None
                    } else {
                        Some(self.column_ref()?)
                    };
                    self.expect_symbol(")")?;
                    return Ok(SelectItem::Aggregate(func, input));
                }
            }
        }
        Ok(SelectItem::Column(self.column_ref()?))
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let table = self.ident()?;
        let _ = self.eat_kw("as");
        if let Some(Token::Ident(s)) = self.peek() {
            if !Self::is_keyword(s) {
                let alias = self.ident()?;
                return Ok(TableRef::aliased(table, alias));
            }
        }
        Ok(TableRef::new(table))
    }

    fn select(&mut self) -> Result<SelectStmt, ParseError> {
        self.expect_kw("select")?;
        let mut items = vec![self.select_item()?];
        while self.eat_symbol(",") {
            items.push(self.select_item()?);
        }
        self.expect_kw("from")?;
        let mut from = vec![self.table_ref()?];
        while self.eat_symbol(",") {
            from.push(self.table_ref()?);
        }
        let conditions = if self.eat_kw("where") {
            self.conditions()?
        } else {
            Vec::new()
        };
        let group_by = if self.eat_kw("group") {
            self.expect_kw("by")?;
            let mut cols = vec![self.column_ref()?];
            while self.eat_symbol(",") {
                cols.push(self.column_ref()?);
            }
            cols
        } else {
            Vec::new()
        };
        let order_by = if self.eat_kw("order") {
            self.expect_kw("by")?;
            let mut keys = vec![self.order_key()?];
            while self.eat_symbol(",") {
                keys.push(self.order_key()?);
            }
            keys
        } else {
            Vec::new()
        };
        Ok(SelectStmt {
            items,
            from,
            conditions,
            group_by,
            order_by,
        })
    }

    fn order_key(&mut self) -> Result<OrderKey, ParseError> {
        let column = self.column_ref()?;
        let descending = if self.eat_kw("desc") {
            true
        } else {
            let _ = self.eat_kw("asc");
            false
        };
        Ok(OrderKey { column, descending })
    }

    fn insert(&mut self) -> Result<InsertStmt, ParseError> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.ident()?;
        self.expect_kw("values")?;
        self.expect_symbol("(")?;
        let mut values = vec![self.literal()?];
        while self.eat_symbol(",") {
            values.push(self.literal()?);
        }
        self.expect_symbol(")")?;
        Ok(InsertStmt { table, values })
    }

    fn update(&mut self) -> Result<UpdateStmt, ParseError> {
        self.expect_kw("update")?;
        let table = self.ident()?;
        self.expect_kw("set")?;
        let set_column = self.ident()?;
        self.expect_symbol("=")?;
        let set_value = self.literal()?;
        let conditions = if self.eat_kw("where") {
            self.conditions()?
        } else {
            Vec::new()
        };
        Ok(UpdateStmt {
            table,
            set_column,
            set_value,
            conditions,
        })
    }

    fn delete(&mut self) -> Result<DeleteStmt, ParseError> {
        self.expect_kw("delete")?;
        self.expect_kw("from")?;
        let table = self.ident()?;
        let conditions = if self.eat_kw("where") {
            self.conditions()?
        } else {
            Vec::new()
        };
        Ok(DeleteStmt { table, conditions })
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("select") => {
                Ok(Statement::Select(self.select()?))
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("insert") => {
                Ok(Statement::Insert(self.insert()?))
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("update") => {
                Ok(Statement::Update(self.update()?))
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("delete") => {
                Ok(Statement::Delete(self.delete()?))
            }
            other => Err(self.error(format!("expected a statement, found {other:?}"))),
        }
    }
}

/// Parse one SQL statement in the supported subset.
///
/// ```
/// use query::parse_statement;
/// let stmt = parse_statement(
///     "SELECT l_returnflag, COUNT(*) FROM lineitem \
///      WHERE l_quantity < 24.0 GROUP BY l_returnflag",
/// )?;
/// let q = stmt.as_select().ok_or("not a select")?;
/// assert_eq!(q.group_by.len(), 1);
/// assert!(parse_statement("SELECT FROM nothing").is_err());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parse_statement(sql: &str) -> Result<Statement, ParseError> {
    let tokens = Lexer::new(sql).tokenize()?;
    let mut parser = Parser { tokens, pos: 0 };
    let stmt = parser.statement()?;
    if parser.peek().is_some() {
        return Err(parser.error("trailing tokens after statement"));
    }
    Ok(stmt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select_star() {
        let s = parse_statement("SELECT * FROM t WHERE a < 10").unwrap();
        let q = s.as_select().unwrap();
        assert_eq!(q.from, vec![TableRef::new("t")]);
        assert_eq!(
            q.conditions,
            vec![Condition::Compare {
                column: ColumnRef::bare("a"),
                op: CmpOp::Lt,
                value: Value::Int(10),
            }]
        );
    }

    #[test]
    fn parses_join_and_aliases() {
        let s = parse_statement(
            "SELECT e.name, d.dname FROM emp e, dept AS d \
             WHERE e.deptid = d.deptid AND e.age < 30 AND e.salary > 200",
        )
        .unwrap();
        let q = s.as_select().unwrap();
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.from[1].binding_name(), "d");
        assert!(matches!(q.conditions[0], Condition::Join { .. }));
        assert_eq!(q.conditions.len(), 3);
    }

    #[test]
    fn parses_between_and_group_by() {
        let s = parse_statement(
            "SELECT brand, COUNT(*), SUM(price) FROM part \
             WHERE size BETWEEN 1 AND 15 GROUP BY brand",
        )
        .unwrap();
        let q = s.as_select().unwrap();
        assert_eq!(q.group_by, vec![ColumnRef::bare("brand")]);
        assert!(matches!(
            q.items[1],
            SelectItem::Aggregate(AggFunc::Count, None)
        ));
        assert!(matches!(q.conditions[0], Condition::Between { .. }));
    }

    #[test]
    fn normalizes_literal_first_comparison() {
        let s = parse_statement("SELECT * FROM t WHERE 10 > a").unwrap();
        let q = s.as_select().unwrap();
        assert_eq!(
            q.conditions[0],
            Condition::Compare {
                column: ColumnRef::bare("a"),
                op: CmpOp::Lt,
                value: Value::Int(10),
            }
        );
    }

    #[test]
    fn parses_dml() {
        let ins = parse_statement("INSERT INTO t VALUES (1, 'x', 2.5, DATE 100, NULL)").unwrap();
        match ins {
            Statement::Insert(i) => {
                assert_eq!(i.values.len(), 5);
                assert_eq!(i.values[3], Value::Date(100));
                assert_eq!(i.values[4], Value::Null);
            }
            _ => panic!("not an insert"),
        }
        let upd = parse_statement("UPDATE t SET a = 5 WHERE b = 'q'").unwrap();
        assert!(matches!(upd, Statement::Update(_)));
        let del = parse_statement("DELETE FROM t WHERE a >= 3").unwrap();
        assert!(matches!(del, Statement::Delete(_)));
    }

    #[test]
    fn string_escape_roundtrip() {
        let s = parse_statement("SELECT * FROM t WHERE name = 'o''brien'").unwrap();
        let q = s.as_select().unwrap();
        match &q.conditions[0] {
            Condition::Compare { value, .. } => {
                assert_eq!(*value, Value::Str("o'brien".into()))
            }
            _ => panic!(),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("SELECT * FROM t WHERE a ! 3").is_err());
        assert!(parse_statement("SELECT * FROM t extra junk, here").is_err());
        assert!(parse_statement("SELECT * FROM t WHERE a < b").is_err()); // non-eq join
    }

    #[test]
    fn parses_order_by() {
        let s = parse_statement("SELECT * FROM t WHERE a > 1 ORDER BY b DESC, c ASC, d").unwrap();
        let q = s.as_select().unwrap();
        assert_eq!(q.order_by.len(), 3);
        assert!(q.order_by[0].descending);
        assert!(!q.order_by[1].descending);
        assert!(!q.order_by[2].descending);
    }

    #[test]
    fn order_by_after_group_by() {
        let s = parse_statement("SELECT b, COUNT(*) FROM t GROUP BY b ORDER BY b").unwrap();
        let q = s.as_select().unwrap();
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.order_by.len(), 1);
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse_statement("SELECT * FROM t;").is_ok());
    }

    #[test]
    fn negative_numbers() {
        let s = parse_statement("SELECT * FROM t WHERE a > -5 AND b = -1.5").unwrap();
        let q = s.as_select().unwrap();
        assert_eq!(q.conditions.len(), 2);
        match &q.conditions[1] {
            Condition::Compare { value, .. } => assert_eq!(*value, Value::Float(-1.5)),
            _ => panic!(),
        }
    }
}
