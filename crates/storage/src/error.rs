//! Storage-level errors.

use std::fmt;

/// Errors raised by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The named table does not exist.
    UnknownTable(String),
    /// The named column does not exist in the given table.
    UnknownColumn { table: String, column: String },
    /// A value's type does not match the column definition.
    TypeMismatch {
        table: String,
        column: String,
        expected: String,
        found: String,
    },
    /// A row had the wrong number of values.
    ArityMismatch { expected: usize, found: usize },
    /// A table with this name already exists.
    DuplicateTable(String),
    /// An index with this name already exists.
    DuplicateIndex(String),
    /// NULL was inserted into a NOT NULL column.
    NullViolation { table: String, column: String },
    /// A [`crate::TableId`] that does not refer to any table in the database
    /// (stale id, or an id minted against a different `Database`).
    UnknownTableId(u32),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            StorageError::UnknownColumn { table, column } => {
                write!(f, "unknown column '{column}' in table '{table}'")
            }
            StorageError::TypeMismatch {
                table,
                column,
                expected,
                found,
            } => write!(
                f,
                "type mismatch in {table}.{column}: expected {expected}, found {found}"
            ),
            StorageError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "row arity mismatch: expected {expected} values, found {found}"
                )
            }
            StorageError::DuplicateTable(t) => write!(f, "table '{t}' already exists"),
            StorageError::DuplicateIndex(i) => write!(f, "index '{i}' already exists"),
            StorageError::NullViolation { table, column } => {
                write!(f, "NULL inserted into NOT NULL column {table}.{column}")
            }
            StorageError::UnknownTableId(id) => {
                write!(f, "table id T{id} does not exist in this database")
            }
        }
    }
}

impl std::error::Error for StorageError {}
