//! Tables: a schema, one `ColumnData` per column, and the row-modification
//! counter that drives the auto-update/auto-drop statistics policy (§6 of the
//! paper: "the server maintains a counter for each table that records the
//! number of rows modified since the last time statistics on the table were
//! updated").

use crate::column::ColumnData;
use crate::error::StorageError;
use crate::schema::Schema;
use crate::value::Value;
use crate::Result;

/// A stored table.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<ColumnData>,
    /// Rows modified (inserted + deleted + updated) since the counter was
    /// last reset by a statistics update.
    modification_counter: u64,
}

impl Table {
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let columns = schema
            .columns()
            .iter()
            .map(|c| ColumnData::new(c.data_type))
            .collect();
        Table {
            name: name.into(),
            schema,
            columns,
            modification_counter: 0,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn row_count(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    pub fn column(&self, idx: usize) -> &ColumnData {
        &self.columns[idx]
    }

    /// Value of column `col` at row `row`.
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].get(row)
    }

    /// Modification counter since last statistics refresh.
    pub fn modification_counter(&self) -> u64 {
        self.modification_counter
    }

    /// A same-shape empty table: identical name and schema, zero rows, and a
    /// fresh modification counter. Shard-scoped databases start from these so
    /// every shard shares the original's table ids and column ordinals.
    pub fn empty_like(&self) -> Table {
        Table::new(self.name.clone(), self.schema.clone())
    }

    /// Materialize one row (one value per column, in schema order).
    pub fn row_values(&self, row: usize) -> Vec<Value> {
        (0..self.schema.len()).map(|c| self.value(row, c)).collect()
    }

    /// Reset the modification counter.
    ///
    /// Historically the statistics layer reset this shared counter whenever
    /// *any* statistic on the table was rebuilt, which made two statistics on
    /// one table age together. Staleness is now tracked per statistic (each
    /// records the counter value at build time), so the counter only ever
    /// grows and nothing needs to reset it; bulk loaders may still call this
    /// to mark freshly loaded data as the baseline.
    #[deprecated(
        since = "0.5.0",
        note = "staleness is tracked per statistic via the counter value at build \
                time; the shared table counter no longer needs resetting"
    )]
    pub fn reset_modification_counter(&mut self) {
        self.modification_counter = 0;
    }

    fn check_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.len(),
                found: row.len(),
            });
        }
        for (i, v) in row.iter().enumerate() {
            let def = self.schema.column(i);
            if v.is_null() {
                if !def.nullable {
                    return Err(StorageError::NullViolation {
                        table: self.name.clone(),
                        column: def.name.clone(),
                    });
                }
                continue;
            }
            // Non-null values always carry a type; the fallback keeps this
            // total rather than trusting that invariant with a panic.
            let Some(vt) = v.data_type() else { continue };
            let compatible = vt == def.data_type
                || matches!(
                    (vt, def.data_type),
                    (
                        crate::value::DataType::Int,
                        crate::value::DataType::Float | crate::value::DataType::Date
                    )
                );
            if !compatible {
                return Err(StorageError::TypeMismatch {
                    table: self.name.clone(),
                    column: def.name.clone(),
                    expected: def.data_type.to_string(),
                    found: vt.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Insert one row.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<()> {
        self.check_row(&row)?;
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        self.modification_counter += 1;
        Ok(())
    }

    /// Insert many rows; validates each row before mutating anything for it.
    pub fn insert_many(&mut self, rows: Vec<Vec<Value>>) -> Result<()> {
        for row in rows {
            self.insert(row)?;
        }
        Ok(())
    }

    /// Delete the given row indices (need not be sorted). Returns the number
    /// of rows deleted.
    pub fn delete_rows(&mut self, mut rows: Vec<usize>) -> usize {
        rows.sort_unstable();
        rows.dedup();
        rows.retain(|&r| r < self.row_count());
        for col in &mut self.columns {
            col.delete_rows(&rows);
        }
        self.modification_counter += rows.len() as u64;
        rows.len()
    }

    /// Update column `col` of each row in `rows` to `value`.
    pub fn update_rows(&mut self, rows: &[usize], col: usize, value: &Value) -> usize {
        let mut n = 0;
        for &r in rows {
            if r < self.row_count() {
                self.columns[col].set(r, value.clone());
                n += 1;
            }
        }
        self.modification_counter += n as u64;
        n
    }

    /// Byte width of a full row under the cost model.
    pub fn row_width(&self) -> usize {
        self.schema.row_width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::DataType;

    fn people() -> Table {
        Table::new(
            "people",
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Str),
                ColumnDef::new("age", DataType::Int).nullable(),
            ]),
        )
    }

    #[test]
    fn insert_and_read_back() {
        let mut t = people();
        t.insert(vec![Value::Int(1), "ann".into(), Value::Int(30)])
            .unwrap();
        t.insert(vec![Value::Int(2), "bob".into(), Value::Null])
            .unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.value(0, 1), Value::Str("ann".into()));
        assert_eq!(t.value(1, 2), Value::Null);
    }

    #[test]
    fn modification_counter_tracks_dml() {
        let mut t = people();
        for i in 0..5 {
            t.insert(vec![Value::Int(i), "x".into(), Value::Int(i)])
                .unwrap();
        }
        assert_eq!(t.modification_counter(), 5);
        t.delete_rows(vec![0, 2]);
        assert_eq!(t.modification_counter(), 7);
        t.update_rows(&[0], 2, &Value::Int(99));
        assert_eq!(t.modification_counter(), 8);
        #[allow(deprecated)]
        t.reset_modification_counter();
        assert_eq!(t.modification_counter(), 0);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = people();
        let err = t.insert(vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut t = people();
        let err = t
            .insert(vec!["oops".into(), "ann".into(), Value::Int(1)])
            .unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn null_violation_rejected() {
        let mut t = people();
        let err = t
            .insert(vec![Value::Null, "ann".into(), Value::Int(1)])
            .unwrap_err();
        assert!(matches!(err, StorageError::NullViolation { .. }));
    }

    #[test]
    fn delete_out_of_range_ignored() {
        let mut t = people();
        t.insert(vec![Value::Int(1), "a".into(), Value::Null])
            .unwrap();
        assert_eq!(t.delete_rows(vec![5, 0, 0]), 1);
        assert_eq!(t.row_count(), 0);
    }
}
