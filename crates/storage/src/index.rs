//! Secondary index metadata.
//!
//! Indexes matter to the reproduction in two ways, both taken from the paper:
//!
//! 1. The intro experiment starts from a "tuned TPC-D database with 13
//!    indexes" in which statistics exist only on indexed columns; index
//!    creation therefore implies statistics on the index's leading column.
//! 2. The optimizer prices an index scan cheaper than a sequential scan when
//!    a selective predicate matches the index's leading column.
//!
//! We store only the metadata (which columns, in order). Lookup structures
//! are not materialized: the executor evaluates plans straight off the
//! columnar data, and the cost model only needs to know the index exists.

use crate::catalog::TableId;
use serde::{Deserialize, Serialize};

/// A secondary index over one or more columns of a table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Index {
    pub name: String,
    pub table: TableId,
    /// Column ordinals in index key order; `columns[0]` is the leading column.
    pub columns: Vec<usize>,
}

impl Index {
    pub fn new(name: impl Into<String>, table: TableId, columns: Vec<usize>) -> Self {
        assert!(!columns.is_empty(), "index must have at least one column");
        Index {
            name: name.into(),
            table,
            columns,
        }
    }

    /// Leading (first) key column ordinal.
    pub fn leading_column(&self) -> usize {
        self.columns[0]
    }

    /// True if this index can serve a predicate on `column` via its leading
    /// key.
    pub fn serves(&self, column: usize) -> bool {
        self.leading_column() == column
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leading_column_and_serves() {
        let idx = Index::new("i1", TableId(0), vec![2, 1]);
        assert_eq!(idx.leading_column(), 2);
        assert!(idx.serves(2));
        assert!(!idx.serves(1));
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_index_panics() {
        let _ = Index::new("bad", TableId(0), vec![]);
    }
}
