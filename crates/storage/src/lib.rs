//! In-memory columnar relational storage.
//!
//! This crate is the storage substrate for the reproduction of
//! *Automating Statistics Management for Query Optimizers* (Chaudhuri &
//! Narasayya, ICDE 2000). The paper's algorithms only need a relational store
//! that can
//!
//! * hold typed tables and answer full scans (for building statistics and for
//!   executing plans),
//! * expose secondary index metadata (the paper's "tuned TPC-D database with
//!   13 indexes" carries statistics on indexed columns for free), and
//! * track a per-table **row-modification counter**, which drives the
//!   SQL Server 7.0 auto-update/auto-drop policy described in §6 of the paper.
//!
//! Layout is columnar (`Vec` per column) because statistics construction and
//! scan-heavy execution both read one column at a time.

// Library code must stay panic-free on arbitrary input; tests may unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod catalog;
pub mod column;
pub mod error;
pub mod index;
pub mod schema;
pub mod table;
pub mod value;

pub use catalog::{Database, TableId};
pub use column::ColumnData;
pub use error::StorageError;
pub use index::Index;
pub use schema::{ColumnDef, Schema};
pub use table::Table;
pub use value::{DataType, Value, ValueRef};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
