//! Columnar value storage.
//!
//! Each column is a typed `Vec` plus a validity bitmap. Deleted rows are
//! compacted eagerly (tables here are small enough that shifting is cheaper
//! than tombstone bookkeeping, and statistics builders want dense columns).

use crate::value::{DataType, Value, ValueRef};

/// Storage for one column of a table.
#[derive(Debug, Clone)]
pub struct ColumnData {
    data_type: DataType,
    ints: Vec<i64>,
    floats: Vec<f64>,
    strs: Vec<String>,
    /// validity[i] == false means row i is NULL.
    validity: Vec<bool>,
}

impl ColumnData {
    pub fn new(data_type: DataType) -> Self {
        ColumnData {
            data_type,
            ints: Vec::new(),
            floats: Vec::new(),
            strs: Vec::new(),
            validity: Vec::new(),
        }
    }

    pub fn with_capacity(data_type: DataType, cap: usize) -> Self {
        let mut c = ColumnData::new(data_type);
        match data_type {
            DataType::Int | DataType::Date => c.ints.reserve(cap),
            DataType::Float => c.floats.reserve(cap),
            DataType::Str => c.strs.reserve(cap),
        }
        c.validity.reserve(cap);
        c
    }

    pub fn data_type(&self) -> DataType {
        self.data_type
    }

    pub fn len(&self) -> usize {
        self.validity.len()
    }

    pub fn is_empty(&self) -> bool {
        self.validity.is_empty()
    }

    /// Append a value. The caller (Table) is responsible for type checking;
    /// this method panics on a type mismatch since it indicates a bug above.
    pub fn push(&mut self, v: Value) {
        match (&v, self.data_type) {
            (Value::Null, _) => {
                self.validity.push(false);
                match self.data_type {
                    DataType::Int | DataType::Date => self.ints.push(0),
                    DataType::Float => self.floats.push(0.0),
                    DataType::Str => self.strs.push(String::new()),
                }
            }
            (Value::Int(i), DataType::Int) => {
                self.ints.push(*i);
                self.validity.push(true);
            }
            (Value::Date(d), DataType::Date) => {
                self.ints.push(*d as i64);
                self.validity.push(true);
            }
            (Value::Int(i), DataType::Date) => {
                self.ints.push(*i);
                self.validity.push(true);
            }
            (Value::Float(f), DataType::Float) => {
                self.floats.push(*f);
                self.validity.push(true);
            }
            (Value::Int(i), DataType::Float) => {
                self.floats.push(*i as f64);
                self.validity.push(true);
            }
            (Value::Str(_), DataType::Str) => {
                if let Value::Str(s) = v {
                    self.strs.push(s);
                    self.validity.push(true);
                }
            }
            _ => panic!(
                "type mismatch pushing {:?} into {:?} column",
                v.data_type(),
                self.data_type
            ),
        }
    }

    /// Value at row `i`.
    pub fn get(&self, i: usize) -> Value {
        if !self.validity[i] {
            return Value::Null;
        }
        match self.data_type {
            DataType::Int => Value::Int(self.ints[i]),
            DataType::Date => Value::Date(self.ints[i] as i32),
            DataType::Float => Value::Float(self.floats[i]),
            DataType::Str => Value::Str(self.strs[i].clone()),
        }
    }

    /// Borrowed view of row `i` — no `String` clone for `Str` columns. The
    /// workhorse of the columnar executor's inner loops.
    pub fn get_ref(&self, i: usize) -> ValueRef<'_> {
        if !self.validity[i] {
            return ValueRef::Null;
        }
        match self.data_type {
            DataType::Int => ValueRef::Int(self.ints[i]),
            DataType::Date => ValueRef::Date(self.ints[i] as i32),
            DataType::Float => ValueRef::Float(self.floats[i]),
            DataType::Str => ValueRef::Str(&self.strs[i]),
        }
    }

    /// True when row `i` is non-NULL.
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity[i]
    }

    /// The validity bitmap: `validity()[i] == false` means row `i` is NULL.
    pub fn validity(&self) -> &[bool] {
        &self.validity
    }

    /// True when no entry is NULL. One vectorizable pass; predicate kernels
    /// use it to pick the null-free inner loop for a whole column.
    pub fn all_valid(&self) -> bool {
        self.validity.iter().all(|&v| v)
    }

    /// The raw `i64` payload slice for `Int` and `Date` columns (dates are
    /// stored as days-since-epoch widened to `i64`), or `None` for other
    /// types. Entries at invalid rows are unspecified padding.
    pub fn int_slice(&self) -> Option<&[i64]> {
        match self.data_type {
            DataType::Int | DataType::Date => Some(&self.ints),
            _ => None,
        }
    }

    /// The raw `f64` payload slice for `Float` columns.
    pub fn float_slice(&self) -> Option<&[f64]> {
        match self.data_type {
            DataType::Float => Some(&self.floats),
            _ => None,
        }
    }

    /// The raw string payload slice for `Str` columns.
    pub fn str_slice(&self) -> Option<&[String]> {
        match self.data_type {
            DataType::Str => Some(&self.strs),
            _ => None,
        }
    }

    /// Overwrite row `i`.
    pub fn set(&mut self, i: usize, v: Value) {
        match (&v, self.data_type) {
            (Value::Null, _) => self.validity[i] = false,
            (Value::Int(x), DataType::Int) => {
                self.ints[i] = *x;
                self.validity[i] = true;
            }
            (Value::Date(d), DataType::Date) => {
                self.ints[i] = *d as i64;
                self.validity[i] = true;
            }
            (Value::Int(x), DataType::Date) => {
                self.ints[i] = *x;
                self.validity[i] = true;
            }
            (Value::Float(x), DataType::Float) => {
                self.floats[i] = *x;
                self.validity[i] = true;
            }
            (Value::Int(x), DataType::Float) => {
                self.floats[i] = *x as f64;
                self.validity[i] = true;
            }
            (Value::Str(_), DataType::Str) => {
                if let Value::Str(s) = v {
                    self.strs[i] = s;
                    self.validity[i] = true;
                }
            }
            _ => panic!(
                "type mismatch setting {:?} into {:?} column",
                v.data_type(),
                self.data_type
            ),
        }
    }

    /// Remove the rows whose indices are in `sorted_rows` (ascending, unique)
    /// by compaction.
    pub fn delete_rows(&mut self, sorted_rows: &[usize]) {
        if sorted_rows.is_empty() {
            return;
        }
        let mut drop_iter = sorted_rows.iter().peekable();
        let mut write = 0usize;
        let n = self.len();
        for read in 0..n {
            if drop_iter.peek() == Some(&&read) {
                drop_iter.next();
                continue;
            }
            if write != read {
                self.validity[write] = self.validity[read];
                match self.data_type {
                    DataType::Int | DataType::Date => self.ints[write] = self.ints[read],
                    DataType::Float => self.floats[write] = self.floats[read],
                    DataType::Str => self.strs[write] = std::mem::take(&mut self.strs[read]),
                }
            }
            write += 1;
        }
        self.validity.truncate(write);
        match self.data_type {
            DataType::Int | DataType::Date => self.ints.truncate(write),
            DataType::Float => self.floats.truncate(write),
            DataType::Str => self.strs.truncate(write),
        }
    }

    /// Iterator over all values including NULLs.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Dense vector of all non-null values (statistics builders use this).
    pub fn non_null_values(&self) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.len());
        for i in 0..self.len() {
            if self.validity[i] {
                out.push(self.get(i));
            }
        }
        out
    }

    /// Count of NULL entries.
    pub fn null_count(&self) -> usize {
        self.validity.iter().filter(|v| !**v).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip_all_types() {
        let mut c = ColumnData::new(DataType::Int);
        c.push(Value::Int(5));
        c.push(Value::Null);
        assert_eq!(c.get(0), Value::Int(5));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.null_count(), 1);

        let mut s = ColumnData::new(DataType::Str);
        s.push(Value::Str("hi".into()));
        assert_eq!(s.get(0), Value::Str("hi".into()));

        let mut d = ColumnData::new(DataType::Date);
        d.push(Value::Date(100));
        d.push(Value::Int(101)); // int coerces into date storage
        assert_eq!(d.get(0), Value::Date(100));
        assert_eq!(d.get(1), Value::Date(101));

        let mut f = ColumnData::new(DataType::Float);
        f.push(Value::Int(3)); // widening coercion
        assert_eq!(f.get(0), Value::Float(3.0));
    }

    #[test]
    fn delete_rows_compacts() {
        let mut c = ColumnData::new(DataType::Int);
        for i in 0..6 {
            c.push(Value::Int(i));
        }
        c.delete_rows(&[1, 4]);
        let vals: Vec<Value> = c.iter().collect();
        assert_eq!(
            vals,
            vec![Value::Int(0), Value::Int(2), Value::Int(3), Value::Int(5)]
        );
    }

    #[test]
    fn delete_rows_string_column() {
        let mut c = ColumnData::new(DataType::Str);
        for s in ["a", "b", "c", "d"] {
            c.push(Value::Str(s.into()));
        }
        c.delete_rows(&[0, 3]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(0), Value::Str("b".into()));
        assert_eq!(c.get(1), Value::Str("c".into()));
    }

    #[test]
    fn set_overwrites_and_nulls() {
        let mut c = ColumnData::new(DataType::Int);
        c.push(Value::Int(1));
        c.set(0, Value::Int(9));
        assert_eq!(c.get(0), Value::Int(9));
        c.set(0, Value::Null);
        assert_eq!(c.get(0), Value::Null);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn push_wrong_type_panics() {
        let mut c = ColumnData::new(DataType::Int);
        c.push(Value::Str("oops".into()));
    }

    #[test]
    fn get_ref_mirrors_get() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut cols = vec![
            ColumnData::new(DataType::Int),
            ColumnData::new(DataType::Float),
            ColumnData::new(DataType::Str),
            ColumnData::new(DataType::Date),
        ];
        cols[0].push(Value::Int(-3));
        cols[1].push(Value::Float(2.5));
        cols[2].push(Value::Str("hi".into()));
        cols[3].push(Value::Date(42));
        for c in &mut cols {
            c.push(Value::Null);
        }
        for c in &cols {
            for i in 0..c.len() {
                let owned = c.get(i);
                let r = c.get_ref(i);
                assert_eq!(r.to_value(), owned);
                assert_eq!(c.is_valid(i), !owned.is_null());
                // Hash parity: ref and owned fingerprints agree.
                let mut h1 = DefaultHasher::new();
                let mut h2 = DefaultHasher::new();
                owned.hash(&mut h1);
                r.hash(&mut h2);
                assert_eq!(h1.finish(), h2.finish());
            }
        }
    }

    #[test]
    fn typed_slices_expose_payloads() {
        let mut c = ColumnData::new(DataType::Int);
        c.push(Value::Int(7));
        c.push(Value::Null);
        assert_eq!(c.int_slice().unwrap()[0], 7);
        assert!(c.float_slice().is_none());
        assert_eq!(c.validity(), &[true, false]);
    }

    #[test]
    fn non_null_values_skips_nulls() {
        let mut c = ColumnData::new(DataType::Int);
        c.push(Value::Int(1));
        c.push(Value::Null);
        c.push(Value::Int(2));
        assert_eq!(c.non_null_values(), vec![Value::Int(1), Value::Int(2)]);
    }
}
