//! Table schemas.

use crate::value::DataType;
use serde::{Deserialize, Serialize};

/// Definition of a single column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: DataType,
    pub nullable: bool,
}

impl ColumnDef {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            data_type,
            nullable: false,
        }
    }

    pub fn nullable(mut self) -> Self {
        self.nullable = true;
        self
    }
}

/// An ordered list of column definitions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        Schema { columns }
    }

    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    pub fn column(&self, idx: usize) -> &ColumnDef {
        &self.columns[idx]
    }

    /// Ordinal of the column with the given (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Total byte width of one row under the cost model.
    pub fn row_width(&self) -> usize {
        self.columns.iter().map(|c| c.data_type.byte_width()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("name", DataType::Str),
            ColumnDef::new("price", DataType::Float).nullable(),
        ])
    }

    #[test]
    fn index_of_is_case_insensitive() {
        let s = schema();
        assert_eq!(s.index_of("ID"), Some(0));
        assert_eq!(s.index_of("Name"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn row_width_sums_column_widths() {
        assert_eq!(schema().row_width(), 8 + 16 + 8);
    }

    #[test]
    fn nullable_builder() {
        let s = schema();
        assert!(!s.column(0).nullable);
        assert!(s.column(2).nullable);
    }
}
