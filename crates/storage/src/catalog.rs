//! The database catalog: tables by id/name plus index metadata.

use crate::error::StorageError;
use crate::index::Index;
use crate::schema::Schema;
use crate::table::Table;
use crate::Result;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Stable identifier of a table within a [`Database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TableId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// An in-memory database: a set of tables and their indexes.
#[derive(Debug, Default, Clone)]
pub struct Database {
    tables: Vec<Table>,
    by_name: HashMap<String, TableId>,
    indexes: Vec<Index>,
}

impl Database {
    pub fn new() -> Self {
        Database::default()
    }

    /// Create a table; returns its id.
    pub fn create_table(&mut self, name: impl Into<String>, schema: Schema) -> Result<TableId> {
        let name = name.into();
        let key = name.to_ascii_lowercase();
        if self.by_name.contains_key(&key) {
            return Err(StorageError::DuplicateTable(name));
        }
        let id = TableId(self.tables.len() as u32);
        self.tables.push(Table::new(name, schema));
        self.by_name.insert(key, id);
        Ok(id)
    }

    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.by_name.get(&name.to_ascii_lowercase()).copied()
    }

    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0 as usize]
    }

    pub fn table_mut(&mut self, id: TableId) -> &mut Table {
        &mut self.tables[id.0 as usize]
    }

    /// Like [`Database::table`], but returns a typed error instead of
    /// panicking when `id` is stale or from another database.
    pub fn try_table(&self, id: TableId) -> Result<&Table> {
        self.tables
            .get(id.0 as usize)
            .ok_or(StorageError::UnknownTableId(id.0))
    }

    /// Like [`Database::table_mut`], but returns a typed error instead of
    /// panicking when `id` is stale or from another database.
    pub fn try_table_mut(&mut self, id: TableId) -> Result<&mut Table> {
        self.tables
            .get_mut(id.0 as usize)
            .ok_or(StorageError::UnknownTableId(id.0))
    }

    pub fn table_by_name(&self, name: &str) -> Result<&Table> {
        self.table_id(name)
            .map(|id| self.table(id))
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    pub fn table_by_name_mut(&mut self, name: &str) -> Result<&mut Table> {
        let id = self
            .table_id(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))?;
        Ok(self.table_mut(id))
    }

    /// All table ids, in creation order.
    pub fn table_ids(&self) -> impl Iterator<Item = TableId> + '_ {
        (0..self.tables.len() as u32).map(TableId)
    }

    /// An empty structural clone for shard-scoped databases: every table and
    /// index exists under the same [`TableId`] and ordinals, but no table
    /// holds rows. A sharded serving layer fills in only the tables a shard
    /// owns, so bound statements, statistics, and plans refer to identical
    /// ids on every shard (and on the original database).
    pub fn schema_skeleton(&self) -> Database {
        Database {
            tables: self.tables.iter().map(Table::empty_like).collect(),
            by_name: self.by_name.clone(),
            indexes: self.indexes.clone(),
        }
    }

    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Create an index over `columns` (ordinals) of `table`.
    pub fn create_index(
        &mut self,
        name: impl Into<String>,
        table: TableId,
        columns: Vec<usize>,
    ) -> Result<&Index> {
        let name = name.into();
        if self.indexes.iter().any(|i| i.name == name) {
            return Err(StorageError::DuplicateIndex(name));
        }
        let slot = self.indexes.len();
        self.indexes.push(Index::new(name, table, columns));
        Ok(&self.indexes[slot])
    }

    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Indexes on the given table.
    pub fn indexes_on(&self, table: TableId) -> impl Iterator<Item = &Index> {
        self.indexes.iter().filter(move |i| i.table == table)
    }

    /// Total rows across all tables (used for scale diagnostics).
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.row_count()).sum()
    }

    /// A point-in-time snapshot of every table's row-modification counter,
    /// keyed by table id. `BTreeMap` so iteration order (and anything
    /// derived from it, e.g. staleness scans) is deterministic.
    pub fn modification_snapshot(&self) -> std::collections::BTreeMap<TableId, u64> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (TableId(i as u32), t.modification_counter()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::{DataType, Value};

    fn db_with_table() -> (Database, TableId) {
        let mut db = Database::new();
        let id = db
            .create_table(
                "t",
                Schema::new(vec![
                    ColumnDef::new("a", DataType::Int),
                    ColumnDef::new("b", DataType::Int),
                ]),
            )
            .unwrap();
        (db, id)
    }

    #[test]
    fn create_and_lookup_table() {
        let (db, id) = db_with_table();
        assert_eq!(db.table_id("T"), Some(id));
        assert_eq!(db.table(id).name(), "t");
        assert!(db.table_by_name("missing").is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let (mut db, _) = db_with_table();
        let err = db
            .create_table("T", Schema::new(vec![ColumnDef::new("x", DataType::Int)]))
            .unwrap_err();
        assert!(matches!(err, StorageError::DuplicateTable(_)));
    }

    #[test]
    fn indexes_on_filters_by_table() {
        let (mut db, id) = db_with_table();
        let id2 = db
            .create_table("u", Schema::new(vec![ColumnDef::new("x", DataType::Int)]))
            .unwrap();
        db.create_index("i1", id, vec![0]).unwrap();
        db.create_index("i2", id2, vec![0]).unwrap();
        assert_eq!(db.indexes_on(id).count(), 1);
        assert_eq!(db.indexes().len(), 2);
        assert!(db.create_index("i1", id, vec![1]).is_err());
    }

    #[test]
    fn modification_snapshot_covers_all_tables() {
        let (mut db, id) = db_with_table();
        let id2 = db
            .create_table("u", Schema::new(vec![ColumnDef::new("x", DataType::Int)]))
            .unwrap();
        db.table_mut(id)
            .insert(vec![Value::Int(1), Value::Int(2)])
            .unwrap();
        let snap = db.modification_snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[&id], 1);
        assert_eq!(snap[&id2], 0);
    }

    #[test]
    fn total_rows_sums_tables() {
        let (mut db, id) = db_with_table();
        db.table_mut(id)
            .insert(vec![Value::Int(1), Value::Int(2)])
            .unwrap();
        assert_eq!(db.total_rows(), 1);
    }
}
